//! The paper's headline scenario end to end: federate SYNAPSE, NCMIR,
//! SENSELAB, and ANATOM across "multiple worlds" and run the §5 query —
//!
//! > "What is the distribution of those calcium-binding proteins that are
//! > found in neurons that receive signals from parallel fibers in rat
//! > brains?"
//!
//! ```sh
//! cargo run --example neuroscience_federation
//! ```

use kind::core::{protein_distribution, run_section5, NeuroSchema, Section5Query};
use kind::sources::{build_scenario, ScenarioParams};

fn main() {
    let params = ScenarioParams::default();
    let mut med = build_scenario(&params);
    println!("registered sources:");
    for s in med.sources() {
        println!("  {} (classes: {:?})", s.name, s.classes);
    }

    let schema = NeuroSchema::default();
    let query = Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    };

    println!("\n== §5 query plan (semantic index ON) ==");
    let trace = run_section5(&mut med, &schema, &query, true).expect("plan runs");
    println!("step 1  receiving pairs: {:?}", trace.step1_pairs);
    println!(
        "step 2  sources: {} candidates -> selected {:?}",
        trace.candidate_sources, trace.selected_sources
    );
    println!(
        "step 3  protein rows: {} ({} proteins: {:?})",
        trace.step3_rows,
        trace.proteins.len(),
        trace.proteins
    );
    println!("step 4  distribution root (lub): {:?}", trace.root);
    println!("        distribution:");
    for d in &trace.distribution {
        println!(
            "          {:<20} {:<20} {:>6}",
            d.protein, d.concept, d.total
        );
    }
    println!(
        "traffic: {} wrapper queries, {} rows shipped",
        trace.stats.source_queries, trace.stats.rows_shipped
    );

    println!("\n== ablation: semantic index OFF ==");
    let mut med2 = build_scenario(&params);
    let blind = run_section5(&mut med2, &schema, &query, false).expect("plan runs");
    println!(
        "contacted {} sources, {} wrapper queries, {} rows shipped",
        blind.selected_sources.len(),
        blind.stats.source_queries,
        blind.stats.rows_shipped
    );
    assert_eq!(trace.distribution, blind.distribution, "same answers");
    assert!(trace.stats.source_queries < blind.stats.source_queries);

    println!("\n== Example 4: protein_distribution(Ryanodine_Receptor, Cerebellum) ==");
    let dist = protein_distribution(&mut med, &schema, "Ryanodine_Receptor", "Cerebellum")
        .expect("view evaluates");
    for (concept, total) in &dist {
        println!("  {concept:<20} {total:>6}");
    }
    println!("ok");
}
