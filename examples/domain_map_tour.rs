//! A tour of domain maps: the Figure 1 and Figure 3 maps, closure
//! operations, DOT rendering, the Figure 3 registration flow, and
//! structural subsumption on the decidable fragment.
//!
//! ```sh
//! cargo run --example domain_map_tour > /tmp/figure3.dot  # DOT on stdout
//! ```

use kind::dm::subsume::Subsumption;
use kind::dm::{figures, parse_axioms, ConceptExpr, Resolved};

fn main() {
    // --- Figure 1 -------------------------------------------------------
    let dm1 = figures::figure1();
    let r1 = Resolved::new(&dm1);
    eprintln!(
        "Figure 1: {} concepts, {} edges, roles {:?}",
        dm1.concepts().count(),
        dm1.edge_count(),
        dm1.roles()
    );
    // The paper's point: SYNAPSE and NCMIR data are "semantically close
    // when situated in the scientific context". Walk the chain:
    let pc = dm1.lookup("Purkinje_Cell").expect("concept");
    let spine = dm1.lookup("Spine").expect("concept");
    eprintln!(
        "Purkinje_Cell -has-> Spine inferable: {}",
        r1.dc_pairs("has").contains(&(pc, spine))
    );
    let dc = r1.dc_pairs("has");
    let tc = r1.tc_of_dc("has");
    eprintln!(
        "dc(has) = {} pairs; materialized tc(dc(has)) = {} pairs (the paper calls this wasteful)",
        dc.len(),
        tc.len()
    );

    // --- Figure 3: registration refines the map -------------------------
    let base = figures::figure3_base();
    let full = figures::figure3();
    eprintln!(
        "\nFigure 3: base {} concepts -> after MyNeuron/MyDendrite registration {} concepts",
        base.concepts().count(),
        full.concepts().count()
    );
    let rf = Resolved::new(&full);
    let mn = full.lookup("MyNeuron").expect("registered");
    let gpe = full.lookup("Globus_Pallidus_External").expect("concept");
    eprintln!(
        "MyNeuron definitely projects to Globus_Pallidus_External: {}",
        rf.dc_pairs("proj").contains(&(mn, gpe))
    );

    // --- Structural subsumption (Proposition 1's decidable fragment) ----
    let axioms = parse_axioms(&format!(
        "{}{}",
        figures::FIGURE3_BASE_AXIOMS,
        figures::FIGURE3_REGISTRATION_AXIOMS
    ))
    .expect("axioms parse");
    let reasoner = Subsumption::new(&axioms);
    let neuron = ConceptExpr::Atomic("Neuron".into());
    let my_neuron = ConceptExpr::Atomic("MyNeuron".into());
    eprintln!(
        "\nsubsumption: MyNeuron ⊑ Neuron = {}",
        reasoner.subsumes(&neuron, &my_neuron)
    );
    let dendrite = ConceptExpr::Atomic("Dendrite".into());
    let my_dendrite = ConceptExpr::Atomic("MyDendrite".into());
    eprintln!(
        "subsumption: MyDendrite ⊑ Dendrite = {}",
        reasoner.subsumes(&dendrite, &my_dendrite)
    );

    // --- DOT rendering (stdout) ------------------------------------------
    print!(
        "{}",
        kind::dm::dot::to_dot(&full, &["MyNeuron", "MyDendrite"])
    );
    eprintln!("\n(DOT for Figure 3 written to stdout)");
}
