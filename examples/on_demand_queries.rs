//! On-demand integrated queries: the push-down discipline of §5
//! generalized — plus query templates, logic-level (subsumption-based)
//! source selection, the two-phase pipeline's warm-plan path
//! (fetch once, replay the evaluate phase on a snapshot from many
//! threads), and goal-directed evaluation via the magic-sets rewrite
//! (derived-fact counts with the rewrite on vs off).
//!
//! ```sh
//! cargo run --example on_demand_queries
//! ```

use kind::core::{
    run_section5, section5_fetch, Mediator, NeuroSchema, QueryTemplate, Section5Query,
};
use kind::datalog::{Atom, EvalOptions, Term, Var};
use kind::flogic::FLogic;
use kind::gcm::GcmValue;
use kind::sources::{build_scenario, ScenarioParams};

fn main() {
    let mut med = build_scenario(&ScenarioParams::default());

    // 1. A one-off conjunctive query. The mediator extracts the source
    //    classes it mentions, contacts only the sources exporting them,
    //    and evaluates only the relevant rule subprogram.
    println!("== answer(): which calcium binders exceed amount 80 anywhere? ==");
    let ans = med
        .answer(
            r#"hot(P, L, A) :- X : protein_amount, X[protein_name -> P],
                              X[location -> L], X[amount -> A],
                              X[ion_bound -> calcium], A > 80."#,
        )
        .expect("query runs");
    println!(
        "classes: {:?}; sources contacted: {:?}; {} answers",
        ans.classes,
        ans.sources,
        ans.rows.len()
    );
    for row in ans.rows.iter().take(5) {
        println!(
            "  {} @ {} = {}",
            med.show(&row[0]),
            med.show(&row[1]),
            med.show(&row[2])
        );
    }
    assert!(!ans.rows.is_empty());

    // 2. Query templates: the "logical API" of a limited source. Here we
    //    register an extra source that only answers one canned query.
    println!("\n== query templates ==");
    let mut limited = kind::core::MemoryWrapper::new("LIMITED");
    limited.caps.push(kind::core::Capability {
        class: "protein_amount".into(),
        pushable: vec!["location".into()],
    });
    limited.query_templates.push(QueryTemplate {
        name: "protein_by_location".into(),
        class: "protein_amount".into(),
        params: vec!["location".into()],
    });
    limited.anchor_decls.push(kind::core::Anchor::Fixed {
        class: "protein_amount".into(),
        concept: "Purkinje_Spine".into(),
    });
    limited.add_row(
        "protein_amount",
        "x1",
        vec![
            ("protein_name", GcmValue::Id("Calbindin".into())),
            ("amount", GcmValue::Int(12)),
            ("location", GcmValue::Id("Purkinje_Spine".into())),
            ("ion_bound", GcmValue::Id("calcium".into())),
        ],
    );
    med.register(std::sync::Arc::new(limited))
        .expect("registers");
    let rows = med
        .call_template(
            "LIMITED",
            "protein_by_location",
            &[GcmValue::Id("Purkinje_Spine".into())],
        )
        .expect("template call");
    println!(
        "LIMITED::protein_by_location(Purkinje_Spine) -> {} rows",
        rows.len()
    );
    assert_eq!(rows.len(), 1);

    // 3. Subsumption-based source selection over a DL expression, using
    //    the axioms behind the map.
    println!("\n== logic-level source selection ==");
    let mut med2 = Mediator::from_axioms(
        "Spiny_Neuron = Neuron and exists has.Spine.
         Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.
         Granule_Cell < Neuron.",
        kind::dm::ExecMode::Assertion,
    )
    .expect("axioms parse");
    let mut purk = kind::core::MemoryWrapper::new("PURKINJE_LAB");
    purk.caps.push(kind::core::Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    purk.anchor_decls.push(kind::core::Anchor::Fixed {
        class: "cells".into(),
        concept: "Purkinje_Cell".into(),
    });
    purk.add_row("cells", "c1", vec![]);
    med2.register(std::sync::Arc::new(purk)).expect("registers");
    let mut gran = kind::core::MemoryWrapper::new("GRANULE_LAB");
    gran.caps.push(kind::core::Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    gran.anchor_decls.push(kind::core::Anchor::Fixed {
        class: "cells".into(),
        concept: "Granule_Cell".into(),
    });
    gran.add_row("cells", "c2", vec![]);
    med2.register(std::sync::Arc::new(gran)).expect("registers");
    let spiny = med2
        .select_sources_by_expression("Neuron and exists has.Spine")
        .expect("expression parses");
    println!("sources with 'Neuron ⊓ ∃has.Spine' data: {spiny:?}");
    assert_eq!(spiny, vec!["PURKINJE_LAB".to_string()]);

    // 4. The two-phase pipeline's warm-plan path. A §5 plan is a fetch
    //    phase (the mediator contacts the plan's sources, concurrently)
    //    followed by a pure evaluate phase. Run the fetch ONCE, freeze a
    //    snapshot, and any number of threads can replay the evaluate
    //    phase read-only — no wrapper is ever contacted again, and the
    //    trace is identical to the single-owner `run_section5` path.
    println!("\n== warm §5 plans on a snapshot ==");
    let schema = NeuroSchema::default();
    let q = Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    };
    // Ground truth: the &mut Mediator path (fetch + eval in one call).
    let expected = run_section5(&mut med, &schema, &q, true).expect("plan runs");
    // Warm path: fetch phase once...
    let (federation, knowledge) = med.fetch_eval_planes();
    let fetched =
        section5_fetch(federation, knowledge, &schema, &q, true).expect("fetch phase runs");
    // ...then the evaluate phase replays on the published snapshot,
    // loaded epoch-pinned from the mediator's hub by each thread.
    let hub = med.hub();
    med.publish_snapshot().expect("snapshot publishes");
    std::thread::scope(|s| {
        for t in 0..4 {
            let (hub, schema, fetched, expected) = (&hub, &schema, &fetched, &expected);
            s.spawn(move || {
                let snap = hub.load().expect("hub seeded");
                let replay = snap
                    .run_section5(schema, fetched)
                    .expect("warm plan replays");
                assert_eq!(&replay, expected, "thread {t} diverged");
            });
        }
    });
    println!(
        "4 threads replayed the warm plan: root {:?}, {} distribution rows, 0 new wrapper calls",
        expected.root,
        expected.distribution.len()
    );

    // 5. Goal-directed evaluation: the magic-sets rewrite. A query
    //    anchored at one class only *demands* that class's instance
    //    cone, so the engine skips the rest of the closure. The
    //    mediator's own `answer()` programs carry skolem guards that
    //    need the well-founded evaluator, where the rewrite declines
    //    and falls back to full bottom-up (`magic_fired` stays false) —
    //    so the demand win is shown on the stratified FL fragment,
    //    where `answer()`-style goal queries actually run it.
    println!("\n== demand-driven evaluation (magic sets) ==");
    println!(
        "mediator answer() above: {} facts derived, magic_fired={} (WFS fallback)",
        ans.stats.derived, ans.magic_fired
    );
    // A class forest: 6 subtrees of 4 classes under `thing`, 3 measured
    // objects per class. The query anchors at subtree 0's root.
    let fixture = || {
        let mut fl = FLogic::new();
        let mut text = String::new();
        for s in 0..6 {
            text.push_str(&format!("t{s}_0 :: thing.\n"));
            for l in 1..4 {
                text.push_str(&format!("t{s}_{l} :: t{s}_{}.\n", l - 1));
            }
            for l in 0..4 {
                for j in 0..3 {
                    text.push_str(&format!("o_{s}_{l}_{j} : t{s}_{l}.\n"));
                    text.push_str(&format!(
                        "o_{s}_{l}_{j}[amount -> {}].\n",
                        (s * 13 + l * 29 + j * 17) % 100
                    ));
                }
            }
        }
        fl.load(&text).expect("fixture loads");
        fl.load("hot(X, A) :- X : t0_0, X[amount -> A], A >= 50.")
            .expect("view loads");
        fl
    };
    let mut counts = Vec::new();
    for magic in [false, true] {
        let mut fl = fixture();
        let hot = fl.engine().lookup("hot").expect("view predicate");
        let goal = Atom::new(hot, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let opts = EvalOptions {
            magic_sets: magic,
            ..Default::default()
        };
        let model = fl.run_for_query(&goal, &opts).expect("query runs");
        println!(
            "  magic_sets={magic}: {} rows, {} facts derived (magic_fired={})",
            model.query(&goal).len(),
            model.stats.derived,
            model.profile.magic_fired
        );
        counts.push((model.query(&goal).len(), model.stats.derived));
    }
    assert_eq!(counts[0].0, counts[1].0, "same answers either way");
    assert!(
        counts[1].1 * 3 <= counts[0].1,
        "demand cuts derivation at least 3x"
    );
    println!(
        "same {} answers, {:.1}x fewer facts derived",
        counts[0].0,
        counts[0].1 as f64 / counts[1].1 as f64
    );
    println!("ok");
}
