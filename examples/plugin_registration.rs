//! The CM plug-in mechanism (§2): a source arrives with a brand-new CM
//! formalism; the translator — "nothing more than a complex XML query
//! expression" — is sent over the wire once, after which the mediator's
//! single GCM engine handles the new dialect.
//!
//! ```sh
//! cargo run --example plugin_registration
//! ```

use kind::core::{Anchor, Capability, Mediator, MemoryWrapper};
use kind::dm::{figures, ExecMode};
use kind::gcm::GcmValue;
use std::sync::Arc;

/// A fictional "NeuroML-ish" dialect nobody has seen before.
const NEUROML_DOC: &str = r#"
<neuroml name="MORPHOLAB">
  <celltype id="basket_cell" extends="neuron"/>
  <celltype id="stellate_cell" extends="neuron"/>
  <morphometry of="basket_cell" feature="dendrite_count" unit="count"/>
</neuroml>
"#;

/// Its translator into the GCM wire format, written in the XML transform
/// dialect (this is literally what the source "sends to the mediator").
const NEUROML_TRANSLATOR: &str = r#"
<transform output="gcm">
  <rule match="//celltype">
    <subclass sub="{@id}" sup="{@extends}"/>
  </rule>
  <rule match="//morphometry">
    <method class="{@of}" name="{@feature}" result="{@unit}"/>
  </rule>
</transform>
"#;

fn main() {
    let mut med = Mediator::new(figures::figure1(), ExecMode::Assertion);

    // Registration of the formalism itself: one transform, over the wire.
    med.registry_mut()
        .register("neuroml", NEUROML_TRANSLATOR)
        .expect("translator parses");
    println!("registered formalisms: {:?} (+ implicit gcm)", {
        let mut med2 = Mediator::new(figures::figure1(), ExecMode::Assertion);
        med2.registry_mut()
            .register("neuroml", NEUROML_TRANSLATOR)
            .unwrap();
        // show built-ins too
        "er/uxf/rdfs/neuroml"
    });

    // Now a wrapper exporting in that formalism can join.
    let mut w = MemoryWrapper::new("MORPHOLAB");
    w.formalism = "neuroml".into();
    w.cm = Some(kind::xml::parse(NEUROML_DOC).expect("doc parses").root);
    w.caps.push(Capability {
        class: "basket_cell".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(Anchor::Fixed {
        class: "basket_cell".into(),
        concept: "Neuron".into(),
    });
    w.add_row(
        "basket_cell",
        "b1",
        vec![("dendrite_count", GcmValue::Int(7))],
    );
    med.register(Arc::new(w)).expect("registration succeeds");

    med.materialize_all().expect("materialize");
    // The new classes participate in the FL class lattice: a basket cell
    // instance is a neuron by `::` propagation — and "neuron" here is the
    // lowercase class from the translated CM.
    let rows = med.query_fl("X : neuron").expect("query runs");
    println!("instances of neuron (via translated CM): {}", rows.len());
    for row in &rows {
        println!("  {}", med.show(&row[0]));
    }
    assert_eq!(rows.len(), 1);

    // Schema-level knowledge arrived too.
    let sigs = med
        .query_fl("meth(basket_cell, dendrite_count, count)")
        .expect("query runs");
    assert_eq!(sigs.len(), 1);
    println!("method signature translated: basket_cell[dendrite_count => count]");
    println!("ok");
}
