//! Examples 2 and 3 of the paper: integrity constraints as denials whose
//! violations insert failure witnesses into the inconsistency class `ic`.
//!
//! ```sh
//! cargo run --example integrity_constraints
//! ```

use kind::gcm::{Cardinality, ConceptualModel, GcmBase, GcmValue};

fn id(s: &str) -> GcmValue {
    GcmValue::Id(s.into())
}

fn main() {
    // --- Example 2: is `::` a partial order on the meta-class `class`? --
    let mut base = GcmBase::new();
    base.apply(
        &ConceptualModel::new("HIERARCHY")
            .subclass("purkinje_cell", "spiny_neuron")
            .subclass("spiny_neuron", "neuron")
            // A modelling accident: a subclass cycle.
            .subclass("neuron", "purkinje_cell"),
    )
    .expect("CM applies");
    base.require_partial_order("class", "isa")
        .expect("constraint installs");
    let model = base.run().expect("evaluation succeeds");
    let witnesses = base.witnesses(&model);
    println!("Example 2 — partial-order check on `::`:");
    for w in &witnesses {
        println!("  ic <- {w}");
    }
    assert!(
        witnesses.iter().any(|w| w.starts_with("was(")),
        "antisymmetry violations detected"
    );

    // --- Example 3: cardinalities on has(neuron, axon). ------------------
    let mut base = GcmBase::new();
    base.apply(
        &ConceptualModel::new("CARD")
            .relation("has", &[("neuron", "neuron"), ("axon", "axon")])
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax1"))])
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax2"))])
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax3"))])
            .relation_inst("has", &[("neuron", id("n2")), ("axon", id("ax3"))]),
    )
    .expect("CM applies");
    // "a neuron can have ≤2 axons and an axon is contained in exactly one
    // neuron" (Example 3).
    base.require_cardinality("has", Cardinality::FirstExact(1))
        .expect("constraint installs");
    base.require_cardinality("has", Cardinality::SecondAtMost(2))
        .expect("constraint installs");
    let model = base.run().expect("evaluation succeeds");
    let witnesses = base.witnesses(&model);
    println!("\nExample 3 — cardinality checks on has(neuron, axon):");
    for w in &witnesses {
        println!("  ic <- {w}");
    }
    assert!(witnesses.iter().any(|w| w.starts_with("w_card_first(")));
    assert!(witnesses
        .iter()
        .any(|w| w.starts_with("w_card_second_max(")));

    // A clean population is silent.
    let mut clean = GcmBase::new();
    clean
        .apply(
            &ConceptualModel::new("CARD")
                .relation("has", &[("neuron", "neuron"), ("axon", "axon")])
                .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax1"))]),
        )
        .expect("CM applies");
    clean
        .require_cardinality("has", Cardinality::FirstExact(1))
        .expect("constraint installs");
    let model = clean.run().expect("evaluation succeeds");
    assert!(clean.witnesses(&model).is_empty());
    println!("\nclean population: no witnesses — consistent. ok");
}
