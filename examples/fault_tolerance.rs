//! Fault-tolerant federation: the §5 query under injected source faults.
//!
//! SENSELAB is wrapped in a [`FaultInjector`] and subjected, in turn, to
//! a transient outage (absorbed by retries), a hard outage (partial
//! answer, flagged incomplete), a tripped circuit breaker (skipped
//! without being contacted), and seeded row corruption (quarantined
//! against its declared conceptual model). Everything is deterministic:
//! faults follow seeded schedules and time is a virtual clock.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use kind::core::{
    run_section5, BreakerConfig, Fault, NeuroSchema, RetryPolicy, Section5Query, SourcePolicy,
};
use kind::sources::{build_scenario_with_faults, ScenarioParams};

fn query() -> Section5Query {
    Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    }
}

fn main() {
    let params = ScenarioParams::default();
    let schema = NeuroSchema::default();

    println!("== transient outage: SENSELAB fails twice, retries absorb it ==");
    let (mut med, injector) = build_scenario_with_faults(&params, vec![Fault::FailFirst(2)]);
    let trace = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    println!(
        "  wrapper calls: {} (2 failures + 1 success)",
        injector.calls()
    );
    println!("  distribution rows: {}", trace.distribution.len());
    println!("  report: {}", trace.report.summary());
    assert!(trace.report.is_complete());

    println!("\n== hard outage: SENSELAB down past the retry budget ==");
    let (mut med, _injector) =
        build_scenario_with_faults(&params, vec![Fault::FailFirst(u32::MAX)]);
    let trace = run_section5(&mut med, &schema, &query(), true).expect("plan still runs");
    println!(
        "  distribution rows: {} (partial answer)",
        trace.distribution.len()
    );
    println!("  complete: {}", trace.report.is_complete());
    println!("  report: {}", trace.report.summary());
    assert!(!trace.report.is_complete());

    println!("\n== circuit breaker: repeated failures stop the hammering ==");
    let (mut med, injector) = build_scenario_with_faults(&params, vec![Fault::EveryKth(1)]);
    med.set_source_policy(
        "SENSELAB",
        SourcePolicy {
            retry: RetryPolicy::none(),
            timeout_ms: 0,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 1_000,
            },
            ..SourcePolicy::default()
        },
    );
    // Two failed plan runs trip the breaker; the third is refused
    // without the wrapper ever being contacted.
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    let calls_tripped = injector.calls();
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    println!(
        "  breaker state: {:?}; wrapper calls while open: {}",
        med.breaker_state("SENSELAB").unwrap(),
        injector.calls() - calls_tripped
    );
    med.clock().advance_ms(1_000);
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    println!(
        "  after cooldown: half-open trial contacted the source ({} calls total)",
        injector.calls()
    );

    println!("\n== deadline: a slow source is cut off, the answer degrades ==");
    let (mut med, _injector) =
        build_scenario_with_faults(&params, vec![Fault::Slow { delay_ms: 500 }]);
    med.set_query_budget_ms(200);
    let trace = run_section5(&mut med, &schema, &query(), true).expect("plan degrades, not aborts");
    println!("  report: {}", trace.report.summary_line());
    assert!(trace.report.deadline_exceeded());
    assert!(!trace.report.is_complete());

    println!("\n== hedge: a backup attempt races the slow tail, answer stays complete ==");
    let (mut med, injector) = build_scenario_with_faults(
        &params,
        vec![Fault::SlowTail {
            seed: 7,
            delay_ms: 400,
            slow_per_mille: 500,
        }],
    );
    med.set_source_policy("SENSELAB", SourcePolicy::with_hedge_after_ms(50));
    let mut hedged_total = 0;
    for _ in 0..6 {
        let trace = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
        let sl = trace.report.source("SENSELAB").expect("contacted");
        hedged_total += sl.hedged;
        assert!(trace.report.is_complete(), "hedged answers stay complete");
    }
    println!(
        "  6 runs: {hedged_total} hedged backups, {} wrapper calls total",
        injector.calls()
    );
    assert!(hedged_total > 0, "the seeded slow tail triggers hedges");

    println!("\n== chaos: seeded row corruption quarantined against the CM ==");
    let (mut med, _injector) = build_scenario_with_faults(
        &params,
        vec![Fault::CorruptRows {
            seed: 9,
            corrupt_per_mille: 300,
        }],
    );
    med.materialize_all()
        .expect("materialization degrades, not aborts");
    let report = med.report();
    println!("  report: {}", report.summary());
    for q in report.quarantined.iter().take(5) {
        println!(
            "  quarantined {}/{} row `{}`: {}",
            q.source, q.class, q.row_id, q.reason
        );
    }
    println!("ok");
}
