//! Fault-tolerant federation: the §5 query under injected source faults.
//!
//! SENSELAB is wrapped in a [`FaultInjector`] and subjected, in turn, to
//! a transient outage (absorbed by retries), a hard outage (partial
//! answer, flagged incomplete), a tripped circuit breaker (skipped
//! without being contacted), and seeded row corruption (quarantined
//! against its declared conceptual model). Everything is deterministic:
//! faults follow seeded schedules and time is a virtual clock.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use kind::core::{
    run_section5, Anchor, BreakerConfig, Capability, Fault, FaultInjector, FetchMode, FetchRequest,
    Mediator, MemoryWrapper, NeuroSchema, RetryPolicy, Section5Query, SourcePolicy, StallAware,
    Wrapper,
};
use kind::dm::{figures, ExecMode};
use kind::gcm::GcmValue;
use kind::sources::{build_scenario_with_faults, ScenarioParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn query() -> Section5Query {
    Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    }
}

fn main() {
    let params = ScenarioParams::default();
    let schema = NeuroSchema::default();

    println!("== transient outage: SENSELAB fails twice, retries absorb it ==");
    let (mut med, injector) = build_scenario_with_faults(&params, vec![Fault::FailFirst(2)]);
    let trace = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    println!(
        "  wrapper calls: {} (2 failures + 1 success)",
        injector.calls()
    );
    println!("  distribution rows: {}", trace.distribution.len());
    println!("  report: {}", trace.report.summary());
    assert!(trace.report.is_complete());

    println!("\n== hard outage: SENSELAB down past the retry budget ==");
    let (mut med, _injector) =
        build_scenario_with_faults(&params, vec![Fault::FailFirst(u32::MAX)]);
    let trace = run_section5(&mut med, &schema, &query(), true).expect("plan still runs");
    println!(
        "  distribution rows: {} (partial answer)",
        trace.distribution.len()
    );
    println!("  complete: {}", trace.report.is_complete());
    println!("  report: {}", trace.report.summary());
    assert!(!trace.report.is_complete());

    println!("\n== circuit breaker: repeated failures stop the hammering ==");
    let (mut med, injector) = build_scenario_with_faults(&params, vec![Fault::EveryKth(1)]);
    med.set_source_policy(
        "SENSELAB",
        SourcePolicy {
            retry: RetryPolicy::none(),
            timeout_ms: 0,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 1_000,
            },
            ..SourcePolicy::default()
        },
    );
    // Two failed plan runs trip the breaker; the third is refused
    // without the wrapper ever being contacted.
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    let calls_tripped = injector.calls();
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    println!(
        "  breaker state: {:?}; wrapper calls while open: {}",
        med.breaker_state("SENSELAB").unwrap(),
        injector.calls() - calls_tripped
    );
    med.clock().advance_ms(1_000);
    let _ = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
    println!(
        "  after cooldown: half-open trial contacted the source ({} calls total)",
        injector.calls()
    );

    println!("\n== deadline: a slow source is cut off, the answer degrades ==");
    let (mut med, _injector) =
        build_scenario_with_faults(&params, vec![Fault::Slow { delay_ms: 500 }]);
    med.set_query_budget_ms(200);
    let trace = run_section5(&mut med, &schema, &query(), true).expect("plan degrades, not aborts");
    println!("  report: {}", trace.report.summary_line());
    assert!(trace.report.deadline_exceeded());
    assert!(!trace.report.is_complete());

    println!("\n== hedge: a backup attempt races the slow tail, answer stays complete ==");
    let (mut med, injector) = build_scenario_with_faults(
        &params,
        vec![Fault::SlowTail {
            seed: 7,
            delay_ms: 400,
            slow_per_mille: 500,
        }],
    );
    med.set_source_policy("SENSELAB", SourcePolicy::with_hedge_after_ms(50));
    let mut hedged_total = 0;
    for _ in 0..6 {
        let trace = run_section5(&mut med, &schema, &query(), true).expect("plan runs");
        let sl = trace.report.source("SENSELAB").expect("contacted");
        hedged_total += sl.hedged;
        assert!(trace.report.is_complete(), "hedged answers stay complete");
    }
    println!(
        "  6 runs: {hedged_total} hedged backups, {} wrapper calls total",
        injector.calls()
    );
    assert!(hedged_total > 0, "the seeded slow tail triggers hedges");

    println!("\n== chaos: seeded row corruption quarantined against the CM ==");
    let (mut med, _injector) = build_scenario_with_faults(
        &params,
        vec![Fault::CorruptRows {
            seed: 9,
            corrupt_per_mille: 300,
        }],
    );
    med.materialize_all()
        .expect("materialization degrades, not aborts");
    let report = med.report();
    println!("  report: {}", report.summary());
    for q in report.quarantined.iter().take(5) {
        println!(
            "  quarantined {}/{} row `{}`: {}",
            q.source, q.class, q.row_id, q.reason
        );
    }
    println!("\n== overlapped fetch: 32 stalling sources without 32 threads ==");
    overlapped_slow_tail_demo();

    println!("ok");
}

/// A federation of 32 independent sources, each stalling `stall` of real
/// wall time per contact (a network round-trip) and carrying a seeded
/// virtual-time latency tail. `hedge` arms a 50ms hedge threshold.
fn slow_tail_federation(hedge: bool, stall: Duration) -> Mediator {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    if hedge {
        m.set_default_policy(SourcePolicy::with_hedge_after_ms(50));
    }
    for s in 0..32usize {
        let class = format!("c{s}");
        let mut w = MemoryWrapper::new(format!("S{s}"));
        w.caps.push(Capability {
            class: class.clone(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: class.clone(),
            concept: "Spine".into(),
        });
        w.add_row(
            &class,
            &format!("s{s}"),
            vec![("value", GcmValue::Int(s as i64))],
        );
        let stalled = StallAware::new(Arc::new(w), stall);
        let injector = Arc::new(FaultInjector::new(stalled, m.clock()).with_fault(
            Fault::SlowTail {
                seed: 40 + s as u64,
                delay_ms: 400,
                slow_per_mille: 40,
            },
        ));
        injector.disarm();
        m.register(Arc::clone(&injector) as Arc<dyn Wrapper>)
            .expect("slow-tail source registers");
        injector.arm();
    }
    m
}

/// The PR 10 demo: hedging collapses the *virtual-time* p99 (the seeded
/// tail is re-rolled by the backup attempt), while the overlapped
/// executor collapses the *thread* footprint — all 32 wall stalls park on
/// one timer wheel instead of each pinning a worker.
fn overlapped_slow_tail_demo() {
    let requests: Vec<FetchRequest> = (0..32)
        .map(|s| FetchRequest::scan(format!("S{s}"), format!("c{s}")))
        .collect();
    let percentile = |sorted: &[u64], p: f64| -> u64 {
        sorted[((sorted.len() - 1) as f64 * p).round() as usize]
    };

    // Virtual-time tail, hedged vs. not: 8 rounds × 32 sources, one
    // charged-cost sample per fetch. A hedge charges only the winning
    // attempt, so the seeded 400ms tail collapses to the ~50ms it takes
    // the backup to answer.
    for hedge in [false, true] {
        let mut m = slow_tail_federation(hedge, Duration::from_millis(1));
        m.set_fetch_mode(FetchMode::Overlapped);
        m.federation_mut().set_fetch_threads(4);
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..8 {
            for r in &requests {
                let set = m
                    .federation_mut()
                    .fetch_parallel(std::slice::from_ref(r))
                    .expect("fetch");
                assert!(set.is_complete());
                samples.push(set.report.elapsed_ms);
            }
        }
        samples.sort_unstable();
        println!(
            "  {} per-fetch virtual ms: p50 {:>3}, p99 {:>3}",
            if hedge { "hedged  " } else { "unhedged" },
            percentile(&samples, 0.50),
            percentile(&samples, 0.99),
        );
    }

    // Wall time and thread footprint, scoped vs. overlapped. The scoped
    // plane sees the stall hints and sizes thread-per-source (32 workers
    // on any host); the overlapped executor parks the same 32 stalls on
    // 4 workers.
    for (label, mode, workers) in [
        ("scoped    ", FetchMode::ScopedThreads, 0usize),
        ("overlapped", FetchMode::Overlapped, 4),
    ] {
        let mut m = slow_tail_federation(false, Duration::from_millis(5));
        m.set_fetch_mode(mode);
        m.federation_mut().set_fetch_threads(workers);
        m.federation_mut().reset_peak_fetch_threads();
        let start = Instant::now();
        let set = m.federation_mut().fetch_parallel(&requests).expect("fetch");
        let wall = start.elapsed();
        assert!(set.is_complete());
        println!(
            "  {label} wall {:>5.1}ms, peak fetch threads {:>2}",
            wall.as_secs_f64() * 1e3,
            m.federation().peak_fetch_threads(),
        );
    }
    println!("  same rows, same reports — only wall clock and threads differ");
}
