//! An interactive mediator shell: drive the KIND mediator from a small
//! command language. Sources arrive as XML bundles (files or inline),
//! exactly as they would over the wire.
//!
//! ```sh
//! cargo run --example mediator_shell            # built-in demo script
//! cargo run --example mediator_shell -- -       # read commands from stdin
//! cargo run --example mediator_shell -- my.kind # run a script file
//! ```
//!
//! Commands:
//!
//! ```text
//! axioms <DL axioms...>       extend the domain map
//! source <path.xml>           register a source bundle from a file
//! sources                     list registered sources
//! view <FL rule>              define an integrated view
//! query <FL pattern>          materialize + query
//! answer <FL rule>            on-demand query (push-down)
//! lub <c1> <c2> ...           partonomy lub along has_a
//! select <c1> <c2> ...        source selection via the semantic index
//! dot                         print the domain map as DOT
//! quit
//! ```

use kind::core::{Mediator, MemoryWrapper};
use kind::dm::{DomainMap, ExecMode};
use std::io::BufRead;
use std::sync::Arc;

const DEMO: &str = r#"
axioms Neuron < exists has_a.Compartment. Dendrite, Axon < Compartment. Purkinje_Cell < Neuron. Purkinje_Cell < exists has_a.Purkinje_Dendrite. Purkinje_Dendrite < Dendrite.
sources
inline_source <source name="LAB"><capability class="m" pushable="loc"/><anchor class="m" attr="loc"/><data class="m"><row id="r1"><v name="loc" id="Purkinje_Cell"/><v name="amount" int="40"/></row><row id="r2"><v name="loc" id="Purkinje_Dendrite"/><v name="amount" int="7"/></row></data></source>
sources
select Neuron
lub Purkinje_Cell Purkinje_Dendrite
view big(X) :- X : m, X[amount -> A], A > 10.
query big(X)
why big("LAB.r1")
answer small(X, A) :- X : m, X[amount -> A], A < 10.
quit
"#;

struct Shell {
    med: Mediator,
}

impl Shell {
    fn new() -> Self {
        Shell {
            med: Mediator::new(DomainMap::new(), ExecMode::Assertion),
        }
    }

    fn exec(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "quit" | "exit" => return false,
            "axioms" => {
                // Rebuild the mediator with an extended map. For
                // simplicity the shell keeps a growing axiom text.
                match kind::dm::parse_axioms(rest) {
                    Ok(_) => {
                        let mut dm = self.med.dm().clone();
                        match kind::dm::load_axioms(&mut dm, rest) {
                            Ok(_) => {
                                // Mediator has no replace-map API by design
                                // (sources anchor against it); the shell
                                // only allows this before sources join.
                                if self.med.sources().is_empty() {
                                    self.med = Mediator::new(dm, ExecMode::Assertion);
                                    println!(
                                        "ok: {} concepts, {} edges",
                                        self.med.dm().concepts().count(),
                                        self.med.dm().edge_count()
                                    );
                                } else {
                                    println!("error: load axioms before registering sources (or put them in the source bundle's <axioms>)");
                                }
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "source" => match std::fs::read_to_string(rest) {
                Ok(text) => self.register_bundle(&text),
                Err(e) => println!("error reading {rest}: {e}"),
            },
            "inline_source" => self.register_bundle(rest),
            "sources" => {
                if self.med.sources().is_empty() {
                    println!("(no sources registered)");
                }
                for s in self.med.sources() {
                    println!(
                        "  {} [{}] classes={:?}",
                        s.name,
                        s.wrapper.formalism(),
                        s.classes
                    );
                }
            }
            "view" => match self.med.define_view(rest) {
                Ok(()) => println!("ok"),
                Err(e) => println!("error: {e}"),
            },
            "query" => {
                if let Err(e) = self.med.materialize_all() {
                    println!("error: {e}");
                    return true;
                }
                match self.med.query_fl(rest) {
                    Ok(rows) => {
                        println!("{} answers", rows.len());
                        for row in rows.iter().take(10) {
                            let shown: Vec<String> =
                                row.iter().map(|t| self.med.show(t)).collect();
                            println!("  {}", shown.join(", "));
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "answer" => match self.med.answer(rest) {
                Ok(ans) => {
                    println!(
                        "{} answers (sources contacted: {:?})",
                        ans.rows.len(),
                        ans.sources
                    );
                    for row in ans.rows.iter().take(10) {
                        let shown: Vec<String> =
                            row.iter().map(|t| self.med.show(t)).collect();
                        println!("  {}", shown.join(", "));
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            "lub" => {
                let concepts: Vec<&str> = rest.split_whitespace().collect();
                match self.med.partonomy_lub("has_a", &concepts) {
                    Ok(l) => println!("lub = {l:?}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "select" => {
                let concepts: Vec<&str> = rest.split_whitespace().collect();
                match self.med.select_sources(&concepts) {
                    Ok(s) => println!("sources: {s:?}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "why" => match self.med.explain_fl(rest) {
                Ok(Some(tree)) => print!("{tree}"),
                Ok(None) => println!("(fact does not hold)"),
                Err(e) => println!("error: {e}"),
            },
            "dot" => print!("{}", kind::dm::dot::to_dot(self.med.dm(), &[])),
            other => println!("unknown command `{other}` (try: axioms/source/sources/view/query/answer/lub/select/dot/quit)"),
        }
        true
    }

    fn register_bundle(&mut self, text: &str) {
        match kind::xml::parse(text) {
            Ok(doc) => match MemoryWrapper::from_xml(&doc.root) {
                Ok(w) => match self.med.register(Arc::new(w)) {
                    Ok(id) => println!("registered as {id}"),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error: {e}"),
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let mut shell = Shell::new();
    match arg.as_deref() {
        None => {
            println!("(running built-in demo; pass `-` for stdin)");
            for line in DEMO.lines() {
                if !line.trim().is_empty() {
                    println!("kind> {line}");
                }
                if !shell.exec(line) {
                    break;
                }
            }
        }
        Some("-") => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if !shell.exec(&line) {
                    break;
                }
            }
        }
        Some(path) => {
            let text = std::fs::read_to_string(path).expect("script file readable");
            for line in text.lines() {
                if !shell.exec(line) {
                    break;
                }
            }
        }
    }
}
