//! Quickstart: build a domain map, register a wrapped source, and ask a
//! conceptual-level question.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kind::core::{Anchor, Capability, Mediator, MemoryWrapper};
use kind::dm::{DomainMap, ExecMode};
use kind::gcm::GcmValue;
use std::sync::Arc;

fn main() {
    // 1. The mediation engineer writes down domain knowledge as DL
    //    axioms (Definition 1 of the paper).
    let mut dm = DomainMap::new();
    kind::dm::load_axioms(
        &mut dm,
        "Neuron < exists has.Compartment.
         Axon, Dendrite, Soma < Compartment.
         Spiny_Neuron = Neuron and exists has.Spine.
         Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.",
    )
    .expect("axioms parse");
    println!(
        "domain map: {} concepts, {} edges",
        dm.concepts().count(),
        dm.edge_count()
    );

    // 2. Stand up a mediator that executes domain-map edges as
    //    assertions (missing role fillers become virtual placeholders).
    let mut med = Mediator::new(dm, ExecMode::Assertion);

    // 3. A laboratory source joins: it exports a class of measurements,
    //    declares what selections it can evaluate, and anchors its data
    //    at the concept it studies.
    let mut lab = MemoryWrapper::new("MYLAB");
    lab.caps.push(Capability {
        class: "cell_measurement".into(),
        pushable: vec!["location".into()],
    });
    lab.anchor_decls.push(Anchor::ByAttr {
        class: "cell_measurement".into(),
        attr: "location".into(),
    });
    for (i, (loc, size)) in [
        ("Purkinje_Cell", 31),
        ("Purkinje_Cell", 28),
        ("Pyramidal_Cell", 19),
    ]
    .iter()
    .enumerate()
    {
        lab.add_row(
            "cell_measurement",
            &format!("m{i}"),
            vec![
                ("location", GcmValue::Id((*loc).into())),
                ("soma_size", GcmValue::Int(*size)),
            ],
        );
    }
    med.register(Arc::new(lab)).expect("registration succeeds");

    // 4. Source selection through the domain map: the lab never said it
    //    studies "neurons", but the semantic index knows.
    println!(
        "sources with neuron data: {:?}",
        med.sources_below("Neuron").expect("concept exists")
    );

    // 5. Loose federation: materialize and query at the conceptual level.
    med.materialize_all().expect("materialization succeeds");
    med.define_view("big_cell(X) :- X : cell_measurement, X[soma_size -> S], S > 25.")
        .expect("view compiles");
    med.materialize_all().expect("rebuild after view");
    let rows = med.query_fl("big_cell(X)").expect("query runs");
    println!("big cells:");
    for row in &rows {
        println!("  {}", med.show(&row[0]));
    }
    assert_eq!(rows.len(), 2);

    // 6. Concurrent serving through the publication hub: subscribe to
    //    the mediator's `SnapshotHub`, publish, and any number of
    //    threads load the current epoch-pinned snapshot wait-free while
    //    the mediator (the single writer) stays free to keep evolving.
    //    Warm §5 plans replay on snapshots the same way — see the
    //    `on_demand_queries` example; `kind-server` is this pattern as a
    //    standing binary.
    let hub = med.hub();
    med.publish_snapshot().expect("snapshot publishes");
    std::thread::scope(|s| {
        for _ in 0..4 {
            let hub = &hub;
            s.spawn(move || {
                let snap = hub.load().expect("hub seeded");
                let served = snap.query_fl_rendered("big_cell(X)").expect("query runs");
                assert_eq!(served.len(), 2);
                assert_eq!(snap.epoch(), 1);
            });
        }
    });
    println!("hub epoch 1 served the same answer from 4 threads");
    println!("ok");
}
