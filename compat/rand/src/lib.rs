//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this tiny crate
//! provides exactly the API surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open
//! integer ranges. The generator is a SplitMix64 stream — statistically
//! fine for seeded synthetic data, and fully deterministic, which is all
//! the simulated sources and benchmarks require. It is NOT the upstream
//! ChaCha-based `StdRng`; sequences differ from real `rand`, but every
//! consumer in this workspace only relies on determinism per seed.
#![warn(missing_docs)]

use std::ops::Range;

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic seeded RNG (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniformly maps a raw `u64` into `[lo, hi)`. `hi > lo` is the
    /// caller's obligation (mirrors `rand`'s panic on empty ranges).
    fn from_raw(lo: Self, hi: Self, raw: u64) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_raw(lo: Self, hi: Self, raw: u64) -> Self {
                let span = (hi - lo) as u64;
                lo + (raw % span) as $t
            }
        }
    )*};
}
macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_raw(lo: Self, hi: Self, raw: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128 as u64;
                lo.wrapping_add((raw % span) as $t)
            }
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

/// Sampling interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open). Panics on an empty
    /// range, like upstream `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::from_raw(range.start, range.end, self.next_u64())
    }

    /// `true` with probability `p` (0.0 ..= 1.0).
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-5i64..6);
            assert!((-5..6).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
