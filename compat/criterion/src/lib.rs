//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of criterion's API the workspace benches use —
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `sample_size`, `finish`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurements are plain
//! wall-clock means printed to stdout: good enough to compare runs on one
//! machine, with none of criterion's statistics.
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, like criterion's.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the measured samples.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        mean_ns: 0.0,
    };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("bench {label:<50} {value:>10.2} {unit}/iter ({samples} samples)");
}

/// The benchmark context handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: default_samples(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, default_samples(), |b| f(b));
        self
    }
}

/// Samples per measurement; `KIND_BENCH_SAMPLES` overrides for quick runs.
fn default_samples() -> usize {
    std::env::var("KIND_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each measurement takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| f(b));
        self
    }

    /// Benchmarks a closure with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        target(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 2 + 2));
    }
}
