//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, integer-range / tuple / `&str`-regex /
//! collection strategies, `prop_map`, `prop_recursive`, [`prop_oneof!`],
//! and the `prop_assert*` macros. Differences from upstream:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   (printed by the assertion) rather than a minimized counterexample;
//! * **deterministic by construction** — case `i` of every test derives
//!   its RNG from `i`, so failures always reproduce;
//! * the `&str` strategy supports the character-class subset of regex the
//!   tests use (`[a-z]`, ranges, `&&[^…]` intersection, `{m,n}` repeats).
#![warn(missing_docs)]

use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one numbered test case (deterministic per case).
    pub fn for_case(case: u32) -> Self {
        let mut r = TestRng {
            state: 0x5eed_0000_0000_0000u64 ^ u64::from(case).wrapping_mul(0x9e37_79b9),
        };
        r.next(); // decorrelate small seeds
        r
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

// ---------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// shallower levels and returns the strategy for one level deeper;
    /// applied `depth` times starting from `self` (the leaf strategy).
    /// The size-tuning parameters of upstream proptest are accepted and
    /// ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = f(cur).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// Integer ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + (rng.below(span) as i128)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

// ---------------------------------------------------------------------
// &str regex-subset strategy
// ---------------------------------------------------------------------

/// Parses the supported regex subset: a sequence of units, each a literal
/// character or a `[...]` class (ranges, `&&[^...]` intersection),
/// optionally followed by `{m}` / `{m,n}`.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut units = Vec::new();
    while i < chars.len() {
        let set = if chars[i] == '[' {
            parse_class(&chars, &mut i)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = parse_quantifier(&chars, &mut i);
        units.push((set, min, max));
    }
    units
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    if *i >= chars.len() || chars[*i] != '{' {
        return (1, 1);
    }
    *i += 1; // '{'
    let mut min = 0usize;
    while chars[*i].is_ascii_digit() {
        min = min * 10 + chars[*i].to_digit(10).unwrap() as usize;
        *i += 1;
    }
    let max = if chars[*i] == ',' {
        *i += 1;
        let mut m = 0usize;
        while chars[*i].is_ascii_digit() {
            m = m * 10 + chars[*i].to_digit(10).unwrap() as usize;
            *i += 1;
        }
        m
    } else {
        min
    };
    assert!(chars[*i] == '}', "unterminated quantifier in pattern");
    *i += 1;
    (min, max)
}

/// Parses one `[...]` class starting at `chars[*i] == '['`, returning the
/// sorted member set (over printable ASCII).
fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
    *i += 1; // '['
    let negate = chars[*i] == '^';
    if negate {
        *i += 1;
    }
    let mut set: Vec<char> = Vec::new();
    loop {
        match chars[*i] {
            ']' => {
                *i += 1;
                break;
            }
            '&' if chars.get(*i + 1) == Some(&'&') => {
                *i += 2;
                assert!(chars[*i] == '[', "`&&` must be followed by a class");
                let other = parse_class(chars, i);
                set.retain(|c| other.contains(c));
            }
            c => {
                *i += 1;
                if chars.get(*i) == Some(&'-') && chars.get(*i + 1) != Some(&']') {
                    let hi = chars[*i + 1];
                    *i += 2;
                    for x in (c as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(x) {
                            set.push(ch);
                        }
                    }
                } else {
                    set.push(c);
                }
            }
        }
    }
    if negate {
        // Complement over printable ASCII (all patterns used are ASCII).
        set = (0x20u32..0x7f)
            .filter_map(char::from_u32)
            .filter(|c| !set.contains(c))
            .collect();
    }
    set.sort_unstable();
    set.dedup();
    set
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (set, min, max) in parse_pattern(self) {
            assert!(!set.is_empty(), "empty character class in `{self}`");
            let n = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// How many elements a generated collection holds.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// A strategy yielding `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn it_holds(x in 0usize..10, v in prop::collection::vec(0u8..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, ProptestConfig, Strategy, TestRng};

    /// Namespaced strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let (a, b) = Strategy::generate(&(0usize..12, 3i64..9), &mut rng);
            assert!(a < 12);
            assert!((3..9).contains(&b));
        }
    }

    #[test]
    fn regex_subset_classes() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            // Intersection-with-negation: printable ASCII minus <>&".
            let t = Strategy::generate(&"[ -~&&[^<>&\"]]{0,12}", &mut rng);
            assert!(
                t.chars()
                    .all(|c| (' '..='~').contains(&c) && !"<>&\"".contains(c)),
                "{t:?}"
            );
        }
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = TestRng::for_case(2);
        for _ in 0..50 {
            let v = Strategy::generate(&prop::collection::vec(0u8..5, 0..40), &mut rng);
            assert!(v.len() < 40);
            let exact = Strategy::generate(&prop::collection::vec(0u8..5, 19usize), &mut rng);
            assert_eq!(exact.len(), 19);
        }
    }

    #[test]
    fn oneof_map_and_recursive_compose() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    assert!(*n < 10, "leaves come from the 0..10 strategy");
                    1
                }
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                (0u8..10).prop_map(Tree::Leaf),
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node),
            ]
        });
        let mut rng = TestRng::for_case(3);
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: args bind, bodies run per case.
        #[test]
        fn macro_roundtrip(x in 0usize..10, pair in (0u8..4, 0u8..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(pair.0 < 4, true);
        }
    }
}
