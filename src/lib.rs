//! # kind — Model-Based Mediation with Domain Maps
//!
//! A Rust reproduction of the KIND mediator (Ludäscher, Gupta, Martone:
//! *Model-Based Mediation with Domain Maps*, ICDE 2001). This facade
//! crate re-exports the whole stack:
//!
//! * [`datalog`] — Datalog engine with well-founded negation, aggregation,
//!   and skolem function terms (the FLORA stand-in);
//! * [`flogic`] — the F-logic fragment of Table 1 hosting the GCM;
//! * [`xml`] — the XML wire format, path language, and the transform
//!   language CM plug-ins are written in;
//! * [`gcm`] — the Generic Conceptual Model, integrity constraints, and
//!   the CM plug-in registry;
//! * [`dm`] — domain maps: DL axioms, closure operations, lub, the
//!   semantic index, structural subsumption;
//! * [`core`] — the mediator: registration, integrated views, the §5
//!   query plan;
//! * [`sources`] — the simulated Neuroscience multiple-worlds scenario.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the experiment index.

pub use kind_core as core;
pub use kind_datalog as datalog;
pub use kind_dm as dm;
pub use kind_flogic as flogic;
pub use kind_gcm as gcm;
pub use kind_sources as sources;
pub use kind_xml as xml;
