//! Stress and adversarial-input tests for the XML substrate.

use kind_xml::{parse, to_pretty_string, to_string, Element, Path, Transform};

#[test]
fn large_flat_document_roundtrips() {
    let mut doc = String::from("<root>");
    for i in 0..5000 {
        doc.push_str(&format!("<item id=\"i{i}\" v=\"{}\"/>", i * 7));
    }
    doc.push_str("</root>");
    let parsed = parse(&doc).unwrap();
    assert_eq!(parsed.root.elements().count(), 5000);
    let out = to_string(&parsed.root);
    assert_eq!(parse(&out).unwrap(), parsed);
}

#[test]
fn deeply_nested_document() {
    let depth = 200;
    let mut doc = String::new();
    for i in 0..depth {
        doc.push_str(&format!("<d{i}>"));
    }
    doc.push_str("leaf");
    for i in (0..depth).rev() {
        doc.push_str(&format!("</d{i}>"));
    }
    let parsed = parse(&doc).unwrap();
    assert_eq!(parsed.root.deep_text(), "leaf");
    assert_eq!(parsed.root.subtree_size(), depth);
}

#[test]
fn malformed_inputs_error_not_panic() {
    for bad in [
        "",
        "<",
        "<a",
        "<a>",
        "<a></b>",
        "<a x=></a>",
        "<a x=\"unterminated></a>",
        "<a>&unknownentity;</a>",
        "<a>&#xZZ;</a>",
        "<!DOCTYPE unterminated",
        "<a><![CDATA[unterminated</a>",
        "text outside",
        "<1bad/>",
    ] {
        assert!(parse(bad).is_err(), "should reject: {bad:?}");
    }
}

#[test]
fn path_over_wide_document() {
    let mut root = Element::new("cm");
    for i in 0..1000 {
        root = root.with_child(
            Element::new("class")
                .with_attr("name", format!("c{i}"))
                .with_child(Element::new("attr").with_attr("name", format!("a{i}"))),
        );
    }
    let p = Path::parse("class[@name='c500']/attr/@name").unwrap();
    assert_eq!(p.select_first_string(&root), Some("a500".to_string()));
    let all = Path::parse("//attr").unwrap();
    assert_eq!(all.select_elems(&root).len(), 1000);
}

#[test]
fn path_parse_errors() {
    for bad in ["", "/", "a[", "a[@x", "a[@x=]", "a[@x='v'", "a/@b/c", "a//"] {
        assert!(Path::parse(bad).is_err(), "should reject path: {bad:?}");
    }
}

#[test]
fn transform_chaining() {
    // Transform output is a regular element: transforms compose.
    let t1 = Transform::parse(
        r#"<transform output="stage1">
             <rule match="//raw"><cooked v="{@v}"/></rule>
           </transform>"#,
    )
    .unwrap();
    let t2 = Transform::parse(
        r#"<transform output="stage2">
             <rule match="//cooked"><served v="{@v}!"/></rule>
           </transform>"#,
    )
    .unwrap();
    let input = parse(r#"<in><raw v="1"/><raw v="2"/></in>"#).unwrap();
    let stage1 = t1.apply(&input.root);
    let stage2 = t2.apply(&stage1);
    let vs: Vec<_> = stage2
        .elements_named("served")
        .map(|e| e.attr("v").unwrap().to_string())
        .collect();
    assert_eq!(vs, vec!["1!", "2!"]);
}

#[test]
fn pretty_print_is_reparseable() {
    let doc = parse(
        r#"<gcm name="X"><class name="a"><method name="m"/></class><rule>x &lt; y</rule></gcm>"#,
    )
    .unwrap();
    let pretty = to_pretty_string(&doc.root);
    assert_eq!(parse(&pretty).unwrap().root, doc.root);
}

#[test]
fn unicode_content_survives() {
    let doc = parse("<a note=\"ü…é\">Ludäscher — ICDE</a>").unwrap();
    assert_eq!(doc.root.attr("note"), Some("ü…é"));
    assert_eq!(doc.root.text(), "Ludäscher — ICDE");
    let rt = parse(&to_string(&doc.root)).unwrap();
    assert_eq!(rt.root, doc.root);
}

#[test]
fn numeric_entity_roundtrip() {
    let doc = parse("<a>&#955;&#x3BB;</a>").unwrap();
    assert_eq!(doc.root.text(), "λλ");
}
