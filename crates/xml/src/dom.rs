//! A small XML document object model.
//!
//! Everything in the mediator architecture goes "over the wire" in XML
//! (paper §2): conceptual-model schemas and instances, registration
//! messages, and the CM plug-in translators themselves. This DOM is the
//! in-memory form of those messages.

use std::fmt;

/// An XML element: name, attributes, children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name (possibly with a `prefix:` namespace prefix, kept verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node: element or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element node.
    Element(Element),
    /// A text node (entity-decoded).
    Text(String),
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: adds an attribute.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Builder: appends a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: appends a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// The value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Child elements with the given tag name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.name == name)
    }

    /// First child element with the given tag name.
    pub fn first_named(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated text content of this element's direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenated text content of the whole subtree.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        fn walk(e: &Element, out: &mut String) {
            for n in &e.children {
                match n {
                    Node::Text(t) => out.push_str(t),
                    Node::Element(c) => walk(c, out),
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Number of element nodes in the subtree (including `self`).
    pub fn subtree_size(&self) -> usize {
        1 + self.elements().map(Element::subtree_size).sum::<usize>()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::serialize::to_string(self))
    }
}

/// A parsed document: the root element (prolog/doctype are discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The document (root) element.
    pub root: Element,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("neuron")
            .with_attr("id", "n1")
            .with_child(
                Element::new("compartment")
                    .with_attr("kind", "dendrite")
                    .with_text("spiny"),
            )
            .with_child(Element::new("compartment").with_attr("kind", "axon"))
            .with_text("tail")
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("id"), Some("n1"));
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn named_children() {
        let e = sample();
        assert_eq!(e.elements_named("compartment").count(), 2);
        assert_eq!(
            e.first_named("compartment").unwrap().attr("kind"),
            Some("dendrite")
        );
        assert!(e.first_named("soma").is_none());
    }

    #[test]
    fn text_accessors() {
        let e = sample();
        assert_eq!(e.text(), "tail");
        assert_eq!(e.deep_text(), "spinytail");
    }

    #[test]
    fn subtree_size_counts_elements() {
        assert_eq!(sample().subtree_size(), 3);
    }
}
