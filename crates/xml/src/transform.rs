//! Template-based XML→XML transformation — the executable form of a CM
//! plug-in translator.
//!
//! Paper §2: *"a new CM formalism … is added to the system by simply
//! plugging a translator into the mediator. Essentially such a translator
//! is nothing more than a complex XML query expression that a source sends
//! once to the mediator."* Accordingly, a [`Transform`] is itself written
//! in XML (a small XSLT-like dialect) so it can literally travel over the
//! wire as part of source registration:
//!
//! ```xml
//! <transform output="gcm">
//!   <rule match="//class">
//!     <gcm:class name="{@name}">
//!       <for-each select="attr">
//!         <gcm:method name="{@name}" result="{@type}"/>
//!       </for-each>
//!     </gcm:class>
//!   </rule>
//! </transform>
//! ```
//!
//! Applying a transform evaluates each `rule` against the input document;
//! for every element matched by `match`, the rule's template is
//! instantiated with that element as the context node. `{path}` inside
//! attribute values and text interpolates the first string result of the
//! path; `for-each select` iterates; `value-of select` emits text.

use crate::dom::{Document, Element, Node};
use crate::error::XmlError;
use crate::path::Path;

/// A compiled transformation.
#[derive(Debug, Clone)]
pub struct Transform {
    output: String,
    rules: Vec<TransformRule>,
}

#[derive(Debug, Clone)]
struct TransformRule {
    matcher: Path,
    template: Vec<TemplateNode>,
}

#[derive(Debug, Clone)]
enum TemplateNode {
    /// Literal output element; attributes and text are interpolated.
    Elem {
        name: String,
        attrs: Vec<(String, Interp)>,
        children: Vec<TemplateNode>,
    },
    /// `<for-each select="...">body</for-each>`
    ForEach {
        select: Path,
        body: Vec<TemplateNode>,
    },
    /// `<value-of select="..."/>`
    ValueOf { select: Path },
    /// `<let name="x" select="..."/>` — binds `$x` for subsequent
    /// siblings and their descendants (so nested `for-each` bodies can
    /// still reference an outer context's values).
    Let { name: String, select: Path },
    /// Literal text with `{path}` interpolation.
    Text(Interp),
}

/// A string with embedded `{path}` or `{$var}` segments.
#[derive(Debug, Clone)]
struct Interp {
    parts: Vec<InterpPart>,
}

#[derive(Debug, Clone)]
enum InterpPart {
    Lit(String),
    Path(Path),
    Var(String),
}

type Scope = std::collections::HashMap<String, String>;

impl Interp {
    fn parse(src: &str) -> Result<Self, XmlError> {
        let mut parts = Vec::new();
        let mut rest = src;
        while let Some(open) = rest.find('{') {
            if !rest[..open].is_empty() {
                parts.push(InterpPart::Lit(rest[..open].to_string()));
            }
            let after = &rest[open + 1..];
            let close = after.find('}').ok_or_else(|| XmlError::Path {
                expr: src.to_string(),
                message: "unterminated `{` interpolation".to_string(),
            })?;
            let inner = &after[..close];
            if let Some(var) = inner.strip_prefix('$') {
                parts.push(InterpPart::Var(var.to_string()));
            } else {
                parts.push(InterpPart::Path(Path::parse(inner)?));
            }
            rest = &after[close + 1..];
        }
        if !rest.is_empty() {
            parts.push(InterpPart::Lit(rest.to_string()));
        }
        Ok(Interp { parts })
    }

    fn eval(&self, ctx: &Element, scope: &Scope) -> String {
        let mut out = String::new();
        for p in &self.parts {
            match p {
                InterpPart::Lit(s) => out.push_str(s),
                InterpPart::Path(path) => {
                    if let Some(s) = path.select_first_string(ctx) {
                        out.push_str(&s);
                    }
                }
                InterpPart::Var(name) => {
                    if let Some(s) = scope.get(name) {
                        out.push_str(s);
                    }
                }
            }
        }
        out
    }
}

impl Transform {
    /// Parses a transform from XML text.
    pub fn parse(src: &str) -> Result<Transform, XmlError> {
        Self::from_document(&crate::parser::parse(src)?)
    }

    /// Builds a transform from an already-parsed document.
    pub fn from_document(doc: &Document) -> Result<Transform, XmlError> {
        if doc.root.name != "transform" {
            return Err(XmlError::Transform {
                message: format!("expected <transform> root, found <{}>", doc.root.name),
            });
        }
        let output = doc.root.attr("output").unwrap_or("result").to_string();
        let mut rules = Vec::new();
        for rule in doc.root.elements() {
            if rule.name != "rule" {
                return Err(XmlError::Transform {
                    message: format!("expected <rule>, found <{}>", rule.name),
                });
            }
            let match_expr = rule.attr("match").ok_or_else(|| XmlError::Transform {
                message: "<rule> missing match attribute".to_string(),
            })?;
            let matcher = Path::parse(match_expr)?;
            let template = rule
                .children
                .iter()
                .map(compile_template)
                .collect::<Result<Vec<_>, _>>()?;
            rules.push(TransformRule { matcher, template });
        }
        Ok(Transform { output, rules })
    }

    /// The output root element name.
    pub fn output_name(&self) -> &str {
        &self.output
    }

    /// Applies the transform to `input`, producing the output document
    /// root.
    pub fn apply(&self, input: &Element) -> Element {
        let mut out = Element::new(self.output.clone());
        for rule in &self.rules {
            for ctx in rule.matcher.select_elems(input) {
                let mut scope = Scope::new();
                instantiate_seq(&rule.template, ctx, &mut scope, &mut out.children);
            }
        }
        out
    }
}

/// Instantiates a template sequence, letting `<let>` bindings flow into
/// subsequent siblings.
fn instantiate_seq(ts: &[TemplateNode], ctx: &Element, scope: &mut Scope, out: &mut Vec<Node>) {
    for t in ts {
        instantiate(t, ctx, scope, out);
    }
}

fn compile_template(node: &Node) -> Result<TemplateNode, XmlError> {
    match node {
        Node::Text(t) => Ok(TemplateNode::Text(Interp::parse(t)?)),
        Node::Element(e) if e.name == "for-each" => {
            let select = e.attr("select").ok_or_else(|| XmlError::Transform {
                message: "<for-each> missing select".to_string(),
            })?;
            Ok(TemplateNode::ForEach {
                select: Path::parse(select)?,
                body: e
                    .children
                    .iter()
                    .map(compile_template)
                    .collect::<Result<Vec<_>, _>>()?,
            })
        }
        Node::Element(e) if e.name == "value-of" => {
            let select = e.attr("select").ok_or_else(|| XmlError::Transform {
                message: "<value-of> missing select".to_string(),
            })?;
            Ok(TemplateNode::ValueOf {
                select: Path::parse(select)?,
            })
        }
        Node::Element(e) if e.name == "let" => {
            let name = e.attr("name").ok_or_else(|| XmlError::Transform {
                message: "<let> missing name".to_string(),
            })?;
            let select = e.attr("select").ok_or_else(|| XmlError::Transform {
                message: "<let> missing select".to_string(),
            })?;
            Ok(TemplateNode::Let {
                name: name.to_string(),
                select: Path::parse(select)?,
            })
        }
        Node::Element(e) => Ok(TemplateNode::Elem {
            name: e.name.clone(),
            attrs: e
                .attrs
                .iter()
                .map(|(k, v)| Interp::parse(v).map(|i| (k.clone(), i)))
                .collect::<Result<Vec<_>, _>>()?,
            children: e
                .children
                .iter()
                .map(compile_template)
                .collect::<Result<Vec<_>, _>>()?,
        }),
    }
}

fn instantiate(t: &TemplateNode, ctx: &Element, scope: &mut Scope, out: &mut Vec<Node>) {
    match t {
        TemplateNode::Text(i) => {
            let s = i.eval(ctx, scope);
            if !s.trim().is_empty() {
                out.push(Node::Text(s));
            }
        }
        TemplateNode::ValueOf { select } => {
            if let Some(s) = select.select_first_string(ctx) {
                out.push(Node::Text(s));
            }
        }
        TemplateNode::Let { name, select } => {
            let v = select.select_first_string(ctx).unwrap_or_default();
            scope.insert(name.clone(), v);
        }
        TemplateNode::ForEach { select, body } => {
            for sub in select.select_elems(ctx) {
                // Inner bindings stay local to each iteration.
                let mut inner = scope.clone();
                instantiate_seq(body, sub, &mut inner, out);
            }
        }
        TemplateNode::Elem {
            name,
            attrs,
            children,
        } => {
            let mut e = Element::new(name.clone());
            for (k, i) in attrs {
                e.attrs.push((k.clone(), i.eval(ctx, scope)));
            }
            let mut inner = scope.clone();
            instantiate_seq(children, ctx, &mut inner, &mut e.children);
            out.push(Node::Element(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn input() -> Document {
        parse(
            r#"<uxf>
                 <class name="Neuron">
                   <attribute name="soma_size" type="float"/>
                   <attribute name="species" type="string"/>
                 </class>
                 <class name="Spine">
                   <attribute name="length" type="float"/>
                 </class>
               </uxf>"#,
        )
        .unwrap()
    }

    #[test]
    fn uxf_to_gcm_translation() {
        // The paper's example: a UXF-2-GCM translator plugged into the
        // mediator (§2, "CM Plug-In Mechanism").
        let t = Transform::parse(
            r#"<transform output="gcm">
                 <rule match="//class">
                   <class name="{@name}">
                     <for-each select="attribute">
                       <method name="{@name}" result="{@type}"/>
                     </for-each>
                   </class>
                 </rule>
               </transform>"#,
        )
        .unwrap();
        let out = t.apply(&input().root);
        assert_eq!(out.name, "gcm");
        assert_eq!(out.elements_named("class").count(), 2);
        let neuron = out
            .elements_named("class")
            .find(|c| c.attr("name") == Some("Neuron"))
            .unwrap();
        assert_eq!(neuron.elements_named("method").count(), 2);
        assert_eq!(
            neuron.first_named("method").unwrap().attr("result"),
            Some("float")
        );
    }

    #[test]
    fn value_of_and_text_interpolation() {
        let t = Transform::parse(
            r#"<transform output="o">
                 <rule match="//class">
                   <item>name={@name};first=<value-of select="attribute/@name"/></item>
                 </rule>
               </transform>"#,
        )
        .unwrap();
        let out = t.apply(&input().root);
        let items: Vec<String> = out.elements_named("item").map(|e| e.text()).collect();
        assert_eq!(items[0], "name=Neuron;first=soma_size");
    }

    #[test]
    fn multiple_rules_append_in_order() {
        let t = Transform::parse(
            r#"<transform output="o">
                 <rule match="//class[@name='Spine']"><spine/></rule>
                 <rule match="//class[@name='Neuron']"><neuron/></rule>
               </transform>"#,
        )
        .unwrap();
        let out = t.apply(&input().root);
        let names: Vec<&str> = out.elements().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["spine", "neuron"]);
    }

    #[test]
    fn missing_path_interpolates_empty() {
        let t = Transform::parse(
            r#"<transform output="o">
                 <rule match="//class"><c v="{@nope}"/></rule>
               </transform>"#,
        )
        .unwrap();
        let out = t.apply(&input().root);
        assert_eq!(out.first_named("c").unwrap().attr("v"), Some(""));
    }

    #[test]
    fn bad_transform_root_rejected() {
        assert!(Transform::parse("<xsl><rule match='x'/></xsl>").is_err());
    }

    #[test]
    fn rule_without_match_rejected() {
        assert!(Transform::parse("<transform><rule/></transform>").is_err());
    }

    #[test]
    fn unterminated_interpolation_rejected() {
        assert!(Transform::parse(
            r#"<transform><rule match="//c"><x v="{@a"/></rule></transform>"#
        )
        .is_err());
    }

    #[test]
    fn transform_roundtrips_over_the_wire() {
        // A translator is serialized, "sent to the mediator", re-parsed,
        // and still works — the paper's plug-in registration flow.
        let src = r#"<transform output="gcm">
                       <rule match="//class"><class name="{@name}"/></rule>
                     </transform>"#;
        let doc = parse(src).unwrap();
        let wire = crate::serialize::to_string(&doc.root);
        let t = Transform::parse(&wire).unwrap();
        assert_eq!(t.apply(&input().root).elements().count(), 2);
    }
}

#[cfg(test)]
mod let_tests {
    use super::*;

    #[test]
    fn let_binding_crosses_for_each() {
        let t = Transform::parse(
            r#"<transform output="gcm">
                 <rule match="//entity">
                   <let name="cls" select="@name"/>
                   <for-each select="attribute">
                     <method class="{$cls}" name="{@name}"/>
                   </for-each>
                 </rule>
               </transform>"#,
        )
        .unwrap();
        let input = crate::parser::parse(
            r#"<er><entity name="Spine"><attribute name="len"/></entity>
                   <entity name="Axon"><attribute name="dia"/></entity></er>"#,
        )
        .unwrap();
        let out = t.apply(&input.root);
        let methods: Vec<(String, String)> = out
            .elements_named("method")
            .map(|m| {
                (
                    m.attr("class").unwrap().to_string(),
                    m.attr("name").unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(
            methods,
            vec![
                ("Spine".to_string(), "len".to_string()),
                ("Axon".to_string(), "dia".to_string())
            ]
        );
    }

    #[test]
    fn unbound_var_interpolates_empty() {
        let t = Transform::parse(
            r#"<transform output="o"><rule match="//e"><x v="{$nope}"/></rule></transform>"#,
        )
        .unwrap();
        let input = crate::parser::parse("<d><e/></d>").unwrap();
        let out = t.apply(&input.root);
        assert_eq!(out.first_named("x").unwrap().attr("v"), Some(""));
    }

    #[test]
    fn let_missing_attrs_rejected() {
        assert!(Transform::parse(
            r#"<transform><rule match="//e"><let name="x"/></rule></transform>"#
        )
        .is_err());
    }
}
