//! A hand-rolled, dependency-free XML parser covering the subset the
//! mediator wire format needs: elements, attributes, text with the five
//! predefined entities plus numeric character references, comments, CDATA
//! sections, processing instructions, and a (skipped) DOCTYPE.
//!
//! Not supported (not needed for the wire format): external entities,
//! namespaces beyond verbatim `prefix:name` tags, and DTD validation.

use crate::dom::{Document, Element, Node};
use crate::error::XmlError;

/// Parses an XML document.
pub fn parse(src: &str) -> Result<Document, XmlError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("content after document element"));
    }
    Ok(Document { root })
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> XmlError {
        let line = 1 + self.src[..self.pos.min(self.src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        XmlError::Parse {
            offset: self.pos,
            line,
            message: msg.to_string(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos.min(self.src.len())..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while !self.at_end() && self.peek().is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs, XML declaration, and DOCTYPE.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>' (internal subsets use brackets).
                self.pos += "<!DOCTYPE".len();
                let mut depth = 0usize;
                loop {
                    if self.at_end() {
                        return Err(self.err("unterminated DOCTYPE"));
                    }
                    match self.src[self.pos] {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => {
                            self.pos += 1;
                            break;
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        while !self.at_end() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(&format!("expected `{end}`")))
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        let is_start = |b: u8| b.is_ascii_alphabetic() || b == b'_' || b == b':';
        let is_cont = |b: u8| b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.');
        if !is_start(self.peek()) {
            return Err(self.err("expected name"));
        }
        self.pos += 1;
        while is_cont(self.peek()) {
            self.pos += 1;
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        if self.peek() != b'<' {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut elem = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                b'>' => {
                    self.pos += 1;
                    break;
                }
                b'/' => {
                    self.pos += 1;
                    if self.peek() != b'>' {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(elem);
                }
                0 => return Err(self.err("unterminated start tag")),
                _ => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != b'=' {
                        return Err(self.err("expected `=` in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while !self.at_end() && self.peek() != quote {
                        self.pos += 1;
                    }
                    if self.at_end() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.pos += 1;
                    elem.attrs
                        .push((key, decode_entities(&raw, || self.err("bad entity"))?));
                }
            }
        }
        // Content until matching close tag.
        loop {
            if self.at_end() {
                return Err(self.err(&format!("missing </{}>", elem.name)));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != elem.name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected </{}>, found </{close}>",
                        elem.name
                    )));
                }
                self.skip_ws();
                if self.peek() != b'>' {
                    return Err(self.err("expected `>` in close tag"));
                }
                self.pos += 1;
                return Ok(elem);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                while !self.at_end() && !self.starts_with("]]>") {
                    self.pos += 1;
                }
                if self.at_end() {
                    return Err(self.err("unterminated CDATA"));
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.pos += 3;
                push_text(&mut elem, text);
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == b'<' {
                let child = self.element()?;
                elem.children.push(Node::Element(child));
            } else {
                let start = self.pos;
                while !self.at_end() && self.peek() != b'<' {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                let text = decode_entities(&raw, || self.err("bad entity"))?;
                if !text.trim().is_empty() {
                    push_text(&mut elem, text);
                }
            }
        }
    }
}

fn push_text(elem: &mut Element, text: String) {
    if let Some(Node::Text(prev)) = elem.children.last_mut() {
        prev.push_str(&text);
    } else {
        elem.children.push(Node::Text(text));
    }
}

fn decode_entities(raw: &str, err: impl Fn() -> XmlError) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or_else(&err)?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| err())?;
                out.push(char::from_u32(code).ok_or_else(&err)?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| err())?;
                out.push(char::from_u32(code).ok_or_else(&err)?);
            }
            _ => return Err(err()),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse(r#"<a x="1"><b>hi</b><b/></a>"#).unwrap();
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.attr("x"), Some("1"));
        assert_eq!(doc.root.elements_named("b").count(), 2);
        assert_eq!(doc.root.first_named("b").unwrap().text(), "hi");
    }

    #[test]
    fn skips_prolog_doctype_comments() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [ <!ELEMENT a ANY> ]>\n\
             <!-- header --><a><!-- inner -->x</a><!-- trailer -->",
        )
        .unwrap();
        assert_eq!(doc.root.text(), "x");
    }

    #[test]
    fn decodes_entities() {
        let doc = parse(r#"<a k="&lt;&amp;&gt;">&quot;&#65;&#x42;&apos;</a>"#).unwrap();
        assert_eq!(doc.root.attr("k"), Some("<&>"));
        assert_eq!(doc.root.text(), "\"AB'");
    }

    #[test]
    fn cdata_is_verbatim() {
        let doc = parse("<a><![CDATA[<not & parsed>]]></a>").unwrap();
        assert_eq!(doc.root.text(), "<not & parsed>");
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a k='v'/>").unwrap();
        assert_eq!(doc.root.attr("k"), Some("v"));
    }

    #[test]
    fn mismatched_close_tag_errors() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn content_after_root_errors() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unterminated_errors_have_line_numbers() {
        let err = parse("<a>\n<b>\n").unwrap_err();
        let XmlError::Parse { line, .. } = err else {
            panic!()
        };
        assert!(line >= 2, "line = {line}");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn namespaced_names_kept_verbatim() {
        let doc = parse("<gcm:class gcm:name=\"Neuron\"/>").unwrap();
        assert_eq!(doc.root.name, "gcm:class");
        assert_eq!(doc.root.attr("gcm:name"), Some("Neuron"));
    }

    #[test]
    fn roundtrip_through_serializer() {
        let src =
            r#"<cm name="SYNAPSE"><class name="spine"><attr n="len" t="float"/></class></cm>"#;
        let doc = parse(src).unwrap();
        let out = crate::serialize::to_string(&doc.root);
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc.root, doc2.root);
    }
}
