//! A compact path language over the DOM — the query core of the "complex
//! XML query expressions" that CM plug-in translators are made of (§2).
//!
//! Supported syntax (an XPath subset):
//!
//! ```text
//! /cm/class                absolute child steps
//! class/attr               relative child steps
//! //class                  descendant-or-self
//! class[@name='Neuron']    attribute equality predicate
//! class[kind='entity']     child-element-text equality predicate
//! class/@name              attribute value selection
//! class/text()             text content selection
//! *                        any element
//! .                        the context element itself
//! ```

use crate::dom::Element;
use crate::error::XmlError;

/// Step axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    Child,
    Descendant,
}

/// A predicate filtering matched elements.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pred {
    /// `[@key='value']`
    AttrEq(String, String),
    /// `[child='value']` — some child element `child` has text `value`.
    ChildTextEq(String, String),
}

/// One step of a path.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// Element step: axis, optional name test (`None` = `*`), predicates.
    Elem {
        axis: Axis,
        name: Option<String>,
        preds: Vec<Pred>,
    },
    /// `@name`: selects an attribute string.
    Attr(String),
    /// `text()`: selects the element's text content.
    Text,
    /// `.`: the context element.
    Context,
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    absolute: bool,
    steps: Vec<Step>,
}

/// A value selected by a path: an element reference or a string (attribute
/// value / text content).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value<'a> {
    /// An element node.
    Elem(&'a Element),
    /// A string value.
    Str(String),
}

impl Path {
    /// Parses a path expression.
    pub fn parse(src: &str) -> Result<Path, XmlError> {
        let mut p = PathParser { src, pos: 0 };
        p.path()
    }

    /// Evaluates the path with `context` as both the root (for absolute
    /// paths) and the context element (for relative ones).
    pub fn select<'a>(&self, context: &'a Element) -> Vec<Value<'a>> {
        let mut current: Vec<&'a Element> = vec![context];
        let mut steps = self.steps.as_slice();
        if self.absolute {
            // An absolute path's first element step must match the root
            // element itself (XPath `/a` semantics).
            if let Some(Step::Elem { axis, name, preds }) = steps.first() {
                let ok = match axis {
                    Axis::Child => {
                        name.as_deref().is_none_or(|n| n == context.name)
                            && preds.iter().all(|p| pred_holds(p, context))
                    }
                    Axis::Descendant => true, // handled below via descendants
                };
                if *axis == Axis::Child {
                    if !ok {
                        return Vec::new();
                    }
                    steps = &steps[1..];
                }
            }
        }
        let mut out: Vec<Value<'a>> = Vec::new();
        eval_steps(steps, &mut current, &mut out);
        out
    }

    /// Evaluates the path, keeping only element results.
    pub fn select_elems<'a>(&self, context: &'a Element) -> Vec<&'a Element> {
        self.select(context)
            .into_iter()
            .filter_map(|v| match v {
                Value::Elem(e) => Some(e),
                Value::Str(_) => None,
            })
            .collect()
    }

    /// Evaluates the path, converting every result to a string (elements
    /// become their deep text).
    pub fn select_strings(&self, context: &Element) -> Vec<String> {
        self.select(context)
            .into_iter()
            .map(|v| match v {
                Value::Elem(e) => e.deep_text(),
                Value::Str(s) => s,
            })
            .collect()
    }

    /// First result as a string, if any.
    pub fn select_first_string(&self, context: &Element) -> Option<String> {
        self.select_strings(context).into_iter().next()
    }
}

fn eval_steps<'a>(steps: &[Step], current: &mut Vec<&'a Element>, out: &mut Vec<Value<'a>>) {
    for (i, step) in steps.iter().enumerate() {
        let last = i + 1 == steps.len();
        match step {
            Step::Elem { axis, name, preds } => {
                let mut next: Vec<&'a Element> = Vec::new();
                for ctx in current.iter() {
                    match axis {
                        Axis::Child => {
                            for c in ctx.elements() {
                                if matches(c, name, preds) {
                                    next.push(c);
                                }
                            }
                        }
                        Axis::Descendant => {
                            collect_descendants(ctx, name, preds, &mut next);
                        }
                    }
                }
                *current = next;
            }
            Step::Attr(key) => {
                debug_assert!(last, "attribute step must be final (enforced by parser)");
                for ctx in current.iter() {
                    if let Some(v) = ctx.attr(key) {
                        out.push(Value::Str(v.to_string()));
                    }
                }
                return;
            }
            Step::Text => {
                debug_assert!(last, "text() step must be final (enforced by parser)");
                for ctx in current.iter() {
                    out.push(Value::Str(ctx.deep_text()));
                }
                return;
            }
            Step::Context => {}
        }
    }
    out.extend(current.iter().map(|e| Value::Elem(e)));
}

fn collect_descendants<'a>(
    e: &'a Element,
    name: &Option<String>,
    preds: &[Pred],
    out: &mut Vec<&'a Element>,
) {
    // Descendant-or-self.
    if matches(e, name, preds) {
        out.push(e);
    }
    for c in e.elements() {
        collect_descendants(c, name, preds, out);
    }
}

fn matches(e: &Element, name: &Option<String>, preds: &[Pred]) -> bool {
    name.as_deref().is_none_or(|n| n == e.name) && preds.iter().all(|p| pred_holds(p, e))
}

fn pred_holds(p: &Pred, e: &Element) -> bool {
    match p {
        Pred::AttrEq(k, v) => e.attr(k) == Some(v.as_str()),
        Pred::ChildTextEq(k, v) => e.elements_named(k).any(|c| c.deep_text() == *v),
    }
}

struct PathParser<'a> {
    src: &'a str,
    pos: usize,
}

impl PathParser<'_> {
    fn err(&self, msg: &str) -> XmlError {
        XmlError::Path {
            expr: self.src.to_string(),
            message: format!("{msg} (at offset {})", self.pos),
        }
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        let advance: usize = self
            .rest()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | ':' | '-' | '.'))
            .map(char::len_utf8)
            .sum();
        self.pos += advance;
        if self.pos == start {
            Err(self.err("expected name"))
        } else {
            Ok(self.src[start..self.pos].to_string())
        }
    }

    fn quoted(&mut self) -> Result<String, XmlError> {
        let quote = if self.eat("'") {
            '\''
        } else if self.eat("\"") {
            '"'
        } else {
            return Err(self.err("expected quoted value"));
        };
        let start = self.pos;
        match self.rest().find(quote) {
            Some(i) => {
                self.pos += i + 1;
                Ok(self.src[start..self.pos - 1].to_string())
            }
            None => Err(self.err("unterminated quoted value")),
        }
    }

    fn path(&mut self) -> Result<Path, XmlError> {
        let mut steps = Vec::new();
        let absolute = self.rest().starts_with('/') && !self.rest().starts_with("//");
        let mut axis = if self.eat("//") {
            Axis::Descendant
        } else {
            self.eat("/");
            Axis::Child
        };
        loop {
            steps.push(self.step(axis)?);
            if self.eat("//") {
                axis = Axis::Descendant;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                break;
            }
        }
        if self.pos != self.src.len() {
            return Err(self.err("trailing characters in path"));
        }
        // Attr/Text steps must be final.
        for (i, s) in steps.iter().enumerate() {
            if matches!(s, Step::Attr(_) | Step::Text) && i + 1 != steps.len() {
                return Err(self.err("@attr / text() must be the final step"));
            }
        }
        Ok(Path { absolute, steps })
    }

    fn step(&mut self, axis: Axis) -> Result<Step, XmlError> {
        if self.eat("@") {
            return Ok(Step::Attr(self.name()?));
        }
        if self.eat("text()") {
            return Ok(Step::Text);
        }
        if self.eat(".") {
            return Ok(Step::Context);
        }
        let name = if self.eat("*") {
            None
        } else {
            Some(self.name()?)
        };
        let mut preds = Vec::new();
        while self.eat("[") {
            let pred = if self.eat("@") {
                let key = self.name()?;
                if !self.eat("=") {
                    return Err(self.err("expected `=` in predicate"));
                }
                Pred::AttrEq(key, self.quoted()?)
            } else {
                let key = self.name()?;
                if !self.eat("=") {
                    return Err(self.err("expected `=` in predicate"));
                }
                Pred::ChildTextEq(key, self.quoted()?)
            };
            if !self.eat("]") {
                return Err(self.err("expected `]`"));
            }
            preds.push(pred);
        }
        Ok(Step::Elem { axis, name, preds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn doc() -> crate::dom::Document {
        parse(
            r#"<cm name="SYNAPSE">
                 <class name="spine" kind="entity">
                   <attr name="length" type="float"/>
                   <attr name="volume" type="float"/>
                 </class>
                 <class name="dendrite" kind="entity">
                   <attr name="diameter" type="float"/>
                   <nested><attr name="deep" type="int"/></nested>
                 </class>
                 <relation name="has"><role>spine</role><role>dendrite</role></relation>
               </cm>"#,
        )
        .unwrap()
    }

    #[test]
    fn child_steps() {
        let d = doc();
        let p = Path::parse("/cm/class").unwrap();
        assert_eq!(p.select_elems(&d.root).len(), 2);
    }

    #[test]
    fn relative_path() {
        let d = doc();
        let p = Path::parse("class/attr").unwrap();
        assert_eq!(p.select_elems(&d.root).len(), 3);
    }

    #[test]
    fn descendant_axis() {
        let d = doc();
        let p = Path::parse("//attr").unwrap();
        assert_eq!(p.select_elems(&d.root).len(), 4);
    }

    #[test]
    fn attribute_predicate() {
        let d = doc();
        let p = Path::parse("class[@name='spine']/attr/@name").unwrap();
        assert_eq!(
            p.select_strings(&d.root),
            vec!["length".to_string(), "volume".to_string()]
        );
    }

    #[test]
    fn child_text_predicate() {
        let d = doc();
        let p = Path::parse("relation[role='spine']/@name").unwrap();
        assert_eq!(p.select_first_string(&d.root), Some("has".to_string()));
        let p2 = Path::parse("relation[role='axon']/@name").unwrap();
        assert!(p2.select(&d.root).is_empty());
    }

    #[test]
    fn text_step() {
        let d = doc();
        let p = Path::parse("relation/role/text()").unwrap();
        assert_eq!(p.select_strings(&d.root), vec!["spine", "dendrite"]);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        let p = Path::parse("/cm/*").unwrap();
        assert_eq!(p.select_elems(&d.root).len(), 3);
    }

    #[test]
    fn self_step() {
        let d = doc();
        let p = Path::parse(".").unwrap();
        assert_eq!(p.select_elems(&d.root).len(), 1);
        let p2 = Path::parse("./@name").unwrap();
        assert_eq!(p2.select_first_string(&d.root), Some("SYNAPSE".into()));
    }

    #[test]
    fn absolute_root_mismatch_is_empty() {
        let d = doc();
        let p = Path::parse("/other/class").unwrap();
        assert!(p.select(&d.root).is_empty());
    }

    #[test]
    fn attr_mid_path_rejected() {
        assert!(Path::parse("@name/class").is_err());
    }

    #[test]
    fn double_quoted_predicate_values() {
        let d = doc();
        let p = Path::parse(r#"class[@name="dendrite"]/@kind"#).unwrap();
        assert_eq!(p.select_first_string(&d.root), Some("entity".into()));
    }
}
