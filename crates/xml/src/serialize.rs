//! Serialization of the DOM back to XML text.

use crate::dom::{Element, Node};
use std::fmt::Write;

/// Serializes an element (and subtree) compactly.
pub fn to_string(elem: &Element) -> String {
    let mut out = String::new();
    write_elem(elem, &mut out, None, 0);
    out
}

/// Serializes with two-space indentation, one element per line.
pub fn to_pretty_string(elem: &Element) -> String {
    let mut out = String::new();
    write_elem(elem, &mut out, Some(2), 0);
    out
}

fn write_elem(elem: &Element, out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push('<');
    out.push_str(&elem.name);
    for (k, v) in &elem.attrs {
        let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
    }
    if elem.children.is_empty() {
        out.push_str("/>");
        if indent.is_some() {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    let only_text = elem.children.iter().all(|n| matches!(n, Node::Text(_)));
    if indent.is_some() && !only_text {
        out.push('\n');
    }
    for child in &elem.children {
        match child {
            Node::Element(e) => write_elem(e, out, indent, depth + 1),
            Node::Text(t) => out.push_str(&escape_text(t)),
        }
    }
    if let Some(w) = indent {
        if !only_text {
            for _ in 0..w * depth {
                out.push(' ');
            }
        }
    }
    let _ = write!(out, "</{}>", elem.name);
    if indent.is_some() {
        out.push('\n');
    }
}

/// Escapes text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quote delimited).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_roundtrip_with_escapes() {
        let e = Element::new("a")
            .with_attr("k", "x\"<y")
            .with_text("1 < 2 & 3");
        let s = to_string(&e);
        let doc = parse(&s).unwrap();
        assert_eq!(doc.root.attr("k"), Some("x\"<y"));
        assert_eq!(doc.root.text(), "1 < 2 & 3");
    }

    #[test]
    fn pretty_print_indents() {
        let e = Element::new("a").with_child(Element::new("b").with_child(Element::new("c")));
        let s = to_pretty_string(&e);
        assert!(s.contains("\n  <b>"));
        assert!(s.contains("\n    <c/>"));
    }

    #[test]
    fn text_only_children_stay_inline() {
        let e = Element::new("a").with_text("hello");
        assert_eq!(to_pretty_string(&e).trim(), "<a>hello</a>");
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(to_string(&Element::new("x")), "<x/>");
    }
}
