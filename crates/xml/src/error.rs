//! Error types for the XML substrate.

use std::fmt;

/// Errors from parsing, path evaluation, or transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed XML input.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// Line number (1-based).
        line: usize,
        /// Description.
        message: String,
    },
    /// Malformed path expression.
    Path {
        /// The offending expression.
        expr: String,
        /// Description.
        message: String,
    },
    /// Malformed transform document.
    Transform {
        /// Description.
        message: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse {
                offset,
                line,
                message,
            } => write!(
                f,
                "XML parse error at line {line} (offset {offset}): {message}"
            ),
            XmlError::Path { expr, message } => {
                write!(f, "path error in `{expr}`: {message}")
            }
            XmlError::Transform { message } => write!(f, "transform error: {message}"),
        }
    }
}

impl std::error::Error for XmlError {}
