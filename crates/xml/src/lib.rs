//! # kind-xml — the mediator's wire format substrate
//!
//! Everything in the model-based mediator architecture travels in XML
//! syntax (paper §2): CM schemas and instance data exported by wrappers,
//! registration messages, and — crucially — the **CM plug-in translators**
//! themselves, which are "complex XML query expressions" a source sends to
//! the mediator once when a new conceptual-model formalism is introduced.
//!
//! This crate provides, with no external dependencies:
//!
//! * a [`dom`] and a validating-enough [`parser`] / [`serialize`] pair;
//! * [`path`]: an XPath-subset selection language;
//! * [`transform`]: an XSLT-subset transformation language, itself written
//!   in XML so translators can be registered over the wire.
#![warn(missing_docs)]

pub mod dom;
pub mod error;
pub mod parser;
pub mod path;
pub mod serialize;
pub mod transform;

pub use dom::{Document, Element, Node};
pub use error::XmlError;
pub use parser::parse;
pub use path::{Path, Value};
pub use serialize::{to_pretty_string, to_string};
pub use transform::Transform;
