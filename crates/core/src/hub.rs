//! The snapshot **publication plane**: one writer, many wait-free readers.
//!
//! [`SnapshotHub`] is an epoch-counted, atomically-swappable slot holding
//! the *current* [`QuerySnapshot`]. It is the piece that turns the
//! snapshot machinery built so far (immutable `Send + Sync` snapshots,
//! structurally-shared republish) into a **serving plane**:
//!
//! * the [`crate::Mediator`] is the **single writer** — every
//!   [`crate::Mediator::publish`] installs the freshly published snapshot
//!   into the hub and bumps the epoch;
//! * readers call [`SnapshotHub::load`] and get a [`PinnedSnapshot`]: the
//!   snapshot plus the epoch it was published under. A load never blocks
//!   on the writer beyond the swap itself — the slot is a hand-rolled
//!   `ArcSwap` (an `RwLock` around an `Arc`, the offline-compat stand-in
//!   for the `arc-swap` crate) whose write-side critical section is a
//!   single pointer store;
//! * a request **pins** the snapshot it started on: however many
//!   publishes happen mid-request, the pinned epoch keeps serving exactly
//!   the state it captured, and the old snapshot's memory is reclaimed
//!   when the last pin drops (plain `Arc` reclamation — no epoch GC to
//!   administer).
//!
//! The hub is deliberately dumb: no subscriptions, no notifications, no
//! generation lists. Everything a server needs — admission control,
//! budgets, backpressure — layers on top (see `crates/server`).

use crate::snapshot::QuerySnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A snapshot loaded from a [`SnapshotHub`], pinned to the epoch it was
/// published under. Cheap to clone (two `Arc` bumps); dereferences to the
/// [`QuerySnapshot`] itself.
#[derive(Debug, Clone)]
pub struct PinnedSnapshot {
    epoch: u64,
    snapshot: Arc<QuerySnapshot>,
}

impl PinnedSnapshot {
    /// The epoch this snapshot was published under (monotonically
    /// increasing, starting at 1 for the first publish).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared snapshot `Arc` itself — for callers that need to hold
    /// or downgrade it (e.g. liveness tests via [`std::sync::Weak`]).
    pub fn shared(&self) -> &Arc<QuerySnapshot> {
        &self.snapshot
    }
}

impl std::ops::Deref for PinnedSnapshot {
    type Target = QuerySnapshot;
    fn deref(&self) -> &QuerySnapshot {
        &self.snapshot
    }
}

/// The epoch-counted current-snapshot slot (see the module docs).
///
/// Shared as `Arc<SnapshotHub>`: the mediator keeps one reference and
/// hands clones to every reader ([`crate::Mediator::hub`]).
#[derive(Debug, Default)]
pub struct SnapshotHub {
    /// The current publication. `None` until the first install.
    slot: RwLock<Option<PinnedSnapshot>>,
    /// The epoch counter, readable without touching the slot lock.
    epoch: AtomicU64,
}

// Readers on N threads, writer on another: enforced at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SnapshotHub>();
    assert_send_sync::<PinnedSnapshot>();
};

impl SnapshotHub {
    /// An empty hub (no snapshot published yet, epoch 0).
    pub fn new() -> Self {
        SnapshotHub::default()
    }

    /// Installs `snapshot` as the current publication and returns its
    /// (freshly bumped) epoch. Single-writer by convention — the mediator
    /// owns installation — but safe from any thread.
    pub fn install(&self, snapshot: QuerySnapshot) -> u64 {
        let mut slot = self.slot.write().expect("hub slot poisoned");
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        *slot = Some(PinnedSnapshot {
            epoch,
            snapshot: Arc::new(snapshot),
        });
        // Published *after* the slot holds the snapshot, while the write
        // lock still excludes racing installs: a reader that observes
        // epoch N is guaranteed a subsequent `load` returns epoch >= N.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Loads the current publication, pinned to its epoch. `None` until
    /// the first install. The read-side critical section is one clone of
    /// an `(u64, Arc)` pair — readers never wait on each other, and wait
    /// on the writer only for the duration of its pointer store.
    pub fn load(&self) -> Option<PinnedSnapshot> {
        self.slot.read().expect("hub slot poisoned").clone()
    }

    /// The current epoch without loading the snapshot: `0` before the
    /// first install. Lock-free.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether a snapshot has been published yet.
    pub fn is_published(&self) -> bool {
        self.epoch() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::Mediator;
    use crate::wrapper::{Anchor, Capability, MemoryWrapper};
    use kind_dm::{figures, ExecMode};
    use kind_gcm::GcmValue;

    fn wrapper(n: usize) -> Arc<MemoryWrapper> {
        let mut w = MemoryWrapper::new("A");
        w.caps.push(Capability {
            class: "spines".into(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: "spines".into(),
            concept: "Spine".into(),
        });
        for i in 0..n {
            w.add_row("spines", &format!("s{i}"), vec![("len", GcmValue::Int(1))]);
        }
        Arc::new(w)
    }

    #[test]
    fn empty_hub_loads_nothing() {
        let hub = SnapshotHub::new();
        assert!(hub.load().is_none());
        assert_eq!(hub.epoch(), 0);
        assert!(!hub.is_published());
    }

    #[test]
    fn install_bumps_epoch_and_load_pins_it() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(wrapper(2)).unwrap();
        m.materialize_all().unwrap();
        let hub = SnapshotHub::new();
        let e1 = hub.install(m.snapshot().unwrap());
        assert_eq!(e1, 1);
        let p1 = hub.load().unwrap();
        assert_eq!(p1.epoch(), 1);
        assert_eq!(p1.query_fl("X : spines").unwrap().len(), 2);
        let e2 = hub.install(m.snapshot().unwrap());
        assert_eq!(e2, 2);
        assert_eq!(hub.epoch(), 2);
        // The earlier pin still serves its own epoch.
        assert_eq!(p1.epoch(), 1);
        assert_eq!(p1.query_fl("X : spines").unwrap().len(), 2);
    }

    #[test]
    fn mediator_publish_installs_for_subscribers() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(wrapper(3)).unwrap();
        m.materialize_all().unwrap();
        // Nobody holds the hub yet: publish() skips installation (the
        // serving plane is demand-driven).
        m.publish().unwrap();
        assert_eq!(m.hub().epoch(), 0);
        // Subscribe, publish again: the hub now receives publications.
        let hub = m.hub();
        m.publish().unwrap();
        assert_eq!(hub.epoch(), 1);
        let pinned = hub.load().unwrap();
        assert_eq!(pinned.query_fl("X : spines").unwrap().len(), 3);
    }
}
