//! On-demand integrated queries: the push-down discipline of §5,
//! generalized from the hand-planned protein query to arbitrary one-off
//! conjunctive queries over source classes and the domain map.
//!
//! [`Mediator::answer`] takes a single FL rule text like
//!
//! ```text
//! ans(P, L) :- X : protein_amount, X[protein_name -> P],
//!              X[location -> L], L : relevant_location.
//! ```
//!
//! and:
//!
//! 1. extracts the *source classes* mentioned in `X : class` literals;
//! 2. finds the sources exporting them (and only those) and fetches their
//!    rows — the mediator never contacts an unrelated source;
//! 3. installs the rule as a temporary view and evaluates **only the rule
//!    subprogram relevant to the answer predicate** (relevance-filtered
//!    evaluation, `kind_datalog::Engine::run_for`);
//! 4. returns the answer tuples and uninstalls the view.

use crate::error::{MediatorError, Result};
use crate::fault::AnswerReport;
use crate::federation::FetchRequest;
use crate::mediator::Mediator;
use crate::wrapper::SourceQuery;
use kind_datalog::{EvalStats, Term};
use kind_flogic::{parse_fl_program, FlBodyItem, Molecule};
use std::collections::BTreeSet;

/// The outcome of an on-demand query.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    /// The answer tuples (bindings of the head variables, in head order).
    pub rows: Vec<Vec<Term>>,
    /// Source classes the query mentioned.
    pub classes: Vec<String>,
    /// Sources actually contacted.
    pub sources: Vec<String>,
    /// Per-source outcomes and quarantine diagnostics: a failed or
    /// breaker-skipped source contributes no rows, and
    /// [`AnswerReport::is_complete`] is the answer's completeness flag.
    pub report: AnswerReport,
    /// Evaluation statistics for the answering run (derivation counts
    /// etc.) — how much work the goal-directed plan actually did.
    pub stats: EvalStats,
    /// Whether the magic-sets demand transformation rewrote the query's
    /// rule subprogram (false when disabled or when the rewrite declined,
    /// e.g. for well-founded residues).
    pub magic_fired: bool,
}

impl Mediator {
    /// Answers a one-off conjunctive query given as a single FL rule (see
    /// module docs). The rule's head predicate names the answer relation.
    pub fn answer(&mut self, rule_text: &str) -> Result<AnswerSet> {
        self.begin_report();
        // Parse with a scratch interner so we can inspect the clause
        // before committing anything to the base.
        let mut scratch = kind_datalog::Interner::new();
        let clauses = parse_fl_program(rule_text, &mut scratch).map_err(MediatorError::from)?;
        let [clause] = clauses.as_slice() else {
            return Err(MediatorError::Datalog(kind_datalog::DatalogError::Parse {
                offset: 0,
                line: 0,
                message: format!("answer() takes exactly one rule, got {}", clauses.len()),
            }));
        };
        let Molecule::Plain(head) = &clause.head else {
            return Err(MediatorError::Datalog(kind_datalog::DatalogError::Parse {
                offset: 0,
                line: 0,
                message: "answer() rule head must be a plain predicate".to_string(),
            }));
        };
        let head_pred = scratch.resolve(head.pred).to_string();
        // Collect the source classes referenced as `X : class`.
        let mut classes: BTreeSet<String> = BTreeSet::new();
        collect_classes(&clause.body, &scratch, &mut classes);
        let exported: Vec<String> = classes
            .iter()
            .filter(|c| !self.sources_exporting(c).is_empty())
            .cloned()
            .collect();
        // Warm path (cross-query caching): reuse the cached base-layer
        // model and evaluate only this query's delta — the temporary view
        // plus freshly fetched rows — on a scratch clone of the base.
        // Strata untouched by the delta are seeded from the cache instead
        // of recomputed (see `kind_datalog::Engine::run_for_seeded`).
        if self.eval_options().base_cache {
            if let Some((rows, sources, stats, magic_fired)) =
                self.answer_via_base_cache(rule_text, &head_pred, &head.args, &exported, &scratch)?
            {
                return Ok(AnswerSet {
                    rows,
                    classes: exported,
                    sources,
                    report: self.report().clone(),
                    stats,
                    magic_fired,
                });
            }
        }
        // Cold path: install the view (a staged rule addition on a
        // current base; a full rebuild only when one was already owed),
        // fetch only what the query needs — concurrently, then apply in
        // deterministic request order.
        self.define_view(rule_text)?;
        self.ensure_base_current()?;
        let mut contacted: BTreeSet<String> = BTreeSet::new();
        let mut requests: Vec<FetchRequest> = Vec::new();
        for class in &exported {
            for src in self.sources_exporting(class) {
                contacted.insert(src.clone());
                requests.push(FetchRequest::new(src, SourceQuery::scan(class.as_str())));
            }
        }
        let fetched = self.federation_mut().fetch_parallel(&requests)?;
        for batch in &fetched.batches {
            for row in &batch.rows {
                self.apply_row(&batch.source, &batch.query.class, row)?;
            }
        }
        // Goal-directed evaluation towards the answer predicate: the
        // relevance prune plus (when enabled) the magic-sets rewrite
        // specializing the plan to the goal's constant bindings. The
        // goal's arguments were interned by the scratch parse; map them
        // into the base engine so constants bind correctly.
        let opts = self.eval_options().clone();
        let goal_args: Vec<Term> = head
            .args
            .iter()
            .map(|t| {
                crate::mediator::reintern_term(
                    &scratch,
                    self.base_mut().flogic_mut().engine_mut(),
                    t,
                )
            })
            .collect();
        let goal = kind_datalog::Atom::new(
            self.base()
                .flogic()
                .engine()
                .lookup(&head_pred)
                .expect("head predicate interned by rebuild"),
            goal_args,
        );
        let model = self
            .base_mut()
            .flogic_mut()
            .run_for_query(&goal, &opts)
            .map_err(MediatorError::from)?;
        let rows = model.query(&goal);
        // Uninstall the temporary view.
        self.pop_view();
        Ok(AnswerSet {
            rows,
            classes: exported,
            sources: contacted.into_iter().collect(),
            report: self.report().clone(),
            stats: model.stats,
            magic_fired: model.profile.magic_fired,
        })
    }
}

fn collect_classes(
    items: &[FlBodyItem],
    syms: &kind_datalog::Interner,
    out: &mut BTreeSet<String>,
) {
    for item in items {
        match item {
            FlBodyItem::Pos(Molecule::IsA {
                class: Term::Const(c),
                ..
            })
            | FlBodyItem::Neg(Molecule::IsA {
                class: Term::Const(c),
                ..
            }) => {
                out.insert(syms.resolve(*c).to_string());
            }
            FlBodyItem::Agg { body, .. } => collect_classes(body, syms, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::mediator::Mediator;
    use crate::wrapper::{Anchor, Capability, MemoryWrapper};
    use kind_dm::{figures, ExecMode};
    use kind_gcm::GcmValue;
    use std::sync::Arc;

    fn mediator_with_two_sources() -> Mediator {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        let mut a = MemoryWrapper::new("A");
        a.caps.push(Capability {
            class: "spines".into(),
            pushable: vec![],
        });
        a.anchor_decls.push(Anchor::Fixed {
            class: "spines".into(),
            concept: "Spine".into(),
        });
        for i in 0..4 {
            a.add_row(
                "spines",
                &format!("s{i}"),
                vec![("len", GcmValue::Int(i * 10))],
            );
        }
        m.register(Arc::new(a)).unwrap();
        let mut b = MemoryWrapper::new("B");
        b.caps.push(Capability {
            class: "proteins".into(),
            pushable: vec![],
        });
        b.anchor_decls.push(Anchor::Fixed {
            class: "proteins".into(),
            concept: "Protein".into(),
        });
        b.add_row(
            "proteins",
            "p0",
            vec![("name", GcmValue::Id("calb".into()))],
        );
        m.register(Arc::new(b)).unwrap();
        m
    }

    #[test]
    fn answer_fetches_only_mentioned_classes() {
        let mut m = mediator_with_two_sources();
        let ans = m
            .answer("long_spines(X, L) :- X : spines, X[len -> L], L >= 20.")
            .unwrap();
        assert_eq!(ans.rows.len(), 2);
        assert_eq!(ans.classes, vec!["spines".to_string()]);
        // Only source A was contacted.
        assert_eq!(ans.sources, vec!["A".to_string()]);
    }

    #[test]
    fn answer_view_is_temporary() {
        let mut m = mediator_with_two_sources();
        m.answer("q(X) :- X : spines.").unwrap();
        // After answering, the view is gone: a fresh materialized query
        // does not know `q`.
        m.materialize_all().unwrap();
        let rows = m.query_fl("q(X)").unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn answer_can_join_sources_and_domain_map() {
        let mut m = mediator_with_two_sources();
        let ans = m
            .answer(
                r#"link(X, P) :- X : spines, P : proteins,
                               dm_role("contains", "Spine", "Ion_Binding_Protein")."#,
            )
            .unwrap();
        // Cross product gated on domain knowledge: 4 spines × 1 protein.
        assert_eq!(ans.rows.len(), 4);
        assert_eq!(ans.sources, vec!["A".to_string(), "B".to_string()]);
    }

    fn rendered(m: &Mediator, rows: &[Vec<kind_datalog::Term>]) -> Vec<String> {
        let mut v: Vec<String> = rows
            .iter()
            .map(|r| r.iter().map(|t| m.show(t)).collect::<Vec<_>>().join(","))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn answer_warm_path_matches_cold_path() {
        let mut warm = mediator_with_two_sources();
        let mut cold = mediator_with_two_sources();
        let mut o = cold.eval_options().clone();
        o.base_cache = false;
        cold.set_eval_options(o);
        let q = "long_spines(X, L) :- X : spines, X[len -> L], L >= 20.";
        let w1 = warm.answer(q).unwrap();
        let w2 = warm.answer(q).unwrap(); // second call reuses the cached base
        let c = cold.answer(q).unwrap();
        assert_eq!(rendered(&warm, &w1.rows), rendered(&cold, &c.rows));
        assert_eq!(rendered(&warm, &w1.rows), rendered(&warm, &w2.rows));
        assert_eq!(w1.rows.len(), 2);
        assert_eq!(w1.sources, c.sources);
        assert_eq!(w1.classes, c.classes);
    }

    #[test]
    fn answer_head_colliding_with_base_falls_back() {
        let mut m = mediator_with_two_sources();
        // `anchored` already has facts in the base model, so the seeded
        // path refuses it and the cold path must produce the answer.
        let ans = m.answer("anchored(S, C) :- anchored(S, C).").unwrap();
        assert_eq!(ans.rows.len(), 2);
    }

    /// The knob-setter audit (write-plane invariant): latency,
    /// parallelism, and query-planning knobs tune *how* an answer is
    /// computed, never *what* the base model is — so toggling every one
    /// of them must leave the published model untouched (same `Arc`, no
    /// pending publish) and keep `answer()` on the warm seeded path.
    #[test]
    fn knob_toggles_keep_warm_answer_warm() {
        use crate::fault::SourcePolicy;
        let mut m = mediator_with_two_sources();
        let q = "long_spines(X, L) :- X : spines, X[len -> L], L >= 20.";
        let first = m.answer(q).unwrap();
        m.publish().unwrap();
        let warm_ptr = Arc::as_ptr(m.cached_model().expect("publish caches the model"));
        m.set_query_budget_ms(250);
        m.federation_mut().set_fetch_threads(2);
        m.set_default_policy(SourcePolicy::with_hedge_after_ms(50));
        m.set_deadline_cancels_siblings(true);
        m.set_magic_sets(false);
        m.set_magic_sets(true);
        m.set_eval_threads(1);
        assert!(
            !m.publish_pending(),
            "knob setters must not stage writes or force a rebuild"
        );
        let again = m.answer(q).unwrap();
        assert_eq!(
            Arc::as_ptr(m.cached_model().expect("model still cached")),
            warm_ptr,
            "knob setters invalidated the published model"
        );
        assert_eq!(rendered(&m, &first.rows), rendered(&m, &again.rows));
        assert_eq!(again.rows.len(), 2);
    }

    /// The hub side of the audit: subscribing to the hub and publishing
    /// through it are pointer-copying operations on a quiet mediator —
    /// the cached model `Arc` survives untouched, no write is staged,
    /// and only the hub epoch moves. (The server's own serving knobs —
    /// worker count, queue depth, default budget — live in
    /// `kind-server::ServerConfig` and are audited there: they never
    /// reach the mediator at all.)
    #[test]
    fn hub_publication_keeps_warm_model_warm() {
        let mut m = mediator_with_two_sources();
        m.publish().unwrap();
        let warm_ptr = Arc::as_ptr(m.cached_model().expect("publish caches the model"));
        // Subscribing alone changes nothing.
        let hub = m.hub();
        assert_eq!(hub.epoch(), 0);
        assert!(!m.publish_pending());
        // A subscribed publish installs (epoch 1) but reuses the cached
        // model and stages nothing.
        m.publish().unwrap();
        assert_eq!(hub.epoch(), 1);
        let pinned = hub.load().expect("installed");
        assert_eq!(
            Arc::as_ptr(m.cached_model().expect("model still cached")),
            warm_ptr,
            "hub publication invalidated the published model"
        );
        assert_eq!(
            pinned.model() as *const _,
            warm_ptr,
            "the hub serves the very model the mediator cached"
        );
        // Explicit publish_snapshot: same contract, next epoch.
        let p2 = m.publish_snapshot().unwrap();
        assert_eq!(p2.epoch(), 2);
        assert_eq!(
            Arc::as_ptr(m.cached_model().expect("model still cached")),
            warm_ptr
        );
        assert!(!m.publish_pending());
    }

    #[test]
    fn answer_rejects_multi_clause_input() {
        let mut m = mediator_with_two_sources();
        assert!(m.answer("a(X) :- X : spines. b(X) :- X : spines.").is_err());
    }

    #[test]
    fn answer_rejects_molecule_head() {
        let mut m = mediator_with_two_sources();
        assert!(m.answer("X : big :- X : spines.").is_err());
    }
}
