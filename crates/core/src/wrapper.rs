//! The wrapper interface: how a source joins the mediated system.
//!
//! Paper §2, "The Mediator System at Work": a wrapped source registers by
//! sending (i) its conceptual model (class schemas, relationship schemas,
//! semantic rules), (ii) a description of its **query capabilities** —
//! "a (usually very limited) CM query language … the logical API for
//! retrieving actual object instances", minimally supporting browsing of
//! all instances, optionally declaring binding patterns that let the
//! mediator *push down* selections — and (iii) the **anchor** attributes
//! giving its data's "semantic coordinates" in the mediator's domain map.

use kind_gcm::GcmValue;
use kind_xml::Element;

/// A selection `attr = value` pushed to (or applied on behalf of) a
/// source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Attribute name.
    pub attr: String,
    /// Required value.
    pub value: GcmValue,
}

/// A query against one source class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceQuery {
    /// The exported class to scan.
    pub class: String,
    /// Conjunctive equality selections.
    pub selections: Vec<Selection>,
}

impl SourceQuery {
    /// A full scan of `class`.
    pub fn scan(class: impl Into<String>) -> Self {
        SourceQuery {
            class: class.into(),
            selections: Vec::new(),
        }
    }

    /// Adds an equality selection.
    pub fn with(mut self, attr: &str, value: GcmValue) -> Self {
        self.selections.push(Selection {
            attr: attr.into(),
            value,
        });
        self
    }
}

/// A declared query capability: which attributes of a class accept
/// pushed-down selections (a simple binding-pattern description).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capability {
    /// The exported class.
    pub class: String,
    /// Attributes usable as bound arguments. Everything else must be
    /// filtered mediator-side after a scan.
    pub pushable: Vec<String>,
}

/// A named **query template** (§2: wrappers may "declare further
/// capabilities as binding patterns or query templates which allow the
/// mediator to optimize query evaluation by pushing down subqueries").
///
/// A template is a canned parameterized query: calling
/// `protein_by_location(L)` expands to a scan of `class` with the
/// positional arguments bound to `params` — a coarse but honest model of
/// the "logical API" of a limited source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTemplate {
    /// Template name.
    pub name: String,
    /// Underlying exported class.
    pub class: String,
    /// Attribute names bound by positional call arguments.
    pub params: Vec<String>,
}

impl QueryTemplate {
    /// Expands the template into a concrete [`SourceQuery`].
    ///
    /// Returns `None` when the argument count does not match.
    pub fn expand(&self, args: &[GcmValue]) -> Option<SourceQuery> {
        if args.len() != self.params.len() {
            return None;
        }
        let mut q = SourceQuery::scan(&self.class);
        for (attr, value) in self.params.iter().zip(args) {
            q = q.with(attr, value.clone());
        }
        Some(q)
    }
}

/// One object row returned by a wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRow {
    /// The object identifier.
    pub id: String,
    /// Attribute values.
    pub attrs: Vec<(String, GcmValue)>,
}

impl ObjectRow {
    /// The value of `attr`, if present.
    pub fn get(&self, attr: &str) -> Option<&GcmValue> {
        self.attrs.iter().find(|(a, _)| a == attr).map(|(_, v)| v)
    }

    /// The value of `attr` as a display string.
    pub fn get_str(&self, attr: &str) -> Option<String> {
        self.get(attr).map(|v| v.to_string())
    }

    /// The value of `attr` as an integer, if it is one.
    pub fn get_int(&self, attr: &str) -> Option<i64> {
        match self.get(attr) {
            Some(GcmValue::Int(i)) => Some(*i),
            _ => None,
        }
    }
}

/// An anchor declaration: instances of `class` are tagged with DM
/// `concept` — either fixedly, or through a `via` attribute whose value
/// *is* the concept name (the paper's anchor/context attributes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// Every instance of `class` anchors at `concept`.
    Fixed {
        /// Source class.
        class: String,
        /// DM concept.
        concept: String,
    },
    /// Each instance of `class` anchors at the concept named by its
    /// `attr` value (e.g. a `location` attribute holding
    /// `"Purkinje_Cell"`).
    ByAttr {
        /// Source class.
        class: String,
        /// The anchor attribute.
        attr: String,
    },
    /// A **derived anchor** (§2 footnote: anchors may be "methods, i.e.
    /// derived attributes which are computed on demand at the mediator"):
    /// the mediator evaluates `rule` — FL text defining
    /// `anchor_at(X, C)` — over the class's rows at registration time and
    /// anchors each object at the concept(s) the rule derives.
    Derived {
        /// Source class whose rows feed the rule.
        class: String,
        /// FL rules deriving `anchor_at(Obj, Concept)`.
        rule: String,
    },
}

/// The outcome of a split-phase [`Wrapper::submit`]: either the answer
/// itself (compute-bound wrappers answer inline) or a parked request the
/// caller must [`Wrapper::complete`] after roughly `stall` of wall time.
///
/// This is how a wrapper opts into the overlapped fetch plane
/// ([`crate::federation::FetchMode::Overlapped`]): instead of blocking an
/// OS thread inside [`Wrapper::query`] for the duration of a network
/// round-trip, it *declares* the stall, the executor parks the fetch job
/// on a timer wheel, and a worker thread comes back for the rows when
/// the stall has elapsed.
#[derive(Debug)]
pub enum Submission {
    /// The wrapper answered inline; no parking needed.
    Ready(std::result::Result<Vec<ObjectRow>, crate::fault::SourceError>),
    /// The request was started. Call [`Wrapper::complete`] with `ticket`
    /// no earlier than `stall` from now to collect the rows.
    Parked {
        /// The expected wall-clock stall before the answer is ready.
        stall: std::time::Duration,
        /// Opaque handle identifying the in-flight request; handed back
        /// to [`Wrapper::complete`] verbatim.
        ticket: u64,
    },
}

/// The wrapper interface. Implementations translate between a source's
/// native data and the conceptual level.
///
/// Wrappers are `Send + Sync`: a registered source is shared behind an
/// `Arc<dyn Wrapper>` and may be queried from multiple threads.
pub trait Wrapper: Send + Sync {
    /// The source's name (unique per mediator).
    fn name(&self) -> &str;

    /// The CM formalism the source exports in (`"gcm"`, `"er"`, `"uxf"`,
    /// `"rdfs"`, or any custom formalism registered as a plug-in).
    fn formalism(&self) -> &str;

    /// The conceptual model export, as an XML document in the source's
    /// formalism (schema, semantic rules, and optionally bulk data).
    fn export_cm(&self) -> Element;

    /// Declared query capabilities.
    fn capabilities(&self) -> Vec<Capability>;

    /// Declared query templates (defaults to none).
    fn templates(&self) -> Vec<QueryTemplate> {
        Vec::new()
    }

    /// Anchor declarations into the mediator's domain map.
    fn anchors(&self) -> Vec<Anchor>;

    /// DL axioms this source contributes to the domain map at
    /// registration (Figure 3's `MyNeuron`/`MyDendrite` flow); empty for
    /// sources that only anchor.
    fn dm_contribution(&self) -> String {
        String::new()
    }

    /// Evaluates a query. Selections on non-pushable attributes may be
    /// ignored by the source (the mediator re-filters); selections on
    /// pushable attributes must be honored.
    ///
    /// The boundary is fallible: a wrapper may be unreachable, time out,
    /// truncate, or ship garbage — see [`crate::fault::SourceError`] for
    /// the taxonomy and [`crate::Mediator::fetch`] for how failures are
    /// retried, circuit-broken, and reported.
    fn query(
        &self,
        q: &SourceQuery,
    ) -> std::result::Result<Vec<ObjectRow>, crate::fault::SourceError>;

    /// Cumulative virtual milliseconds this wrapper has *itself* spent
    /// serving queries (e.g. the injected delays of a
    /// [`crate::FaultInjector`]). The deadline plane charges a fetch
    /// job's budget with the delta of this counter around each attempt —
    /// never with raw clock reads, which concurrent jobs pollute — so
    /// deadline and hedging decisions are bit-identical at every
    /// `fetch_threads` setting. Wrappers that never stall (the default)
    /// report 0 forever.
    fn virtual_cost_ms(&self) -> u64 {
        0
    }

    /// The wall-clock stall one query against this source is expected to
    /// spend waiting on I/O, if the wrapper is **stall-aware** (implements
    /// the split [`Self::submit`]/[`Self::complete`] protocol). `None` —
    /// the default — means compute-bound: queries return as fast as the
    /// CPU allows and there is nothing for the fetch plane to overlap.
    ///
    /// The adaptive fetch sizing uses this declaration: a plan touching
    /// any stall-aware source is latency-bound, so the scoped-thread
    /// plane sizes its pool by overlap (jobs, capped by the in-flight
    /// limit) instead of by core count.
    fn stall_hint(&self) -> Option<std::time::Duration> {
        None
    }

    /// Split-phase query, phase one: start the request. Stall-aware
    /// wrappers return [`Submission::Parked`] immediately — no blocking —
    /// and deliver the rows from [`Self::complete`]; everything else
    /// falls back to answering inline via [`Self::query`].
    ///
    /// Contract: at most one submission per wrapper is outstanding at a
    /// time (the fetch plane runs each source's requests serially inside
    /// one job, and a hedge backup is only submitted after its primary
    /// completed), and every `Parked` submission is completed exactly
    /// once.
    fn submit(&self, q: &SourceQuery) -> Submission {
        Submission::Ready(self.query(q))
    }

    /// Split-phase query, phase two: collect a parked submission's rows.
    /// Called once per [`Submission::Parked`], no earlier than its
    /// declared stall. The default pairs with the default [`Self::submit`]
    /// (which never parks) and simply answers the query, so a wrapper
    /// overriding neither method still behaves correctly in every fetch
    /// mode.
    fn complete(
        &self,
        _ticket: u64,
        q: &SourceQuery,
    ) -> std::result::Result<Vec<ObjectRow>, crate::fault::SourceError> {
        self.query(q)
    }
}

/// Decorates any wrapper with a declared wall-clock `stall` per query —
/// the generic opt-in adapter for the overlapped fetch plane.
///
/// On the blocking path ([`Wrapper::query`], used by
/// [`crate::federation::FetchMode::ScopedThreads`]) the adapter really
/// sleeps `stall` of wall time, modelling a network round-trip that
/// pins its thread. On the split-phase path it parks instead: `submit`
/// returns [`Submission::Parked`] without blocking, and `complete`
/// answers from the inner wrapper — so hundreds of stalled sources
/// overlap on a handful of executor workers.
pub struct StallAware {
    inner: std::sync::Arc<dyn Wrapper>,
    stall: std::time::Duration,
}

impl StallAware {
    /// Wraps `inner`, declaring `stall` of wall time per query.
    pub fn new(
        inner: std::sync::Arc<dyn Wrapper>,
        stall: std::time::Duration,
    ) -> std::sync::Arc<Self> {
        std::sync::Arc::new(StallAware { inner, stall })
    }
}

impl Wrapper for StallAware {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn formalism(&self) -> &str {
        self.inner.formalism()
    }

    fn export_cm(&self) -> Element {
        self.inner.export_cm()
    }

    fn capabilities(&self) -> Vec<Capability> {
        self.inner.capabilities()
    }

    fn templates(&self) -> Vec<QueryTemplate> {
        self.inner.templates()
    }

    fn anchors(&self) -> Vec<Anchor> {
        self.inner.anchors()
    }

    fn dm_contribution(&self) -> String {
        self.inner.dm_contribution()
    }

    fn virtual_cost_ms(&self) -> u64 {
        self.inner.virtual_cost_ms()
    }

    fn query(
        &self,
        q: &SourceQuery,
    ) -> std::result::Result<Vec<ObjectRow>, crate::fault::SourceError> {
        std::thread::sleep(self.stall);
        self.inner.query(q)
    }

    fn stall_hint(&self) -> Option<std::time::Duration> {
        Some(self.stall)
    }

    fn submit(&self, _q: &SourceQuery) -> Submission {
        Submission::Parked {
            stall: self.stall,
            ticket: 0,
        }
    }

    fn complete(
        &self,
        _ticket: u64,
        q: &SourceQuery,
    ) -> std::result::Result<Vec<ObjectRow>, crate::fault::SourceError> {
        self.inner.query(q)
    }
}

/// A simple in-memory wrapper: rows per class, everything pushable or
/// nothing pushable. The building block for the simulated Neuroscience
/// sources and for tests.
#[derive(Debug, Default)]
pub struct MemoryWrapper {
    /// Source name.
    pub name: String,
    /// Export formalism.
    pub formalism: String,
    /// The CM export document.
    pub cm: Option<Element>,
    /// Class → rows.
    pub rows: std::collections::HashMap<String, Vec<ObjectRow>>,
    /// Declared capabilities.
    pub caps: Vec<Capability>,
    /// Declared query templates.
    pub query_templates: Vec<QueryTemplate>,
    /// Anchor declarations.
    pub anchor_decls: Vec<Anchor>,
    /// DL axioms contributed at registration.
    pub dm_axioms: String,
    /// Counts queries served (atomic: stats survive concurrent use).
    pub queries_served: std::sync::atomic::AtomicUsize,
    /// Counts rows shipped.
    pub rows_shipped: std::sync::atomic::AtomicUsize,
}

impl Clone for MemoryWrapper {
    fn clone(&self) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        MemoryWrapper {
            name: self.name.clone(),
            formalism: self.formalism.clone(),
            cm: self.cm.clone(),
            rows: self.rows.clone(),
            caps: self.caps.clone(),
            query_templates: self.query_templates.clone(),
            anchor_decls: self.anchor_decls.clone(),
            dm_axioms: self.dm_axioms.clone(),
            queries_served: AtomicUsize::new(self.queries_served.load(Ordering::SeqCst)),
            rows_shipped: AtomicUsize::new(self.rows_shipped.load(Ordering::SeqCst)),
        }
    }
}

impl MemoryWrapper {
    /// Creates an empty wrapper exporting native GCM.
    pub fn new(name: impl Into<String>) -> Self {
        MemoryWrapper {
            name: name.into(),
            formalism: "gcm".into(),
            ..Default::default()
        }
    }

    /// Builds a wrapper from an XML **source bundle** — the whole source
    /// description (CM export, capabilities, templates, anchors, DM
    /// contribution, data) in one document, so a source can arrive "over
    /// the wire" or from a file:
    ///
    /// ```xml
    /// <source name="LAB" formalism="gcm">
    ///   <cm><gcm name="LAB"><instance obj="x" class="c"/></gcm></cm>
    ///   <capability class="m" pushable="loc,ion"/>
    ///   <template name="by_loc" class="m" params="loc"/>
    ///   <anchor class="m" attr="loc"/>        <!-- ByAttr -->
    ///   <anchor class="m" concept="Spine"/>   <!-- Fixed -->
    ///   <axioms>MyThing &lt; Spine.</axioms>
    ///   <data class="m">
    ///     <row id="r1"><v name="loc" id="Spine"/><v name="amount" int="4"/></row>
    ///   </data>
    /// </source>
    /// ```
    pub fn from_xml(bundle: &Element) -> std::result::Result<Self, kind_gcm::GcmError> {
        use kind_gcm::GcmError;
        let malformed = |m: String| GcmError::Malformed { message: m };
        if bundle.name != "source" {
            return Err(malformed(format!(
                "expected <source> root, found <{}>",
                bundle.name
            )));
        }
        let mut w = MemoryWrapper::new(
            bundle
                .attr("name")
                .ok_or_else(|| malformed("<source> missing name".into()))?,
        );
        w.formalism = bundle.attr("formalism").unwrap_or("gcm").to_string();
        for e in bundle.elements() {
            match e.name.as_str() {
                "cm" => {
                    w.cm = e.elements().next().cloned();
                }
                "capability" => {
                    let class = e
                        .attr("class")
                        .ok_or_else(|| malformed("<capability> missing class".into()))?;
                    let pushable = e
                        .attr("pushable")
                        .unwrap_or("")
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    w.caps.push(Capability {
                        class: class.to_string(),
                        pushable,
                    });
                }
                "template" => {
                    w.query_templates.push(QueryTemplate {
                        name: e
                            .attr("name")
                            .ok_or_else(|| malformed("<template> missing name".into()))?
                            .to_string(),
                        class: e
                            .attr("class")
                            .ok_or_else(|| malformed("<template> missing class".into()))?
                            .to_string(),
                        params: e
                            .attr("params")
                            .unwrap_or("")
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect(),
                    });
                }
                "anchor" => {
                    let class = e
                        .attr("class")
                        .ok_or_else(|| malformed("<anchor> missing class".into()))?
                        .to_string();
                    let anchor = if let Some(attr) = e.attr("attr") {
                        Anchor::ByAttr {
                            class,
                            attr: attr.to_string(),
                        }
                    } else if let Some(concept) = e.attr("concept") {
                        Anchor::Fixed {
                            class,
                            concept: concept.to_string(),
                        }
                    } else if let Some(rule) = e.attr("rule") {
                        Anchor::Derived {
                            class,
                            rule: rule.to_string(),
                        }
                    } else {
                        return Err(malformed("<anchor> needs attr=, concept=, or rule=".into()));
                    };
                    w.anchor_decls.push(anchor);
                }
                "axioms" => {
                    w.dm_axioms.push_str(&e.deep_text());
                    w.dm_axioms.push('\n');
                }
                "data" => {
                    let class = e
                        .attr("class")
                        .ok_or_else(|| malformed("<data> missing class".into()))?
                        .to_string();
                    for row in e.elements_named("row") {
                        let id = row
                            .attr("id")
                            .ok_or_else(|| malformed("<row> missing id".into()))?
                            .to_string();
                        let mut attrs = Vec::new();
                        for v in row.elements_named("v") {
                            let name = v
                                .attr("name")
                                .ok_or_else(|| malformed("<v> missing name".into()))?
                                .to_string();
                            let value = if let Some(i) = v.attr("int") {
                                GcmValue::Int(
                                    i.parse()
                                        .map_err(|_| malformed(format!("bad int `{i}` in <v>")))?,
                                )
                            } else if let Some(s) = v.attr("id") {
                                GcmValue::Id(s.to_string())
                            } else if let Some(s) = v.attr("str") {
                                GcmValue::Str(s.to_string())
                            } else {
                                return Err(malformed("<v> needs id=/int=/str=".into()));
                            };
                            attrs.push((name, value));
                        }
                        w.rows
                            .entry(class.clone())
                            .or_default()
                            .push(ObjectRow { id, attrs });
                    }
                }
                other => return Err(malformed(format!("unknown <source> child <{other}>"))),
            }
        }
        Ok(w)
    }

    /// Adds a row to a class.
    pub fn add_row(&mut self, class: &str, id: &str, attrs: Vec<(&str, GcmValue)>) {
        self.rows
            .entry(class.to_string())
            .or_default()
            .push(ObjectRow {
                id: id.to_string(),
                attrs: attrs.into_iter().map(|(a, v)| (a.to_string(), v)).collect(),
            });
    }
}

impl Wrapper for MemoryWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn formalism(&self) -> &str {
        &self.formalism
    }

    fn export_cm(&self) -> Element {
        self.cm
            .clone()
            .unwrap_or_else(|| Element::new("gcm").with_attr("name", self.name.clone()))
    }

    fn capabilities(&self) -> Vec<Capability> {
        self.caps.clone()
    }

    fn templates(&self) -> Vec<QueryTemplate> {
        self.query_templates.clone()
    }

    fn anchors(&self) -> Vec<Anchor> {
        self.anchor_decls.clone()
    }

    fn dm_contribution(&self) -> String {
        self.dm_axioms.clone()
    }

    fn query(
        &self,
        q: &SourceQuery,
    ) -> std::result::Result<Vec<ObjectRow>, crate::fault::SourceError> {
        self.queries_served
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let pushable: Vec<&str> = self
            .caps
            .iter()
            .filter(|c| c.class == q.class)
            .flat_map(|c| c.pushable.iter().map(String::as_str))
            .collect();
        let out: Vec<ObjectRow> = self
            .rows
            .get(&q.class)
            .map(|rows| {
                rows.iter()
                    .filter(|r| {
                        q.selections
                            .iter()
                            .filter(|s| pushable.contains(&s.attr.as_str()))
                            .all(|s| r.get(&s.attr) == Some(&s.value))
                    })
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        self.rows_shipped
            .fetch_add(out.len(), std::sync::atomic::Ordering::SeqCst);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrapper() -> MemoryWrapper {
        let mut w = MemoryWrapper::new("TEST");
        w.caps.push(Capability {
            class: "m".into(),
            pushable: vec!["loc".into()],
        });
        w.add_row(
            "m",
            "r1",
            vec![
                ("loc", GcmValue::Id("spine".into())),
                ("amount", GcmValue::Int(4)),
            ],
        );
        w.add_row(
            "m",
            "r2",
            vec![
                ("loc", GcmValue::Id("shaft".into())),
                ("amount", GcmValue::Int(9)),
            ],
        );
        w
    }

    #[test]
    fn pushable_selection_filters_at_source() {
        let w = wrapper();
        let q = SourceQuery::scan("m").with("loc", GcmValue::Id("spine".into()));
        let rows = w.query(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, "r1");
        assert_eq!(w.rows_shipped.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn non_pushable_selection_ships_everything() {
        let w = wrapper();
        // `amount` is not pushable: the wrapper ignores the selection.
        let q = SourceQuery::scan("m").with("amount", GcmValue::Int(4));
        let rows = w.query(&q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn row_accessors() {
        let w = wrapper();
        let rows = w.query(&SourceQuery::scan("m")).unwrap();
        assert_eq!(rows[0].get_int("amount"), Some(4));
        assert_eq!(rows[0].get_str("loc"), Some("spine".into()));
        assert!(rows[0].get("missing").is_none());
    }

    #[test]
    fn unknown_class_is_empty() {
        let w = wrapper();
        assert!(w.query(&SourceQuery::scan("nope")).unwrap().is_empty());
    }

    #[test]
    fn source_bundle_from_xml() {
        let doc = kind_xml::parse(
            r#"<source name="LAB" formalism="er">
                 <cm><er name="LAB"><entity name="m"/></er></cm>
                 <capability class="m" pushable="loc,ion"/>
                 <template name="by_loc" class="m" params="loc"/>
                 <anchor class="m" attr="loc"/>
                 <axioms>MyThing &lt; Spine.</axioms>
                 <data class="m">
                   <row id="r1"><v name="loc" id="Spine"/><v name="amount" int="4"/></row>
                   <row id="r2"><v name="loc" id="Shaft"/><v name="note" str="x y"/></row>
                 </data>
               </source>"#,
        )
        .unwrap();
        let w = MemoryWrapper::from_xml(&doc.root).unwrap();
        assert_eq!(w.name, "LAB");
        assert_eq!(w.formalism, "er");
        assert_eq!(w.caps[0].pushable, vec!["loc", "ion"]);
        assert_eq!(w.query_templates[0].params, vec!["loc"]);
        assert!(w.dm_axioms.contains("MyThing < Spine."));
        let rows = w.query(&SourceQuery::scan("m")).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get_int("amount"), Some(4));
        assert_eq!(rows[1].get_str("note"), Some("x y".into()));
    }

    #[test]
    fn source_bundle_rejects_malformed() {
        for bad in [
            "<notsource/>",
            "<source/>",
            r#"<source name="x"><anchor class="m"/></source>"#,
            r#"<source name="x"><data class="m"><row/></data></source>"#,
            r#"<source name="x"><data class="m"><row id="r"><v name="a" int="zz"/></row></data></source>"#,
            r#"<source name="x"><junk/></source>"#,
        ] {
            let doc = kind_xml::parse(bad).unwrap();
            assert!(MemoryWrapper::from_xml(&doc.root).is_err(), "{bad}");
        }
    }

    #[test]
    fn template_expansion() {
        let t = QueryTemplate {
            name: "m_by_loc".into(),
            class: "m".into(),
            params: vec!["loc".into()],
        };
        let q = t.expand(&[GcmValue::Id("spine".into())]).unwrap();
        assert_eq!(q.class, "m");
        assert_eq!(q.selections.len(), 1);
        // Wrong arity is rejected.
        assert!(t.expand(&[]).is_none());
        let w = wrapper();
        assert_eq!(w.query(&q).unwrap().len(), 1);
    }
}
