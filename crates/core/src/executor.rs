//! The **overlapped fetch executor**: the fetch plane's answer to
//! thread-per-source.
//!
//! The scoped-thread plane ([`crate::federation::FetchMode::ScopedThreads`])
//! parks one OS thread inside every stalled wrapper call — fine for a
//! handful of sources, but fan-out scales thread count, not throughput.
//! This module runs the *same* fetch jobs as resumable machines
//! ([`crate::federation::JobMachine`]) on a **small fixed worker pool**:
//!
//! * a worker drives a job until its next wrapper contact;
//! * a **stall-aware** wrapper ([`Wrapper::submit`] returning
//!   [`Submission::Parked`]) does not block — the job is parked on a
//!   hashed **timer wheel** with a wake deadline, and the worker moves on
//!   to another ready job;
//! * when the deadline passes, any worker collects the parked job,
//!   completes the submission ([`Wrapper::complete`]), and resumes the
//!   machine;
//! * an `in_flight` admission limit bounds how many jobs are past their
//!   submit at once, in job registration order.
//!
//! Wrappers that are *not* stall-aware answer inline from `submit`'s
//! default (which blocks in [`Wrapper::query`]) — correct, just without
//! overlap, exactly like the scoped plane.
//!
//! **Determinism.** The executor changes scheduling only: each job's
//! machine runs the identical policy body ([`crate::federation`]'s
//! `FetchMachine`), each source's requests stay serial inside its job,
//! and the merge consumes results by job index. Batches, reports,
//! statistics, and breaker transitions are bit-identical to the
//! scoped-thread plane at every worker count and in-flight limit.

use crate::fault::Clock;
use crate::federation::{
    FetchJob, FetchJobDone, JobMachine, JobStep, RegisteredSource, SourceReply, ThreadGauge,
};
use crate::wrapper::Submission;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Timer-wheel tick granularity. Stalls are declared in milliseconds,
/// so 1ms ticks lose nothing.
const TICK_MS: u64 = 1;

/// Timer-wheel slot count. One lap covers 256ms of stalls; longer
/// timers simply survive extra laps (they are filtered by deadline, not
/// by slot position).
const WHEEL_SLOTS: usize = 256;

/// How long an idle worker sleeps when it has neither ready jobs nor
/// armed timers to wait for (all in-flight jobs are on other workers).
/// A notification arrives well before this in practice; the timeout only
/// guards against lost wakeups.
const IDLE_WAIT: Duration = Duration::from_millis(10);

/// One armed timer: wake `token` once `deadline_ms` has passed.
#[derive(Debug, Clone, Copy)]
struct Timer {
    deadline_ms: u64,
    token: usize,
}

/// A hashed timer wheel: `WHEEL_SLOTS` buckets of `TICK_MS` granularity.
/// Scheduling is O(1); advancing visits only the slots the elapsed ticks
/// hash into (at most one full lap), keeping timers whose deadline lies
/// a lap or more ahead.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: Vec<Vec<Timer>>,
    /// The tick up to (and including) which expired timers have been
    /// collected.
    cursor: u64,
    /// Armed timers across all slots.
    armed: usize,
}

impl TimerWheel {
    pub(crate) fn new(now_ms: u64) -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: now_ms / TICK_MS,
            armed: 0,
        }
    }

    /// Arms a wake for `token` at `deadline_ms`. Deadlines at or before
    /// the cursor are clamped to the next tick so they are collected by
    /// the very next [`Self::advance`].
    pub(crate) fn schedule(&mut self, deadline_ms: u64, token: usize) {
        let tick = (deadline_ms / TICK_MS).max(self.cursor + 1);
        let slot = (tick % WHEEL_SLOTS as u64) as usize;
        self.slots[slot].push(Timer { deadline_ms, token });
        self.armed += 1;
    }

    /// Collects every timer whose deadline has passed by `now_ms` into
    /// `expired`, in slot-visit order.
    pub(crate) fn advance(&mut self, now_ms: u64, expired: &mut Vec<usize>) {
        if self.armed == 0 {
            self.cursor = self.cursor.max(now_ms / TICK_MS);
            return;
        }
        let now_tick = now_ms / TICK_MS;
        if now_tick <= self.cursor {
            return;
        }
        // Visit at most one full lap: a lap touches every slot, and the
        // per-timer deadline filter below makes extra laps redundant.
        let steps = (now_tick - self.cursor).min(WHEEL_SLOTS as u64);
        for t in 1..=steps {
            let slot = ((self.cursor + t) % WHEEL_SLOTS as u64) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].deadline_ms <= now_ms {
                    expired.push(bucket.swap_remove(i).token);
                    self.armed -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick;
    }

    /// The earliest armed deadline, if any (the idle-wait bound).
    pub(crate) fn next_deadline(&self) -> Option<u64> {
        if self.armed == 0 {
            return None;
        }
        self.slots.iter().flatten().map(|t| t.deadline_ms).min()
    }

    #[cfg(test)]
    fn armed(&self) -> usize {
        self.armed
    }
}

/// One job's seat in the executor: its machine, plus the ticket of a
/// parked submission awaiting [`Wrapper::complete`].
struct Seat {
    machine: JobMachine,
    parked_ticket: Option<u64>,
}

/// What driving a job until its next suspension produced.
enum Drive {
    /// The job parked a submission; wake it after `stall`.
    Parked { stall: Duration },
    /// The job ran out of requests.
    Done(FetchJobDone),
}

/// Shared scheduler state, guarded by one mutex (contended only at
/// suspension points, never during wrapper work).
struct Sched {
    /// Jobs ready to run. A `Some` seat is waiting here or on the wheel;
    /// `None` means the job is being driven by a worker or finished.
    seats: Vec<Option<Seat>>,
    ready: VecDeque<usize>,
    wheel: TimerWheel,
    /// Next job awaiting admission (admission is in job order).
    next_admit: usize,
    /// Jobs admitted and not yet finished.
    active: usize,
    finished: usize,
    results: Vec<Option<FetchJobDone>>,
}

/// Runs `jobs` to completion on `workers` pooled threads, overlapping
/// parked stalls, and returns the per-job results in job order — the
/// overlapped counterpart of the scoped-thread block in
/// [`crate::Federation::fetch_parallel`].
pub(crate) fn run_overlapped(
    sources: &[RegisteredSource],
    clock: &Arc<dyn Clock>,
    jobs: Vec<FetchJob>,
    workers: usize,
    in_flight: usize,
    gauge: &ThreadGauge,
) -> Vec<FetchJobDone> {
    let total = jobs.len();
    let limit = if in_flight == 0 {
        usize::MAX
    } else {
        in_flight.max(1)
    };
    let workers = workers.max(1);
    let epoch = Instant::now();
    let state = Mutex::new(Sched {
        seats: jobs
            .into_iter()
            .map(|job| {
                Some(Seat {
                    machine: JobMachine::new(sources, job),
                    parked_ticket: None,
                })
            })
            .collect(),
        ready: VecDeque::new(),
        wheel: TimerWheel::new(0),
        next_admit: 0,
        active: 0,
        finished: 0,
        results: (0..total).map(|_| None).collect(),
    });
    let wake = Condvar::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                gauge.enter();
                worker_loop(sources, clock, &state, &wake, &epoch, limit, total);
                gauge.exit();
            });
        }
    });
    state
        .into_inner()
        .expect("executor state poisoned")
        .results
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

fn now_ms(epoch: &Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

fn worker_loop(
    sources: &[RegisteredSource],
    clock: &Arc<dyn Clock>,
    state: &Mutex<Sched>,
    wake: &Condvar,
    epoch: &Instant,
    limit: usize,
    total: usize,
) {
    let mut expired: Vec<usize> = Vec::new();
    let mut guard = state.lock().expect("executor state poisoned");
    loop {
        // Collect due timers and admit jobs up to the in-flight limit.
        let now = now_ms(epoch);
        guard.wheel.advance(now, &mut expired);
        for token in expired.drain(..) {
            guard.ready.push_back(token);
        }
        while guard.active < limit && guard.next_admit < total {
            let idx = guard.next_admit;
            guard.next_admit += 1;
            guard.active += 1;
            guard.ready.push_back(idx);
        }
        if let Some(idx) = guard.ready.pop_front() {
            let mut seat = guard.seats[idx].take().expect("ready job has a seat");
            drop(guard);
            let outcome = drive(&mut seat, sources, clock);
            guard = state.lock().expect("executor state poisoned");
            match outcome {
                Drive::Parked { stall } => {
                    let stall_ms = stall.as_millis() as u64;
                    let now = now_ms(epoch);
                    if stall_ms == 0 {
                        guard.ready.push_back(idx);
                    } else {
                        guard.wheel.schedule(now + stall_ms, idx);
                    }
                    guard.seats[idx] = Some(seat);
                    // A sleeping sibling may be waiting on a later (or
                    // no) deadline: let one re-evaluate its wait.
                    wake.notify_one();
                }
                Drive::Done(done) => {
                    guard.results[idx] = Some(done);
                    guard.finished += 1;
                    guard.active -= 1;
                    if guard.finished == total {
                        wake.notify_all();
                    } else {
                        // An admission slot opened up.
                        wake.notify_one();
                    }
                }
            }
            continue;
        }
        if guard.finished == total {
            return;
        }
        // Nothing ready: sleep until the next timer fires, or until a
        // sibling parks/finishes something.
        let now = now_ms(epoch);
        let timeout = match guard.wheel.next_deadline() {
            Some(d) if d <= now => continue,
            Some(d) => Duration::from_millis(d - now),
            None => IDLE_WAIT,
        };
        guard = wake
            .wait_timeout(guard, timeout)
            .expect("executor state poisoned")
            .0;
    }
}

/// Drives one job until it parks or finishes. Runs outside the
/// scheduler lock: everything here is the job's own state plus the
/// shared-but-thread-safe wrapper and clock.
fn drive(seat: &mut Seat, sources: &[RegisteredSource], clock: &Arc<dyn Clock>) -> Drive {
    let mut reply: Option<SourceReply> = None;
    // Waking from a park: collect the stalled submission first.
    if let Some(ticket) = seat.parked_ticket.take() {
        let src = &sources[seat.machine.src_pos()];
        reply = Some(src.wrapper.complete(ticket, seat.machine.current_query()));
    }
    loop {
        match seat.machine.step(sources, clock, reply.take()) {
            JobStep::Contact => {
                let src = &sources[seat.machine.src_pos()];
                match src.wrapper.submit(seat.machine.current_query()) {
                    Submission::Ready(r) => reply = Some(r),
                    Submission::Parked { stall, ticket } => {
                        seat.parked_ticket = Some(ticket);
                        return Drive::Parked { stall };
                    }
                }
            }
            JobStep::Done(done) => return Drive::Done(done),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_collects_in_deadline_windows() {
        let mut w = TimerWheel::new(0);
        let mut out = Vec::new();
        w.schedule(5, 1);
        w.schedule(12, 2);
        w.schedule(5, 3);
        assert_eq!(w.armed(), 3);
        w.advance(4, &mut out);
        assert!(out.is_empty());
        w.advance(7, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 3]);
        out.clear();
        w.advance(30, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(w.armed(), 0);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn wheel_keeps_timers_more_than_a_lap_ahead() {
        let mut w = TimerWheel::new(0);
        let mut out = Vec::new();
        // Same slot (10 and 10 + 256·TICK_MS hash identically), a lap apart.
        w.schedule(10, 1);
        w.schedule(10 + (WHEEL_SLOTS as u64) * TICK_MS, 2);
        w.advance(10, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(w.armed(), 1);
        out.clear();
        // A huge jump still visits every slot exactly once.
        w.advance(10_000, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn wheel_clamps_past_deadlines_to_the_next_tick() {
        let mut w = TimerWheel::new(100);
        let mut out = Vec::new();
        // Deadline already in the past when armed: collected on the
        // next advance rather than lost behind the cursor.
        w.schedule(50, 7);
        w.advance(101, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn wheel_next_deadline_is_the_minimum() {
        let mut w = TimerWheel::new(0);
        w.schedule(40, 1);
        w.schedule(9, 2);
        w.schedule(700, 3);
        assert_eq!(w.next_deadline(), Some(9));
        let mut out = Vec::new();
        w.advance(9, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(w.next_deadline(), Some(40));
    }
}
