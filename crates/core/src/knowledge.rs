//! The **knowledge layer**: everything the mediator *knows* independent
//! of any particular source connection — the domain map and its resolved
//! closure view, the retained DL axioms, the CM plug-in registry, the
//! semantic index, the applied conceptual models, and the integrated
//! view definitions.
//!
//! This is the middle layer of the mediator split (see DESIGN.md):
//! [`crate::Federation`] owns the wrapper boundary below it, and
//! [`crate::Mediator`] composes the two with the eval/cache pipeline on
//! top. Semantic source *selection* lives here and speaks in
//! [`SourceId`]s; the facade maps ids to source names via the
//! federation's roster.

use crate::error::{MediatorError, Result};
use kind_dm::{axiom, Axiom, DomainMap, ExecMode, NodeId, Resolved, SemanticIndex, SourceId};
use kind_gcm::{ConceptualModel, PluginRegistry};
use std::sync::Arc;

/// The semantic state of the mediator: domain map, axioms, plug-ins,
/// semantic index, applied CMs, and views. See the module docs.
#[derive(Debug)]
pub struct Knowledge {
    /// The domain map, behind an `Arc` so query snapshots can capture it
    /// for the read-only evaluate phase without copying the graph.
    /// Mutations (DM contributions at registration time) go through
    /// `Arc::make_mut`, which copies only if a snapshot still holds the
    /// old map — snapshot isolation for the DM, like the model.
    pub(crate) dm: Arc<DomainMap>,
    /// The resolved (flattened) view, shared with query snapshots: its
    /// closure memo tables are `RwLock`-backed, so concurrent readers
    /// warm them cooperatively.
    pub(crate) resolved: Arc<Resolved>,
    /// The DL axioms behind the map (when known), for logic-level
    /// subsumption reasoning.
    pub(crate) axioms: Vec<Axiom>,
    pub(crate) mode: ExecMode,
    pub(crate) registry: PluginRegistry,
    /// The semantic index, behind an `Arc` like the map and its resolved
    /// view: query snapshots capture it by reference, and anchor-time
    /// mutations go through `Arc::make_mut` (copy only if a snapshot
    /// still holds the old index).
    pub(crate) index: Arc<SemanticIndex>,
    pub(crate) cms: Vec<ConceptualModel>,
    pub(crate) views: Vec<String>,
}

impl Knowledge {
    /// Wraps a domain map (edges executed in `mode`), with the built-in
    /// CM plug-ins registered.
    pub fn new(dm: DomainMap, mode: ExecMode) -> Self {
        let resolved = Arc::new(Resolved::new(&dm));
        Knowledge {
            dm: Arc::new(dm),
            resolved,
            axioms: Vec::new(),
            mode,
            registry: PluginRegistry::with_builtins(),
            index: Arc::new(SemanticIndex::new()),
            cms: Vec::new(),
            views: Vec::new(),
        }
    }

    /// The domain map.
    pub fn dm(&self) -> &DomainMap {
        self.dm.as_ref()
    }

    /// The domain map as a shareable handle (for snapshots).
    pub fn dm_arc(&self) -> Arc<DomainMap> {
        Arc::clone(&self.dm)
    }

    /// The resolved (flattened) domain-map view.
    pub fn resolved(&self) -> &Resolved {
        &self.resolved
    }

    /// The resolved view as a shareable handle (for snapshots).
    pub fn resolved_arc(&self) -> Arc<Resolved> {
        Arc::clone(&self.resolved)
    }

    /// The read-only slice of this layer the **evaluate phase** consumes.
    pub fn domain_view(&self) -> DomainView<'_> {
        DomainView::new(self.dm.as_ref(), &self.resolved)
    }

    /// The retained DL axioms (empty when the map was built directly).
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// The edge-execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The semantic index.
    pub fn index(&self) -> &SemanticIndex {
        &self.index
    }

    /// The semantic index as a shareable handle (for snapshots).
    pub fn index_arc(&self) -> Arc<SemanticIndex> {
        Arc::clone(&self.index)
    }

    /// Mutable access for anchor-time updates (copy-on-write: clones the
    /// index only if a snapshot still shares it).
    pub(crate) fn index_mut(&mut self) -> &mut SemanticIndex {
        Arc::make_mut(&mut self.index)
    }

    /// The plug-in registry (e.g. to register a new formalism).
    pub fn registry_mut(&mut self) -> &mut PluginRegistry {
        &mut self.registry
    }

    /// Applied conceptual models, in registration order.
    pub fn cms(&self) -> &[ConceptualModel] {
        &self.cms
    }

    /// Integrated view texts, in definition order.
    pub fn views(&self) -> &[String] {
        &self.views
    }

    /// Merges a source's DM contribution (Figure 3): loads the axiom
    /// text into the map, retains the axioms, and refreshes the resolved
    /// view. No-ops on blank text; returns whether the map changed.
    pub(crate) fn merge_contribution(&mut self, contribution: &str) -> Result<bool> {
        if contribution.trim().is_empty() {
            return Ok(false);
        }
        let new_axioms = axiom::load_axioms(Arc::make_mut(&mut self.dm), contribution)?;
        self.axioms.extend(new_axioms);
        // Keep the *old* resolved view when the contribution did not
        // actually change the resolved graph (e.g. axioms restating known
        // edges): its closure memo tables stay warm, and snapshots that
        // share it keep pointer equality across the republish.
        let fresh = Resolved::new(&self.dm);
        if !fresh.same_structure(&self.resolved) {
            self.resolved = Arc::new(fresh);
        }
        Ok(true)
    }

    /// Resolves a concept name, as a typed error on failure.
    pub(crate) fn lookup(&self, concept: &str) -> Result<NodeId> {
        self.dm
            .lookup(concept)
            .ok_or_else(|| MediatorError::UnknownConcept {
                name: concept.to_string(),
            })
    }

    /// [`Self::lookup`] over a slice.
    pub(crate) fn lookup_all(&self, concepts: &[&str]) -> Result<Vec<NodeId>> {
        concepts.iter().map(|c| self.lookup(c)).collect()
    }

    /// **Source selection** via the semantic index (§5 step 2): ids of
    /// sources with data anchored at (or below) *all* the given concepts.
    pub fn select_sources(&self, concepts: &[&str]) -> Result<Vec<SourceId>> {
        let nodes = self.lookup_all(concepts)?;
        Ok(self
            .index
            .sources_for_all(&self.resolved, &nodes)
            .into_iter()
            .collect())
    }

    /// Ids of sources with data anchored anywhere in the **anatomical
    /// region** under `root` — the downward closure along `role` (which
    /// includes isa-subconcepts).
    pub fn sources_in_region(&self, role: &str, root: &str) -> Result<Vec<SourceId>> {
        let node = self.lookup(root)?;
        let region = self.resolved.downward_closure(role, node);
        let mut ids: Vec<SourceId> = region
            .into_iter()
            .flat_map(|c| self.index.sources_at(c))
            .collect();
        ids.sort();
        ids.dedup();
        Ok(ids)
    }

    /// Ids of sources relevant to one concept's cone.
    pub fn sources_below(&self, concept: &str) -> Result<Vec<SourceId>> {
        let node = self.lookup(concept)?;
        Ok(self
            .index
            .sources_below(&self.resolved, node)
            .into_iter()
            .collect())
    }

    /// **Logic-level source selection**: of the given source ids, those
    /// whose anchored concepts are subsumed by the DL concept
    /// *expression* (structural subsumption over the retained axioms;
    /// sound, incomplete — see `kind_dm::subsume`).
    pub fn sources_subsumed_by(
        &self,
        expr_text: &str,
        candidates: &[SourceId],
    ) -> Result<Vec<SourceId>> {
        let expr = kind_dm::parse_concept_expr(expr_text)?;
        let reasoner = kind_dm::subsume::Subsumption::new(&self.axioms);
        Ok(candidates
            .iter()
            .copied()
            .filter(|&id| {
                self.index.concepts_of(id).iter().any(|&c| {
                    self.dm.name(c).is_some_and(|name| {
                        reasoner.subsumes(&expr, &kind_dm::ConceptExpr::Atomic(name.to_string()))
                    })
                })
            })
            .collect())
    }

    /// The least upper bound of the named concepts in the isa lattice.
    pub fn lub(&self, concepts: &[&str]) -> Result<Option<String>> {
        let nodes = self.lookup_all(concepts)?;
        Ok(self
            .resolved
            .lub(&nodes)
            .and_then(|n| self.dm.name(n).map(str::to_owned)))
    }

    /// The least upper bound in the **partonomy order** along `role` —
    /// the "region of correspondence" of §5 step 4: the smallest concept
    /// whose downward closure contains all the given locations.
    pub fn partonomy_lub(&self, role: &str, concepts: &[&str]) -> Result<Option<String>> {
        self.domain_view().partonomy_lub(role, concepts)
    }
}

/// The read-only slice of domain knowledge the **evaluate phase** of the
/// two-phase pipeline consumes: name ↔ node resolution over the domain
/// map plus the resolved closure view (lub, downward closure, recursive
/// roll-up). It deliberately has no access to wrappers, policies, or the
/// semantic index — an evaluate-phase function taking a `DomainView`
/// *cannot* contact a source.
///
/// Constructible from the live [`Knowledge`] layer
/// ([`Knowledge::domain_view`]) or from a frozen
/// [`crate::QuerySnapshot`], so a warm plan evaluates identically against
/// either.
#[derive(Clone, Copy, Debug)]
pub struct DomainView<'a> {
    dm: &'a DomainMap,
    resolved: &'a Resolved,
}

impl<'a> DomainView<'a> {
    /// Builds a view over a map and its resolved closures.
    pub fn new(dm: &'a DomainMap, resolved: &'a Resolved) -> Self {
        DomainView { dm, resolved }
    }

    /// The domain map.
    pub fn dm(&self) -> &'a DomainMap {
        self.dm
    }

    /// The resolved closure view.
    pub fn resolved(&self) -> &'a Resolved {
        self.resolved
    }

    /// Resolves a concept name, as a typed error on failure.
    pub fn lookup(&self, concept: &str) -> Result<NodeId> {
        self.dm
            .lookup(concept)
            .ok_or_else(|| MediatorError::UnknownConcept {
                name: concept.to_string(),
            })
    }

    /// The least upper bound in the **partonomy order** along `role`
    /// (§5 step 4's "region of correspondence").
    pub fn partonomy_lub(&self, role: &str, concepts: &[&str]) -> Result<Option<String>> {
        let nodes: Vec<NodeId> = concepts
            .iter()
            .map(|c| self.lookup(c))
            .collect::<Result<_>>()?;
        Ok(self
            .resolved
            .partonomy_lub(role, &nodes)
            .and_then(|n| self.dm.name(n).map(str::to_owned)))
    }
}
