//! The model-based mediator (Figure 2).
//!
//! The mediator owns a domain map (its "semantic coordinate system"), a
//! CM plug-in registry, a GCM engine, and a semantic index. Sources join
//! at runtime by [`Mediator::register`]-ing: their CM export is translated
//! through the plug-in for their formalism, applied to the GCM base, their
//! data anchored into the domain map, and any contributed DL axioms merged
//! into the map (Figure 3). Integrated views are FL rule texts evaluated
//! over everything together.

use crate::error::{MediatorError, Result};
use crate::fault::{
    AnswerReport, BreakerState, CircuitBreaker, Clock, QuarantinedRow, SourceError, SourceOutcome,
    SourcePolicy, VirtualClock,
};
use crate::wrapper::{Anchor, Capability, ObjectRow, SourceQuery, Wrapper};
use kind_datalog::{EvalOptions, Model, Term};
use kind_dm::{axiom, rules, DomainMap, ExecMode, Resolved, SemanticIndex, SourceId, DM_OPS_RULES};
use kind_gcm::{ConceptualModel, GcmBase, GcmDecl, PluginRegistry};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Answer rows plus the names of the sources contacted to produce them.
pub(crate) type RowsAndSources = (Vec<Vec<Term>>, Vec<String>);

/// Bookkeeping for one registered source.
pub struct RegisteredSource {
    /// The mediator-assigned id.
    pub id: SourceId,
    /// The source name.
    pub name: String,
    /// Declared capabilities.
    pub caps: Vec<Capability>,
    /// The wrapper.
    pub wrapper: Rc<dyn Wrapper>,
    /// Classes this source exports rows for (from capabilities).
    pub classes: Vec<String>,
    /// Attributes declared per class in the translated CM (`method`
    /// schema decls). An empty/absent set means the CM is schema-less
    /// for that class and attribute names are not checked.
    pub declared_attrs: HashMap<String, BTreeSet<String>>,
    /// Anchor attributes every row of a class must carry (its `ByAttr`
    /// anchors).
    pub anchor_attrs: HashMap<String, Vec<String>>,
}

impl RegisteredSource {
    /// Validates a shipped row against this source's exported CM:
    /// the class must be exported, the object id non-empty, every
    /// `ByAttr` anchor attribute present, and (when the CM declares a
    /// schema for the class) every attribute declared.
    pub fn validate_row(&self, class: &str, row: &ObjectRow) -> std::result::Result<(), String> {
        if !self.classes.iter().any(|c| c == class) {
            return Err(format!(
                "class `{class}` is not exported by `{}`",
                self.name
            ));
        }
        if row.id.trim().is_empty() {
            return Err("empty object id".into());
        }
        if let Some(anchor_attrs) = self.anchor_attrs.get(class) {
            for attr in anchor_attrs {
                if row.get(attr).is_none() {
                    return Err(format!("missing anchor attribute `{attr}`"));
                }
            }
        }
        if let Some(declared) = self.declared_attrs.get(class) {
            if !declared.is_empty() {
                for (attr, _) in &row.attrs {
                    if !declared.contains(attr) {
                        return Err(format!(
                            "attribute `{attr}` is not declared in the exported CM"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for RegisteredSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredSource")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("classes", &self.classes)
            .finish()
    }
}

/// Cumulative query-processing statistics (for the benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediatorStats {
    /// Wrapper queries issued (every physical attempt counts).
    pub source_queries: usize,
    /// Rows shipped from wrappers to the mediator.
    pub rows_shipped: usize,
    /// Rows surviving mediator-side residual filters.
    pub rows_kept: usize,
    /// Retry attempts beyond the first, across all fetches.
    pub retries: usize,
    /// Fetches that ultimately failed or were skipped by a breaker.
    pub failures: usize,
}

/// The model-based mediator.
pub struct Mediator {
    dm: DomainMap,
    resolved: Resolved,
    /// The DL axioms behind the map (when known), for logic-level
    /// subsumption reasoning.
    axioms: Vec<kind_dm::Axiom>,
    mode: ExecMode,
    registry: PluginRegistry,
    index: SemanticIndex,
    sources: Vec<RegisteredSource>,
    cms: Vec<ConceptualModel>,
    views: Vec<String>,
    base: GcmBase,
    model: Option<Model>,
    /// Fingerprint of the program the cached [`Self::model`] was computed
    /// from (see [`Self::base_fingerprint`]).
    model_fp: Option<u64>,
    dirty: bool,
    eval_options: EvalOptions,
    clock: Rc<dyn Clock>,
    default_policy: SourcePolicy,
    policies: HashMap<String, SourcePolicy>,
    breakers: HashMap<String, CircuitBreaker>,
    report: AnswerReport,
    /// Query-processing statistics.
    pub stats: MediatorStats,
}

/// The outcome of one guarded (retry/breaker-aware) wrapper query.
enum GuardedFetch {
    /// Rows arrived, possibly after retries.
    Rows {
        /// The shipped rows.
        rows: Vec<ObjectRow>,
        /// Physical attempts made (1 = no retry).
        attempts: u32,
    },
    /// The retry budget was exhausted (or the breaker opened mid-retry).
    Failed {
        /// Physical attempts made.
        attempts: u32,
        /// The final error.
        error: SourceError,
    },
    /// The breaker was open: the source was never contacted.
    Skipped,
}

impl Mediator {
    /// Creates a mediator around a domain map, with edges executed in
    /// `mode` and the built-in CM plug-ins registered.
    pub fn new(dm: DomainMap, mode: ExecMode) -> Self {
        let resolved = Resolved::new(&dm);
        let mut m = Mediator {
            dm,
            resolved,
            axioms: Vec::new(),
            mode,
            registry: PluginRegistry::with_builtins(),
            index: SemanticIndex::new(),
            sources: Vec::new(),
            cms: Vec::new(),
            views: Vec::new(),
            base: GcmBase::new(),
            model: None,
            model_fp: None,
            dirty: true,
            eval_options: EvalOptions::default(),
            clock: Rc::new(VirtualClock::new()),
            default_policy: SourcePolicy::default(),
            policies: HashMap::new(),
            breakers: HashMap::new(),
            report: AnswerReport::default(),
            stats: MediatorStats::default(),
        };
        m.rebuild().expect("empty mediator builds");
        m
    }

    /// Creates a mediator from DL axiom text: the domain map is lowered
    /// from the axioms, which are also retained so
    /// [`Self::select_sources_by_expression`] can use the structural
    /// subsumption reasoner.
    pub fn from_axioms(axiom_text: &str, mode: ExecMode) -> Result<Self> {
        let mut dm = DomainMap::new();
        let axioms = axiom::load_axioms(&mut dm, axiom_text)?;
        let mut m = Self::new(dm, mode);
        m.axioms = axioms;
        Ok(m)
    }

    /// The retained DL axioms (empty when the map was built directly).
    pub fn axioms(&self) -> &[kind_dm::Axiom] {
        &self.axioms
    }

    /// The domain map.
    pub fn dm(&self) -> &DomainMap {
        &self.dm
    }

    /// The resolved (flattened) domain-map view.
    pub fn resolved(&self) -> &Resolved {
        &self.resolved
    }

    /// The semantic index.
    pub fn index(&self) -> &SemanticIndex {
        &self.index
    }

    /// The plug-in registry (e.g. to register a new formalism).
    pub fn registry_mut(&mut self) -> &mut PluginRegistry {
        &mut self.registry
    }

    /// Registered sources.
    pub fn sources(&self) -> &[RegisteredSource] {
        &self.sources
    }

    /// Overrides the evaluation options (depth limits etc.).
    pub fn set_eval_options(&mut self, opts: EvalOptions) {
        self.eval_options = opts;
        self.dirty = true;
    }

    /// The current evaluation options.
    pub fn eval_options(&self) -> &EvalOptions {
        &self.eval_options
    }

    /// The mediator's clock (share it with [`crate::FaultInjector`]s so
    /// injected delays are visible to timeout checks).
    pub fn clock(&self) -> Rc<dyn Clock> {
        Rc::clone(&self.clock)
    }

    /// Replaces the clock (e.g. with a pre-advanced [`VirtualClock`]).
    pub fn set_clock(&mut self, clock: Rc<dyn Clock>) {
        self.clock = clock;
    }

    /// Sets the policy used for sources without a per-source override.
    pub fn set_default_policy(&mut self, policy: SourcePolicy) {
        self.default_policy = policy;
    }

    /// Sets a per-source retry/timeout/breaker policy. Any existing
    /// breaker for the source is reset so the new configuration takes
    /// effect immediately.
    pub fn set_source_policy(&mut self, name: impl Into<String>, policy: SourcePolicy) {
        let name = name.into();
        self.breakers.remove(&name);
        self.policies.insert(name, policy);
    }

    /// The policy governing `name` (per-source override or default).
    pub fn policy_for(&self, name: &str) -> &SourcePolicy {
        self.policies.get(name).unwrap_or(&self.default_policy)
    }

    /// The breaker state for a source, once it has been fetched from at
    /// least once.
    pub fn breaker_state(&self, name: &str) -> Option<BreakerState> {
        self.breakers.get(name).map(|b| b.state())
    }

    /// Force-closes a source's breaker (operator override).
    pub fn reset_breaker(&mut self, name: &str) {
        self.breakers.remove(name);
    }

    /// The degradation report of the most recent degradable operation
    /// ([`Self::materialize_all`], [`Self::answer`], or a plan run).
    pub fn report(&self) -> &AnswerReport {
        &self.report
    }

    /// Starts a fresh report (each degradable operation calls this).
    pub(crate) fn begin_report(&mut self) {
        self.report = AnswerReport::default();
    }

    /// Runs one wrapper query under the source's policy: breaker check,
    /// per-attempt virtual-time budget, bounded retries with
    /// deterministic backoff. Every attempt updates `stats` and the
    /// breaker; the caller folds the outcome into the report.
    fn guarded_query(
        &mut self,
        name: &str,
        wrapper: &Rc<dyn Wrapper>,
        q: &SourceQuery,
    ) -> GuardedFetch {
        let policy = self.policy_for(name).clone();
        self.breakers
            .entry(name.to_string())
            .or_insert_with(|| CircuitBreaker::new(policy.breaker.clone()));
        let clock = Rc::clone(&self.clock);
        let mut attempts = 0u32;
        let mut last_error: Option<SourceError> = None;
        loop {
            let now = clock.now_ms();
            let allowed = self
                .breakers
                .get_mut(name)
                .expect("breaker inserted above")
                .allows(now);
            if !allowed {
                self.stats.failures += 1;
                return match last_error {
                    // The breaker opened between retry attempts: report
                    // the failure that opened it.
                    Some(error) => GuardedFetch::Failed { attempts, error },
                    None => GuardedFetch::Skipped,
                };
            }
            attempts += 1;
            self.stats.source_queries += 1;
            let started = clock.now_ms();
            let result = wrapper.query(q).and_then(|rows| {
                let elapsed = clock.now_ms().saturating_sub(started);
                if policy.timeout_ms > 0 && elapsed > policy.timeout_ms {
                    Err(SourceError::Timeout {
                        elapsed_ms: elapsed,
                        budget_ms: policy.timeout_ms,
                    })
                } else {
                    Ok(rows)
                }
            });
            match result {
                Ok(rows) => {
                    self.breakers
                        .get_mut(name)
                        .expect("breaker inserted above")
                        .record_success();
                    self.stats.rows_shipped += rows.len();
                    self.stats.retries += (attempts - 1) as usize;
                    return GuardedFetch::Rows { rows, attempts };
                }
                Err(error) => {
                    let now = clock.now_ms();
                    self.breakers
                        .get_mut(name)
                        .expect("breaker inserted above")
                        .record_failure(now);
                    if attempts >= policy.retry.max_attempts {
                        self.stats.retries += (attempts - 1) as usize;
                        self.stats.failures += 1;
                        return GuardedFetch::Failed { attempts, error };
                    }
                    last_error = Some(error);
                    clock.advance_ms(policy.retry.backoff_ms(attempts));
                }
            }
        }
    }

    /// Read access to the GCM base (the built engine).
    pub fn base(&self) -> &GcmBase {
        &self.base
    }

    /// Removes the most recently defined view (used for one-off queries);
    /// the base is rebuilt lazily on next use.
    pub(crate) fn pop_view(&mut self) {
        self.views.pop();
        self.dirty = true;
    }

    /// Looks up a registered source by name.
    pub fn source(&self, name: &str) -> Result<&RegisteredSource> {
        self.sources
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| MediatorError::UnknownSource {
                name: name.to_string(),
            })
    }

    /// Registers a wrapped source: translates its CM through the plug-in
    /// for its formalism, applies it, merges its DM contribution, and
    /// builds its semantic index. Returns the assigned source id.
    pub fn register(&mut self, wrapper: Rc<dyn Wrapper>) -> Result<SourceId> {
        let name = wrapper.name().to_string();
        if self.sources.iter().any(|s| s.name == name) {
            return Err(MediatorError::DuplicateSource { name });
        }
        let id = SourceId(self.sources.len() as u32);
        // (1) DM contribution — a source may refine the mediator's map
        // (Figure 3) *before* anchoring against it.
        let contribution = wrapper.dm_contribution();
        if !contribution.trim().is_empty() {
            let new_axioms = axiom::load_axioms(&mut self.dm, &contribution)?;
            self.axioms.extend(new_axioms);
            self.resolved = Resolved::new(&self.dm);
        }
        // (2) Conceptual model through the plug-in.
        let doc = wrapper.export_cm();
        let cm = self.registry.translate(wrapper.formalism(), &doc)?;
        // Remember the declared schema for row validation at fetch time.
        let mut declared_attrs: HashMap<String, BTreeSet<String>> = HashMap::new();
        for d in &cm.decls {
            if let GcmDecl::Method { class, method, .. } = d {
                declared_attrs
                    .entry(class.clone())
                    .or_default()
                    .insert(method.clone());
            }
        }
        self.cms.push(cm);
        // Registration contacts the source directly (no retry/breaker: a
        // source that cannot answer its own registration scan has no
        // business joining the federation).
        let strict = |r: std::result::Result<Vec<ObjectRow>, SourceError>| {
            r.map_err(|error| MediatorError::Source {
                name: name.clone(),
                error,
            })
        };
        // (3) Semantic index: anchor the source's data.
        let mut anchor_attrs: HashMap<String, Vec<String>> = HashMap::new();
        for anchor in wrapper.anchors() {
            match anchor {
                Anchor::Fixed { class, concept } => {
                    let node = self
                        .dm
                        .lookup(&concept)
                        .ok_or(MediatorError::UnknownConcept { name: concept })?;
                    let count = strict(wrapper.query(&SourceQuery::scan(&class)))?
                        .len()
                        .max(1);
                    self.index.anchor_many(id, node, count);
                }
                Anchor::ByAttr { class, attr } => {
                    anchor_attrs
                        .entry(class.clone())
                        .or_default()
                        .push(attr.clone());
                    let rows = strict(wrapper.query(&SourceQuery::scan(&class)))?;
                    let mut per_concept: HashMap<String, usize> = HashMap::new();
                    for row in &rows {
                        if let Some(c) = row.get_str(&attr) {
                            *per_concept.entry(c).or_insert(0) += 1;
                        }
                    }
                    for (concept, count) in per_concept {
                        let node = self
                            .dm
                            .lookup(&concept)
                            .ok_or(MediatorError::UnknownConcept { name: concept })?;
                        self.index.anchor_many(id, node, count);
                    }
                }
                Anchor::Derived { class, rule } => {
                    // Evaluate the derived-anchor rule in a scratch
                    // knowledge base over this class's rows only.
                    let mut scratch = kind_flogic::FLogic::new();
                    scratch.load(&rule)?;
                    let rows = strict(wrapper.query(&SourceQuery::scan(&class)))?;
                    for row in &rows {
                        let obj = scratch.engine_mut().constant(&row.id);
                        let cls = scratch.engine_mut().constant(&class);
                        let preds = *scratch.preds();
                        scratch
                            .engine_mut()
                            .add_fact(preds.inst, vec![obj.clone(), cls])?;
                        for (attr, value) in &row.attrs {
                            let a = scratch.engine_mut().constant(attr);
                            let v = match value {
                                kind_gcm::GcmValue::Int(i) => Term::Int(*i),
                                other => {
                                    let s = other.to_string();
                                    scratch.engine_mut().constant(&s)
                                }
                            };
                            scratch
                                .engine_mut()
                                .add_fact(preds.mi, vec![obj.clone(), a, v])?;
                        }
                    }
                    let model = scratch.run_with(&self.eval_options)?;
                    let mut per_concept: HashMap<String, usize> = HashMap::new();
                    for sol in scratch
                        .engine_mut()
                        .clone()
                        .query_model(&model, "anchor_at(X, C)")?
                    {
                        per_concept
                            .entry(scratch.engine().show(&sol[1]))
                            .and_modify(|c| *c += 1)
                            .or_insert(1);
                    }
                    for (concept, count) in per_concept {
                        let node = self
                            .dm
                            .lookup(&concept)
                            .ok_or(MediatorError::UnknownConcept { name: concept })?;
                        self.index.anchor_many(id, node, count);
                    }
                }
            }
        }
        let caps = wrapper.capabilities();
        let classes = caps.iter().map(|c| c.class.clone()).collect();
        self.sources.push(RegisteredSource {
            id,
            name: name.clone(),
            caps,
            wrapper,
            classes,
            declared_attrs,
            anchor_attrs,
        });
        // Fast path: when the registration did not touch the domain map
        // and the base is current, apply the new CM and anchor facts
        // incrementally instead of rebuilding everything (anchoring
        // "without changing the latter", §4).
        if contribution.trim().is_empty() && !self.dirty {
            let cm = self.cms.last().expect("just pushed").clone();
            self.base.apply(&cm)?;
            for concept in self.index.concepts_of(id) {
                if let Some(cname) = self.dm.name(concept) {
                    let text = format!("anchored({:?}, {:?}).", name, cname);
                    self.base.flogic_mut().load(&text)?;
                }
            }
            self.model = None;
        } else {
            self.dirty = true;
        }
        Ok(id)
    }

    /// Defines an integrated view (an IVD): FL rule text over source
    /// classes and the domain map (Example 4).
    pub fn define_view(&mut self, fl_text: &str) -> Result<()> {
        self.views.push(fl_text.to_string());
        self.dirty = true;
        Ok(())
    }

    /// Rebuilds the GCM base from scratch: DM rules, every applied CM,
    /// anchor facts, views. Called lazily by [`Self::run`] after any
    /// change (DM refinements cannot be retracted incrementally).
    pub fn rebuild(&mut self) -> Result<()> {
        let mut base = GcmBase::new();
        base.flogic_mut().load_datalog(DM_OPS_RULES)?;
        let prog = rules::compile(&self.dm, self.mode);
        base.flogic_mut().load(&prog.text)?;
        for cm in &self.cms {
            base.apply(cm)?;
        }
        // Anchor facts: anchored(source, concept) for source selection at
        // the logic level too.
        for src in &self.sources {
            for concept in self.index.concepts_of(src.id) {
                if let Some(cname) = self.dm.name(concept) {
                    let text = format!("anchored({:?}, {:?}).", src.name, cname);
                    base.flogic_mut().load(&text)?;
                }
            }
        }
        for v in &self.views {
            base.flogic_mut().load(v)?;
        }
        self.base = base;
        self.model = None;
        self.dirty = false;
        Ok(())
    }

    /// Bulk-loads every row of every registered source into the GCM base
    /// as `inst`/`mi` facts (plus `relinst` for anchor attributes) — the
    /// *materialize-everything* strategy, used for loose federation and as
    /// the baseline the §5 push-down plan is compared against.
    ///
    /// Degrades gracefully: a failing (or breaker-skipped) source simply
    /// contributes no rows, and CM-invalid rows are quarantined rather
    /// than loaded. Inspect [`Self::report`] afterwards for per-source
    /// outcomes and the completeness flag.
    pub fn materialize_all(&mut self) -> Result<usize> {
        self.begin_report();
        if self.dirty {
            self.rebuild()?;
        }
        let mut loaded = 0usize;
        let plan: Vec<(String, Vec<String>)> = self
            .sources
            .iter()
            .map(|s| (s.name.clone(), s.classes.clone()))
            .collect();
        for (name, classes) in plan {
            for class in classes {
                let rows = self.fetch_degraded(&name, &SourceQuery::scan(&class))?;
                for row in rows {
                    self.apply_row(&name, &class, &row)?;
                    loaded += 1;
                }
            }
        }
        self.model = None;
        Ok(loaded)
    }

    /// Loads one row into the base as GCM declarations, after validating
    /// it against the source's exported CM (unknown source, unexported
    /// class, and malformed rows are typed errors — not silently
    /// accepted).
    pub fn load_row(&mut self, source: &str, class: &str, row: &ObjectRow) -> Result<()> {
        let src = self.source(source)?;
        if !src.classes.iter().any(|c| c == class) {
            return Err(MediatorError::UnknownClass {
                class: class.to_string(),
            });
        }
        if let Err(reason) = src.validate_row(class, row) {
            return Err(MediatorError::Source {
                name: source.to_string(),
                error: SourceError::MalformedRow {
                    row: row.id.clone(),
                    reason,
                },
            });
        }
        self.apply_row(source, class, row)
    }

    /// The unchecked load path, for rows already validated by
    /// [`Self::fetch`].
    pub(crate) fn apply_row(&mut self, source: &str, class: &str, row: &ObjectRow) -> Result<()> {
        apply_row_to(&mut self.base, source, class, row)?;
        self.model = None;
        Ok(())
    }

    /// A fingerprint of everything the base *program* is built from — the
    /// domain map, execution mode, applied CMs, views, and evaluation
    /// options. The cached model is keyed by it: [`Self::run`] discards a
    /// cached model whose fingerprint no longer matches, even if no dirty
    /// flag was raised (belt-and-braces for the cross-query base cache).
    /// Instance facts are deliberately excluded: every fact-loading path
    /// clears [`Self::model`] directly.
    fn base_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}", self.dm).hash(&mut h);
        format!("{:?}", self.mode).hash(&mut h);
        format!("{:?}", self.eval_options).hash(&mut h);
        for cm in &self.cms {
            format!("{cm:?}").hash(&mut h);
        }
        self.views.hash(&mut h);
        h.finish()
    }

    /// Evaluates the base (rebuilding first if needed) and caches the
    /// model across queries; the cache key is [`Self::base_fingerprint`].
    pub fn run(&mut self) -> Result<&Model> {
        let fp = self.base_fingerprint();
        if self.model.is_some() && self.model_fp != Some(fp) {
            self.model = None;
        }
        if self.dirty {
            self.rebuild()?;
        }
        if self.model.is_none() {
            let m = self.base.run_with(&self.eval_options)?;
            self.model = Some(m);
            self.model_fp = Some(fp);
        }
        Ok(self.model.as_ref().expect("just set"))
    }

    /// Runs an FL query pattern (e.g. `"X : Neuron"` or
    /// `"protein_distribution(P, C, A)"`) against the evaluated model.
    pub fn query_fl(&mut self, pattern: &str) -> Result<Vec<Vec<Term>>> {
        self.run()?;
        let model = self.model.take().expect("model cached");
        let out = self
            .base
            .flogic_mut()
            .query(&model, pattern)
            .map_err(MediatorError::from);
        self.model = Some(model);
        out
    }

    /// Explains why an FL fact holds in the current model (e.g.
    /// `"SENSELAB.nt0 : neurotransmission"` or a derived view atom) as a
    /// rendered derivation tree. `None` when the fact does not hold.
    pub fn explain_fl(&mut self, fact: &str) -> Result<Option<String>> {
        self.run()?;
        let model = self.model.take().expect("model cached");
        let out = self
            .base
            .flogic_mut()
            .explain(&model, fact, 16)
            .map_err(MediatorError::from);
        self.model = Some(model);
        out
    }

    /// Renders a term from a query result.
    pub fn show(&self, t: &Term) -> String {
        self.base.flogic().engine().show(t)
    }

    /// The inconsistency witnesses of the current model.
    pub fn witnesses(&mut self) -> Result<Vec<String>> {
        self.run()?;
        Ok(self
            .base
            .witnesses(self.model.as_ref().expect("model cached")))
    }

    /// Capability-aware, fault-tolerant fetch: pushes the pushable
    /// selections to the wrapper (with retries, timeout budget, and
    /// circuit breaker per the source's [`SourcePolicy`]), quarantines
    /// rows that violate the source's exported CM, and applies the
    /// remaining selections as a residual filter mediator-side.
    ///
    /// A source that exhausts its retry budget — or whose breaker is
    /// open — is a typed [`MediatorError::Source`] error; the outcome is
    /// also folded into the current [`Self::report`].
    pub fn fetch(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        let src = self.source(source_name)?;
        if !src.classes.iter().any(|c| c == &q.class) {
            return Err(MediatorError::UnknownClass {
                class: q.class.clone(),
            });
        }
        let wrapper = Rc::clone(&src.wrapper);
        match self.guarded_query(source_name, &wrapper, q) {
            GuardedFetch::Rows { rows, attempts } => {
                // CM validation: quarantine, don't abort.
                let mut kept = Vec::with_capacity(rows.len());
                let mut quarantined = Vec::new();
                {
                    let src = self.source(source_name)?;
                    for row in rows {
                        match src.validate_row(&q.class, &row) {
                            Ok(()) => kept.push(row),
                            Err(reason) => quarantined.push(QuarantinedRow {
                                source: source_name.to_string(),
                                class: q.class.clone(),
                                row_id: row.id.clone(),
                                reason,
                            }),
                        }
                    }
                }
                for qr in quarantined {
                    self.report.record_quarantine(qr);
                }
                let kept: Vec<ObjectRow> = kept
                    .into_iter()
                    .filter(|r| {
                        q.selections
                            .iter()
                            .all(|s| r.get(&s.attr) == Some(&s.value))
                    })
                    .collect();
                self.stats.rows_kept += kept.len();
                let outcome = if attempts > 1 {
                    SourceOutcome::Retried {
                        retries: attempts - 1,
                    }
                } else {
                    SourceOutcome::Ok
                };
                self.report
                    .record_fetch(source_name, attempts as usize, kept.len(), outcome);
                Ok(kept)
            }
            GuardedFetch::Failed { attempts, error } => {
                self.report.record_fetch(
                    source_name,
                    attempts as usize,
                    0,
                    SourceOutcome::Failed {
                        error: error.clone(),
                    },
                );
                Err(MediatorError::Source {
                    name: source_name.to_string(),
                    error,
                })
            }
            GuardedFetch::Skipped => {
                self.report
                    .record_fetch(source_name, 0, 0, SourceOutcome::SkippedByBreaker);
                Err(MediatorError::Source {
                    name: source_name.to_string(),
                    error: SourceError::Unavailable {
                        reason: "circuit breaker open; source not contacted".into(),
                    },
                })
            }
        }
    }

    /// Like [`Self::fetch`], but a source-level failure degrades to an
    /// empty row set instead of an error (the failure stays visible in
    /// [`Self::report`]). Mediator-level errors (unknown source/class)
    /// still propagate.
    pub fn fetch_degraded(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        match self.fetch(source_name, q) {
            Ok(rows) => Ok(rows),
            Err(MediatorError::Source { .. }) => Ok(Vec::new()),
            Err(other) => Err(other),
        }
    }

    /// **Source selection** via the semantic index (§5 step 2): the names
    /// of sources with data anchored at (or below) *all* the given
    /// concepts.
    pub fn select_sources(&self, concepts: &[&str]) -> Result<Vec<String>> {
        let mut nodes = Vec::with_capacity(concepts.len());
        for c in concepts {
            nodes.push(
                self.dm
                    .lookup(c)
                    .ok_or_else(|| MediatorError::UnknownConcept {
                        name: (*c).to_string(),
                    })?,
            );
        }
        let ids = self.index.sources_for_all(&self.resolved, &nodes);
        Ok(self
            .sources
            .iter()
            .filter(|s| ids.contains(&s.id))
            .map(|s| s.name.clone())
            .collect())
    }

    /// Sources with data anchored anywhere in the **anatomical region**
    /// under `root` — the downward closure along `role` (which includes
    /// isa-subconcepts). This is how "sources relevant to the cerebellum"
    /// finds a lab anchored at `Purkinje_Cell` (a *part*, not a
    /// subconcept, of the cerebellum).
    pub fn sources_in_region(&self, role: &str, root: &str) -> Result<Vec<String>> {
        let node = self
            .dm
            .lookup(root)
            .ok_or_else(|| MediatorError::UnknownConcept {
                name: root.to_string(),
            })?;
        let region = self.resolved.downward_closure(role, node);
        let mut ids: Vec<kind_dm::SourceId> = region
            .into_iter()
            .flat_map(|c| self.index.sources_at(c))
            .collect();
        ids.sort();
        ids.dedup();
        Ok(self
            .sources
            .iter()
            .filter(|s| ids.contains(&s.id))
            .map(|s| s.name.clone())
            .collect())
    }

    /// **Logic-level source selection**: the sources whose anchored
    /// concepts are subsumed by a DL concept *expression* — e.g.
    /// `"Neuron and exists has.Spine"` finds sources anchored at
    /// `Purkinje_Cell` even if no single named concept covers the query.
    /// Uses the structural subsumption reasoner on the retained axioms
    /// (sound, incomplete; see `kind_dm::subsume`).
    pub fn select_sources_by_expression(&self, expr_text: &str) -> Result<Vec<String>> {
        let expr = kind_dm::parse_concept_expr(expr_text)?;
        let reasoner = kind_dm::subsume::Subsumption::new(&self.axioms);
        let mut out = Vec::new();
        for src in &self.sources {
            let anchored = self.index.concepts_of(src.id);
            let relevant = anchored.iter().any(|&c| {
                self.dm.name(c).is_some_and(|name| {
                    reasoner.subsumes(&expr, &kind_dm::ConceptExpr::Atomic(name.to_string()))
                })
            });
            if relevant {
                out.push(src.name.clone());
            }
        }
        Ok(out)
    }

    /// Sources relevant to any one concept's cone.
    pub fn sources_below(&self, concept: &str) -> Result<Vec<String>> {
        let node = self
            .dm
            .lookup(concept)
            .ok_or_else(|| MediatorError::UnknownConcept {
                name: concept.to_string(),
            })?;
        let ids = self.index.sources_below(&self.resolved, node);
        Ok(self
            .sources
            .iter()
            .filter(|s| ids.contains(&s.id))
            .map(|s| s.name.clone())
            .collect())
    }

    /// The least upper bound of the named concepts in the isa lattice.
    pub fn lub(&self, concepts: &[&str]) -> Result<Option<String>> {
        let nodes = self.lookup_all(concepts)?;
        Ok(self
            .resolved
            .lub(&nodes)
            .and_then(|n| self.dm.name(n).map(str::to_owned)))
    }

    /// The least upper bound in the **partonomy order** along `role` —
    /// the "region of correspondence" of §5 step 4: the smallest concept
    /// whose downward closure contains all the given locations.
    pub fn partonomy_lub(&self, role: &str, concepts: &[&str]) -> Result<Option<String>> {
        let nodes = self.lookup_all(concepts)?;
        Ok(self
            .resolved
            .partonomy_lub(role, &nodes)
            .and_then(|n| self.dm.name(n).map(str::to_owned)))
    }

    fn lookup_all(&self, concepts: &[&str]) -> Result<Vec<kind_dm::NodeId>> {
        let mut nodes = Vec::with_capacity(concepts.len());
        for c in concepts {
            nodes.push(
                self.dm
                    .lookup(c)
                    .ok_or_else(|| MediatorError::UnknownConcept {
                        name: (*c).to_string(),
                    })?,
            );
        }
        Ok(nodes)
    }

    /// Calls a declared query template on a source (§2's "query
    /// templates" capability form): expands the template with the given
    /// arguments and fetches through the capability-aware path.
    pub fn call_template(
        &mut self,
        source_name: &str,
        template: &str,
        args: &[kind_gcm::GcmValue],
    ) -> Result<Vec<ObjectRow>> {
        let src = self.source(source_name)?;
        let t = src
            .wrapper
            .templates()
            .into_iter()
            .find(|t| t.name == template)
            .ok_or_else(|| MediatorError::UnknownClass {
                class: format!("{source_name}::{template}"),
            })?;
        let q = t.expand(args).ok_or_else(|| MediatorError::UnknownClass {
            class: format!(
                "{source_name}::{template}/{} called with {} args",
                t.params.len(),
                args.len()
            ),
        })?;
        self.fetch(source_name, &q)
    }

    /// The sources that export `class` (by declared capability).
    pub fn sources_exporting(&self, class: &str) -> Vec<String> {
        self.sources
            .iter()
            .filter(|s| s.classes.iter().any(|c| c == class))
            .map(|s| s.name.clone())
            .collect()
    }

    /// The warm [`Mediator::answer`] path (see `query.rs`): evaluates a
    /// one-off view on a scratch clone of the base, seeded with the
    /// cached base-layer model so only query-relevant strata are
    /// recomputed (`run_for_seeded`). Returns `None` when seeding would
    /// be unsound — the head predicate already has facts in the base
    /// model — so the caller falls back to the cold path.
    pub(crate) fn answer_via_base_cache(
        &mut self,
        rule_text: &str,
        head_pred: &str,
        head_args: &[Term],
        exported: &[String],
    ) -> Result<Option<RowsAndSources>> {
        self.run()?;
        let collides = self
            .base
            .flogic()
            .engine()
            .lookup(head_pred)
            .is_some_and(|p| {
                self.model
                    .as_ref()
                    .is_some_and(|m| m.facts.relation(p).is_some_and(|r| !r.is_empty()))
            });
        if collides {
            return Ok(None);
        }
        let base_model = self.model.take().expect("run() caches the model");
        let out = self.answer_on_clone(rule_text, head_pred, head_args, exported, &base_model);
        // The base itself was not touched: the cached model stays valid.
        self.model = Some(base_model);
        out.map(Some)
    }

    fn answer_on_clone(
        &mut self,
        rule_text: &str,
        head_pred: &str,
        head_args: &[Term],
        exported: &[String],
        base_model: &Model,
    ) -> Result<RowsAndSources> {
        let mut work = self.base.clone();
        work.flogic_mut().load(rule_text)?;
        let mut contacted: BTreeSet<String> = BTreeSet::new();
        for class in exported {
            for src in self.sources_exporting(class) {
                contacted.insert(src.clone());
                let rows = self.fetch_degraded(&src, &SourceQuery::scan(class))?;
                for row in rows {
                    apply_row_to(&mut work, &src, class, &row)?;
                }
            }
        }
        let model = work
            .flogic()
            .run_for_seeded(&[head_pred], base_model, &self.eval_options)?;
        let pattern = kind_datalog::Atom::new(
            work.flogic()
                .engine()
                .lookup(head_pred)
                .expect("head predicate interned by view load"),
            head_args.to_vec(),
        );
        let rows = model.query(&pattern);
        // Answer terms may reference symbols interned only in the scratch
        // clone (object ids fetched this query); re-intern them into the
        // mediator's own engine so `show` resolves them.
        let rows = rows
            .into_iter()
            .map(|r| {
                r.iter()
                    .map(|t| {
                        reintern(
                            work.flogic().engine(),
                            self.base.flogic_mut().engine_mut(),
                            t,
                        )
                    })
                    .collect()
            })
            .collect();
        Ok((rows, contacted.into_iter().collect()))
    }
}

/// Loads one row's GCM declarations into `base` — the shared load path
/// for the mediator's own base and for per-query scratch clones.
pub(crate) fn apply_row_to(
    base: &mut GcmBase,
    source: &str,
    class: &str,
    row: &ObjectRow,
) -> Result<()> {
    let obj = format!("{source}.{}", row.id);
    base.apply_decl(&GcmDecl::Instance {
        obj: obj.clone(),
        class: class.to_string(),
    })?;
    for (attr, value) in &row.attrs {
        base.apply_decl(&GcmDecl::MethodInst {
            obj: obj.clone(),
            method: attr.clone(),
            value: value.clone(),
        })?;
    }
    Ok(())
}

/// Recursively re-interns a ground term from one engine's symbol table
/// into another's.
fn reintern(from: &kind_datalog::Engine, to: &mut kind_datalog::Engine, t: &Term) -> Term {
    match t {
        Term::Const(s) => to.constant(from.name(*s)),
        Term::Func(f, args) => {
            let name = from.name(*f).to_string();
            let mapped: Vec<Term> = args.iter().map(|a| reintern(from, to, a)).collect();
            let sym = to.sym(&name);
            Term::func(sym, mapped)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::MemoryWrapper;
    use kind_dm::figures;
    use kind_gcm::GcmValue;

    fn simple_wrapper(name: &str, class: &str, concept: &str, n: usize) -> Rc<MemoryWrapper> {
        let mut w = MemoryWrapper::new(name);
        w.caps.push(Capability {
            class: class.into(),
            pushable: vec!["location".into()],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: class.into(),
            concept: concept.into(),
        });
        for i in 0..n {
            w.add_row(
                class,
                &format!("o{i}"),
                vec![
                    ("location", GcmValue::Id(concept.into())),
                    ("value", GcmValue::Int(i as i64)),
                ],
            );
        }
        Rc::new(w)
    }

    #[test]
    fn registration_builds_semantic_index() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        let w = simple_wrapper("SYNAPSE", "spine_data", "Spine", 5);
        let id = m.register(w).unwrap();
        let spine = m.dm().lookup("Spine").unwrap();
        assert_eq!(m.index().count(id, spine), 5);
        // Source selection: Spine is an Ion_Regulating_Component.
        assert_eq!(
            m.sources_below("Ion_Regulating_Component").unwrap(),
            vec!["SYNAPSE".to_string()]
        );
        assert!(m.sources_below("Neuron").unwrap().is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("A", "c", "Spine", 1)).unwrap();
        assert!(matches!(
            m.register(simple_wrapper("A", "c", "Spine", 1)),
            Err(MediatorError::DuplicateSource { .. })
        ));
    }

    #[test]
    fn unknown_anchor_concept_rejected() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        assert!(matches!(
            m.register(simple_wrapper("A", "c", "NoSuchConcept", 1)),
            Err(MediatorError::UnknownConcept { .. })
        ));
    }

    #[test]
    fn dm_contribution_extends_the_map() {
        // Figure 3 flow: registering MyNeuron/MyDendrite refines the DM.
        let mut m = Mediator::new(figures::figure3_base(), ExecMode::Assertion);
        assert!(m.dm().lookup("MyNeuron").is_none());
        let mut w = MemoryWrapper::new("MYLAB");
        w.dm_axioms = figures::FIGURE3_REGISTRATION_AXIOMS.to_string();
        w.caps.push(Capability {
            class: "my_neurons".into(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: "my_neurons".into(),
            concept: "MyNeuron".into(),
        });
        w.add_row("my_neurons", "m1", vec![]);
        m.register(Rc::new(w)).unwrap();
        assert!(m.dm().lookup("MyNeuron").is_some());
        // Derived knowledge: MyNeuron projects to GPE, so the source is
        // found below Medium_Spiny_Neuron.
        assert_eq!(
            m.sources_below("Medium_Spiny_Neuron").unwrap(),
            vec!["MYLAB".to_string()]
        );
    }

    #[test]
    fn materialize_and_query_loose_federation() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 3))
            .unwrap();
        m.materialize_all().unwrap();
        let rows = m.query_fl("X : spines").unwrap();
        assert_eq!(rows.len(), 3);
        // Rows carry source-qualified object names.
        let shown = m.show(&rows[0][0]);
        assert!(shown.starts_with("S1."), "{shown}");
    }

    #[test]
    fn views_evaluate_over_sources_and_dm() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 2))
            .unwrap();
        m.define_view("big(X) :- X : spines, X[value -> V], V >= 1.")
            .unwrap();
        m.materialize_all().unwrap();
        assert_eq!(m.query_fl("big(X)").unwrap().len(), 1);
    }

    #[test]
    fn fetch_applies_residual_filters() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 4))
            .unwrap();
        // `value` is not pushable: wrapper ships all 4, mediator keeps 1.
        let rows = m
            .fetch(
                "S1",
                &SourceQuery::scan("spines").with("value", GcmValue::Int(2)),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(m.stats.rows_shipped, 4);
        assert_eq!(m.stats.rows_kept, 1);
        // `location` is pushable: wrapper ships only matches.
        let rows = m
            .fetch(
                "S1",
                &SourceQuery::scan("spines").with("location", GcmValue::Id("Spine".into())),
            )
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(m.stats.rows_shipped, 8);
    }

    #[test]
    fn lub_through_mediator() {
        let m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        assert_eq!(
            m.lub(&["Purkinje_Cell", "Pyramidal_Cell"]).unwrap(),
            Some("Spiny_Neuron".to_string())
        );
    }

    #[test]
    fn incremental_registration_equals_rebuild() {
        // Register two sources; the second goes through the incremental
        // path. Force a rebuild on a copy and compare observable state.
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("A", "ca", "Spine", 2)).unwrap();
        m.run().unwrap(); // base now current
        m.register(simple_wrapper("B", "cb", "Shaft", 3)).unwrap();
        let inc_rows = m.query_fl(r#"anchored(S, C)"#).unwrap().len();
        m.rebuild().unwrap();
        let rebuilt_rows = m.query_fl(r#"anchored(S, C)"#).unwrap().len();
        assert_eq!(inc_rows, rebuilt_rows);
        assert_eq!(inc_rows, 2);
    }

    #[test]
    fn explanations_cross_the_whole_stack() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 1))
            .unwrap();
        m.define_view("X : noted :- X : spines, X[value -> V], V >= 0.")
            .unwrap();
        m.materialize_all().unwrap();
        let why = m
            .explain_fl(r#""S1.o0" : noted"#)
            .unwrap()
            .expect("fact holds");
        // The tree goes: view rule -> inst fact (edb) + mi fact (edb).
        assert!(why.contains("[rule #"), "{why}");
        assert!(why.contains("[edb]"), "{why}");
        assert!(m.explain_fl(r#""S1.o0" : nonsense"#).unwrap().is_none());
    }

    #[test]
    fn template_call_through_mediator() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        let mut w = MemoryWrapper::new("T");
        w.caps.push(Capability {
            class: "m".into(),
            pushable: vec!["loc".into()],
        });
        w.query_templates.push(crate::wrapper::QueryTemplate {
            name: "by_loc".into(),
            class: "m".into(),
            params: vec!["loc".into()],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: "m".into(),
            concept: "Spine".into(),
        });
        w.add_row("m", "a", vec![("loc", GcmValue::Id("Spine".into()))]);
        w.add_row("m", "b", vec![("loc", GcmValue::Id("Shaft".into()))]);
        m.register(Rc::new(w)).unwrap();
        let rows = m
            .call_template("T", "by_loc", &[GcmValue::Id("Spine".into())])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, "a");
        // Unknown template / wrong arity are errors.
        assert!(m.call_template("T", "nope", &[]).is_err());
        assert!(m.call_template("T", "by_loc", &[]).is_err());
    }

    #[test]
    fn derived_anchors_computed_at_the_mediator() {
        // Objects carry a numeric depth; the source declares a *rule*
        // mapping depths to concepts — the source itself never mentions
        // concept names per row.
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        let mut w = MemoryWrapper::new("DEPTHS");
        w.caps.push(Capability {
            class: "probe".into(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Derived {
            class: "probe".into(),
            rule: r#"anchor_at(X, "Spine") :- X : probe, X[depth -> D], D >= 5.
                     anchor_at(X, "Shaft") :- X : probe, X[depth -> D], D < 5."#
                .into(),
        });
        w.add_row("probe", "p1", vec![("depth", GcmValue::Int(9))]);
        w.add_row("probe", "p2", vec![("depth", GcmValue::Int(2))]);
        w.add_row("probe", "p3", vec![("depth", GcmValue::Int(7))]);
        let id = m.register(Rc::new(w)).unwrap();
        let spine = m.dm().lookup("Spine").unwrap();
        let shaft = m.dm().lookup("Shaft").unwrap();
        assert_eq!(m.index().count(id, spine), 2);
        assert_eq!(m.index().count(id, shaft), 1);
    }

    #[test]
    fn subsumption_based_source_selection() {
        let mut m = Mediator::from_axioms(
            "Spiny_Neuron = Neuron and exists has.Spine.
             Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.
             Granule_Cell < Neuron.",
            ExecMode::Assertion,
        )
        .unwrap();
        m.register(simple_wrapper("P", "pdata", "Purkinje_Cell", 2))
            .unwrap();
        m.register(simple_wrapper("G", "gdata", "Granule_Cell", 2))
            .unwrap();
        // A query about spiny things finds only the Purkinje source.
        let spiny = m
            .select_sources_by_expression("Neuron and exists has.Spine")
            .unwrap();
        assert_eq!(spiny, vec!["P".to_string()]);
        // A plain neuron query finds both.
        let neurons = m.select_sources_by_expression("Neuron").unwrap();
        assert_eq!(neurons, vec!["P".to_string(), "G".to_string()]);
    }

    #[test]
    fn anchored_facts_visible_to_rules() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 1))
            .unwrap();
        let rows = m.query_fl(r#"anchored("S1", C)"#).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(m.show(&rows[0][1]), "Spine");
    }
}
