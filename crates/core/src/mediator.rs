//! The model-based mediator (Figure 2) — now a thin **facade** over two
//! subsystems plus the evaluation pipeline:
//!
//! * [`crate::Federation`] — the source-facing layer: registered
//!   wrappers, per-source policies, circuit breakers, the shared clock,
//!   and the single guarded-fetch path;
//! * [`crate::Knowledge`] — the semantic layer: the domain map and its
//!   resolved closure view, retained DL axioms, the CM plug-in registry,
//!   the semantic index, applied CMs, and view definitions;
//! * the eval/cache pipeline owned here: the GCM base, the
//!   fingerprint-keyed cached model, and the evaluation options.
//!
//! The mediator composes the three: sources join at runtime by
//! [`Mediator::register`]-ing (their CM export translated through the
//! plug-in for their formalism, applied to the GCM base, their data
//! anchored into the domain map, contributed DL axioms merged — Figure
//! 3), and integrated views are FL rule texts evaluated over everything
//! together. [`Mediator::snapshot`] freezes the evaluated state into an
//! immutable, `Send + Sync` [`crate::QuerySnapshot`] that any number of
//! threads can query concurrently.

use crate::error::{MediatorError, Result};
use crate::fault::{AnswerReport, BreakerState, Clock, SourceError, SourcePolicy};
use crate::federation::{Federation, FetchRequest};
pub use crate::federation::{MediatorStats, RegisteredSource};
use crate::hub::{PinnedSnapshot, SnapshotHub};
use crate::knowledge::Knowledge;
use crate::snapshot::QuerySnapshot;
use crate::wrapper::{Anchor, ObjectRow, SourceQuery, Wrapper};
use kind_datalog::{EvalOptions, EvalStats, Interner, Model, Term};
use kind_dm::{axiom, rules, DomainMap, ExecMode, Resolved, SemanticIndex, SourceId, DM_OPS_RULES};
use kind_gcm::{GcmBase, GcmDecl};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Answer rows, the names of the sources contacted to produce them, the
/// evaluation statistics, and whether the magic-sets rewrite fired.
pub(crate) type RowsAndSources = (Vec<Vec<Term>>, Vec<String>, EvalStats, bool);

/// The model-based mediator: a facade composing the [`Federation`] and
/// [`Knowledge`] layers with the eval/cache pipeline (see module docs).
pub struct Mediator {
    federation: Federation,
    knowledge: Knowledge,
    base: GcmBase,
    /// The cached evaluated model, shared with snapshots. `Arc` rather
    /// than an owned `Model` so [`Mediator::snapshot`] publishes it
    /// without a deep copy and query paths need no take/put juggling.
    model: Option<Arc<Model>>,
    /// Fingerprint of the program the cached [`Self::model`] was computed
    /// from (see [`Self::base_fingerprint`]).
    model_fp: Option<u64>,
    /// Whether the base program must be rebuilt from scratch before the
    /// next evaluation. Raised only by changes the staged write plane
    /// cannot express as a delta: domain-map refinements (their compiled
    /// rules permeate the whole program) and evaluation-option changes.
    /// Everything else — loaded rows, retracted rows, incremental CM
    /// applications, view pushes/pops — stays out of this flag and flows
    /// through the engine's changelog instead, so [`Self::publish`] can
    /// maintain the cached model incrementally.
    needs_rebuild: bool,
    /// Engine rule ranges of each installed view, aligned with
    /// `knowledge.views` — valid whenever `needs_rebuild` is false, so
    /// [`Self::pop_view`] can surgically remove exactly the view's rules
    /// instead of invalidating the world. Recomputed by [`Self::rebuild`].
    view_spans: Vec<(usize, usize)>,
    /// The `Arc` of the base handed to the most recent snapshot, reused
    /// verbatim by the next [`Self::snapshot`] when no base mutation
    /// happened in between — repeated snapshots of a quiet mediator share
    /// one base clone instead of deep-copying per call.
    shared_base: Option<Arc<GcmBase>>,
    /// The snapshot publication hub: the epoch-counted current-snapshot
    /// slot that readers load wait-free. The mediator is its single
    /// writer — [`Self::publish`] installs into it whenever anyone else
    /// holds a reference (see [`Self::hub`]), and
    /// [`Self::publish_snapshot`] installs unconditionally.
    hub: Arc<SnapshotHub>,
    eval_options: EvalOptions,
}

impl Mediator {
    /// Creates a mediator around a domain map, with edges executed in
    /// `mode` and the built-in CM plug-ins registered.
    pub fn new(dm: DomainMap, mode: ExecMode) -> Self {
        let federation = Federation::new();
        // One cancellation token for the whole pipeline: fetch jobs and
        // the Datalog fixpoint observe the same flag, so a single
        // `cancel()` winds down both planes cooperatively.
        let eval_options = EvalOptions {
            cancel: Some(federation.cancel_token()),
            ..EvalOptions::default()
        };
        let mut m = Mediator {
            federation,
            knowledge: Knowledge::new(dm, mode),
            base: GcmBase::new(),
            model: None,
            model_fp: None,
            needs_rebuild: true,
            view_spans: Vec::new(),
            shared_base: None,
            hub: Arc::new(SnapshotHub::new()),
            eval_options,
        };
        m.rebuild().expect("empty mediator builds");
        m
    }

    /// Creates a mediator from DL axiom text: the domain map is lowered
    /// from the axioms, which are also retained so
    /// [`Self::select_sources_by_expression`] can use the structural
    /// subsumption reasoner.
    pub fn from_axioms(axiom_text: &str, mode: ExecMode) -> Result<Self> {
        let mut dm = DomainMap::new();
        let axioms = axiom::load_axioms(&mut dm, axiom_text)?;
        let mut m = Self::new(dm, mode);
        m.knowledge.axioms = axioms;
        Ok(m)
    }

    // ------------------------------------------------------------------
    // Layer access.
    // ------------------------------------------------------------------

    /// The source-facing layer: registered wrappers, policies, breakers,
    /// clock, fetch statistics.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// Mutable access to the federation layer.
    pub fn federation_mut(&mut self) -> &mut Federation {
        &mut self.federation
    }

    /// The semantic layer: domain map, resolved view, axioms, semantic
    /// index, CMs, views.
    pub fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    /// Mutable access to the knowledge layer.
    pub fn knowledge_mut(&mut self) -> &mut Knowledge {
        &mut self.knowledge
    }

    /// The two planes of the execution pipeline, split-borrowed: the
    /// **fetch plane** (mutable federation — it advances breakers, the
    /// clock, and statistics) alongside the **evaluate plane**'s
    /// knowledge (read-only). This is how a plan's fetch phase — e.g.
    /// [`crate::plan::section5_fetch`] — runs source selection against
    /// the knowledge layer while fetching through the federation,
    /// without ever being able to mutate semantic state.
    pub fn fetch_eval_planes(&mut self) -> (&mut Federation, &Knowledge) {
        (&mut self.federation, &self.knowledge)
    }

    // ------------------------------------------------------------------
    // Knowledge-layer delegation.
    // ------------------------------------------------------------------

    /// The retained DL axioms (empty when the map was built directly).
    pub fn axioms(&self) -> &[kind_dm::Axiom] {
        self.knowledge.axioms()
    }

    /// The domain map.
    pub fn dm(&self) -> &DomainMap {
        self.knowledge.dm()
    }

    /// The resolved (flattened) domain-map view.
    pub fn resolved(&self) -> &Resolved {
        self.knowledge.resolved()
    }

    /// The semantic index.
    pub fn index(&self) -> &SemanticIndex {
        self.knowledge.index()
    }

    /// The plug-in registry (e.g. to register a new formalism).
    pub fn registry_mut(&mut self) -> &mut kind_gcm::PluginRegistry {
        self.knowledge.registry_mut()
    }

    /// The least upper bound of the named concepts in the isa lattice.
    pub fn lub(&self, concepts: &[&str]) -> Result<Option<String>> {
        self.knowledge.lub(concepts)
    }

    /// The least upper bound in the **partonomy order** along `role` —
    /// the "region of correspondence" of §5 step 4: the smallest concept
    /// whose downward closure contains all the given locations.
    pub fn partonomy_lub(&self, role: &str, concepts: &[&str]) -> Result<Option<String>> {
        self.knowledge.partonomy_lub(role, concepts)
    }

    // ------------------------------------------------------------------
    // Federation-layer delegation.
    // ------------------------------------------------------------------

    /// Registered sources.
    pub fn sources(&self) -> &[RegisteredSource] {
        self.federation.sources()
    }

    /// Looks up a registered source by name.
    pub fn source(&self, name: &str) -> Result<&RegisteredSource> {
        self.federation.source(name)
    }

    /// Cumulative query-processing statistics.
    pub fn stats(&self) -> MediatorStats {
        self.federation.stats
    }

    /// The mediator's clock (share it with [`crate::FaultInjector`]s so
    /// injected delays are visible to timeout checks).
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.federation.clock()
    }

    /// Replaces the clock (e.g. with a pre-advanced
    /// [`crate::VirtualClock`]).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.federation.set_clock(clock);
    }

    /// Sets the policy used for sources without a per-source override.
    pub fn set_default_policy(&mut self, policy: SourcePolicy) {
        self.federation.set_default_policy(policy);
    }

    /// Sets a per-source retry/timeout/breaker policy. Any existing
    /// breaker for the source is reset so the new configuration takes
    /// effect immediately.
    pub fn set_source_policy(&mut self, name: impl Into<String>, policy: SourcePolicy) {
        self.federation.set_source_policy(name, policy);
    }

    /// The policy governing `name` (per-source override or default).
    pub fn policy_for(&self, name: &str) -> &SourcePolicy {
        self.federation.policy_for(name)
    }

    /// Arms an end-to-end virtual-time budget for every degradable
    /// operation ([`Self::materialize_all`], [`Self::answer`], the §5
    /// plans): each operation starts a fresh [`crate::QueryBudget`],
    /// fetch jobs work against the remaining slice, and sources that run
    /// past it are cut off with
    /// [`crate::SourceOutcome::DeadlineExceeded`] — the answer completes
    /// from whatever landed in time, and the report says what is
    /// missing. `0` (the default) disables the deadline.
    pub fn set_query_budget_ms(&mut self, ms: u64) {
        self.federation.set_query_budget_ms(ms);
    }

    /// The configured per-operation budget (0 = no deadline).
    pub fn query_budget_ms(&self) -> u64 {
        self.federation.query_budget_ms()
    }

    /// The pipeline-wide cooperative cancellation token: cancel it (from
    /// any thread) and in-flight fetches abandon with
    /// [`crate::SourceOutcome::Cancelled`] while the Datalog fixpoint
    /// returns [`kind_datalog::DatalogError::Interrupted`] at its next
    /// round boundary. Each degradable operation starts with the token
    /// reset.
    pub fn cancel_token(&self) -> kind_datalog::CancelToken {
        self.federation.cancel_token()
    }

    /// When `true`, the first fetch job to exhaust its budget slice
    /// cancels its in-flight siblings instead of letting each run to its
    /// own deadline. Off by default: sibling cancellation trades the
    /// bit-identical-reports guarantee for lower tail latency (see
    /// [`Federation::set_deadline_cancels_siblings`]).
    pub fn set_deadline_cancels_siblings(&mut self, yes: bool) {
        self.federation.set_deadline_cancels_siblings(yes);
    }

    /// The breaker state for a source, once it has been fetched from at
    /// least once.
    pub fn breaker_state(&self, name: &str) -> Option<BreakerState> {
        self.federation.breaker_state(name)
    }

    /// Force-closes a source's breaker (operator override).
    pub fn reset_breaker(&mut self, name: &str) {
        self.federation.reset_breaker(name);
    }

    /// The degradation report of the most recent degradable operation
    /// ([`Self::materialize_all`], [`Self::answer`], or a plan run).
    pub fn report(&self) -> &AnswerReport {
        self.federation.report()
    }

    /// Starts a fresh report (each degradable operation calls this).
    pub(crate) fn begin_report(&mut self) {
        self.federation.begin_report();
    }

    /// Capability-aware, fault-tolerant fetch — delegates to the
    /// federation layer's single guarded path ([`Federation::fetch`]), so
    /// retry/breaker/quarantine semantics are identical across every
    /// entry point.
    pub fn fetch(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        self.federation.fetch(source_name, q)
    }

    /// Like [`Self::fetch`], but a source-level failure degrades to an
    /// empty row set instead of an error (the failure stays visible in
    /// [`Self::report`]). Mediator-level errors (unknown source/class)
    /// still propagate.
    pub fn fetch_degraded(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        self.federation.fetch_degraded(source_name, q)
    }

    /// Calls a declared query template on a source (§2's "query
    /// templates" capability form): expands the template with the given
    /// arguments and fetches through the capability-aware path.
    pub fn call_template(
        &mut self,
        source_name: &str,
        template: &str,
        args: &[kind_gcm::GcmValue],
    ) -> Result<Vec<ObjectRow>> {
        self.federation.call_template(source_name, template, args)
    }

    /// The sources that export `class` (by declared capability).
    pub fn sources_exporting(&self, class: &str) -> Vec<String> {
        self.federation.sources_exporting(class)
    }

    // ------------------------------------------------------------------
    // Source selection: knowledge-layer ids mapped to federation names.
    // ------------------------------------------------------------------

    /// Maps knowledge-layer source ids to names, preserving registration
    /// order.
    fn names_of(&self, ids: &[SourceId]) -> Vec<String> {
        self.federation
            .sources()
            .iter()
            .filter(|s| ids.contains(&s.id))
            .map(|s| s.name.clone())
            .collect()
    }

    /// **Source selection** via the semantic index (§5 step 2): the names
    /// of sources with data anchored at (or below) *all* the given
    /// concepts.
    pub fn select_sources(&self, concepts: &[&str]) -> Result<Vec<String>> {
        Ok(self.names_of(&self.knowledge.select_sources(concepts)?))
    }

    /// Sources with data anchored anywhere in the **anatomical region**
    /// under `root` — the downward closure along `role` (which includes
    /// isa-subconcepts). This is how "sources relevant to the cerebellum"
    /// finds a lab anchored at `Purkinje_Cell` (a *part*, not a
    /// subconcept, of the cerebellum).
    pub fn sources_in_region(&self, role: &str, root: &str) -> Result<Vec<String>> {
        Ok(self.names_of(&self.knowledge.sources_in_region(role, root)?))
    }

    /// **Logic-level source selection**: the sources whose anchored
    /// concepts are subsumed by a DL concept *expression* — e.g.
    /// `"Neuron and exists has.Spine"` finds sources anchored at
    /// `Purkinje_Cell` even if no single named concept covers the query.
    /// Uses the structural subsumption reasoner on the retained axioms
    /// (sound, incomplete; see `kind_dm::subsume`).
    pub fn select_sources_by_expression(&self, expr_text: &str) -> Result<Vec<String>> {
        let all: Vec<SourceId> = self.federation.sources().iter().map(|s| s.id).collect();
        Ok(self.names_of(&self.knowledge.sources_subsumed_by(expr_text, &all)?))
    }

    /// Sources relevant to any one concept's cone.
    pub fn sources_below(&self, concept: &str) -> Result<Vec<String>> {
        Ok(self.names_of(&self.knowledge.sources_below(concept)?))
    }

    // ------------------------------------------------------------------
    // Registration: the one flow that touches every layer.
    // ------------------------------------------------------------------

    /// Registers a wrapped source: translates its CM through the plug-in
    /// for its formalism, applies it, merges its DM contribution, and
    /// builds its semantic index. Returns the assigned source id.
    pub fn register(&mut self, wrapper: Arc<dyn Wrapper>) -> Result<SourceId> {
        let name = wrapper.name().to_string();
        if self.federation.has_source(&name) {
            return Err(MediatorError::DuplicateSource { name });
        }
        let id = self.federation.next_id();
        // (1) DM contribution — a source may refine the mediator's map
        // (Figure 3) *before* anchoring against it.
        let contribution = wrapper.dm_contribution();
        let map_changed = self.knowledge.merge_contribution(&contribution)?;
        // (2) Conceptual model through the plug-in.
        let doc = wrapper.export_cm();
        let cm = self
            .knowledge
            .registry
            .translate(wrapper.formalism(), &doc)?;
        // Remember the declared schema for row validation at fetch time.
        let mut declared_attrs: HashMap<String, BTreeSet<String>> = HashMap::new();
        for d in &cm.decls {
            if let GcmDecl::Method { class, method, .. } = d {
                declared_attrs
                    .entry(class.clone())
                    .or_default()
                    .insert(method.clone());
            }
        }
        self.knowledge.cms.push(cm);
        // Registration contacts the source directly (no retry/breaker: a
        // source that cannot answer its own registration scan has no
        // business joining the federation).
        let strict = |r: std::result::Result<Vec<ObjectRow>, SourceError>| {
            r.map_err(|error| MediatorError::Source {
                name: name.clone(),
                error,
            })
        };
        // (3) Semantic index: anchor the source's data.
        let mut anchor_attrs: HashMap<String, Vec<String>> = HashMap::new();
        for anchor in wrapper.anchors() {
            match anchor {
                Anchor::Fixed { class, concept } => {
                    let node = self.knowledge.lookup(&concept)?;
                    let count = strict(wrapper.query(&SourceQuery::scan(&class)))?
                        .len()
                        .max(1);
                    self.knowledge.index_mut().anchor_many(id, node, count);
                }
                Anchor::ByAttr { class, attr } => {
                    anchor_attrs
                        .entry(class.clone())
                        .or_default()
                        .push(attr.clone());
                    let rows = strict(wrapper.query(&SourceQuery::scan(&class)))?;
                    let mut per_concept: HashMap<String, usize> = HashMap::new();
                    for row in &rows {
                        if let Some(c) = row.get_str(&attr) {
                            *per_concept.entry(c).or_insert(0) += 1;
                        }
                    }
                    for (concept, count) in per_concept {
                        let node = self.knowledge.lookup(&concept)?;
                        self.knowledge.index_mut().anchor_many(id, node, count);
                    }
                }
                Anchor::Derived { class, rule } => {
                    // Evaluate the derived-anchor rule in a scratch
                    // knowledge base over this class's rows only.
                    let mut scratch = kind_flogic::FLogic::new();
                    scratch.load(&rule)?;
                    let rows = strict(wrapper.query(&SourceQuery::scan(&class)))?;
                    for row in &rows {
                        let obj = scratch.engine_mut().constant(&row.id);
                        let cls = scratch.engine_mut().constant(&class);
                        let preds = *scratch.preds();
                        scratch
                            .engine_mut()
                            .add_fact(preds.class, vec![cls.clone()])?;
                        scratch
                            .engine_mut()
                            .add_fact(preds.inst, vec![obj.clone(), cls])?;
                        for (attr, value) in &row.attrs {
                            let a = scratch.engine_mut().constant(attr);
                            let v = match value {
                                kind_gcm::GcmValue::Int(i) => Term::Int(*i),
                                other => {
                                    let s = other.to_string();
                                    scratch.engine_mut().constant(&s)
                                }
                            };
                            scratch
                                .engine_mut()
                                .add_fact(preds.mi, vec![obj.clone(), a, v])?;
                        }
                    }
                    let model = scratch.run_with(&self.eval_options)?;
                    let mut per_concept: HashMap<String, usize> = HashMap::new();
                    for sol in scratch
                        .engine_mut()
                        .clone()
                        .query_model(&model, "anchor_at(X, C)")?
                    {
                        per_concept
                            .entry(scratch.engine().show(&sol[1]))
                            .and_modify(|c| *c += 1)
                            .or_insert(1);
                    }
                    for (concept, count) in per_concept {
                        let node = self.knowledge.lookup(&concept)?;
                        self.knowledge.index_mut().anchor_many(id, node, count);
                    }
                }
            }
        }
        let caps = wrapper.capabilities();
        let classes = caps.iter().map(|c| c.class.clone()).collect();
        self.federation.add_source(RegisteredSource {
            id,
            name: name.clone(),
            caps,
            wrapper,
            classes,
            declared_attrs,
            anchor_attrs,
        });
        // Fast path: when the registration did not touch the domain map
        // and the base is current, apply the new CM and anchor facts
        // incrementally instead of rebuilding everything (anchoring
        // "without changing the latter", §4). The mutations land in the
        // engine's changelog, so the next [`Self::publish`] maintains the
        // cached model incrementally rather than discarding it.
        if !map_changed && !self.needs_rebuild {
            let cm = self.knowledge.cms.last().expect("just pushed").clone();
            if let Err(e) = self.apply_cm_and_anchors(&cm, id, &name) {
                // A half-applied CM leaves the engine out of sync with
                // the knowledge layer; fall back to a full rebuild.
                self.needs_rebuild = true;
                return Err(e);
            }
            self.shared_base = None;
        } else {
            self.needs_rebuild = true;
        }
        Ok(id)
    }

    /// The incremental half of [`Self::register`]: applies the CM and the
    /// source's `anchored` facts to the live base.
    fn apply_cm_and_anchors(
        &mut self,
        cm: &kind_gcm::ConceptualModel,
        id: SourceId,
        name: &str,
    ) -> Result<()> {
        self.base.apply(cm)?;
        for concept in self.knowledge.index.concepts_of(id) {
            if let Some(cname) = self.knowledge.dm.name(concept) {
                let text = format!("anchored({:?}, {:?}).", name, cname);
                self.base.flogic_mut().load(&text)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The eval/cache pipeline.
    // ------------------------------------------------------------------

    /// Overrides the evaluation options (depth limits etc.). The
    /// mediator's pipeline-wide cancellation token is re-attached unless
    /// the caller supplied their own (see [`Self::cancel_token`]).
    pub fn set_eval_options(&mut self, opts: EvalOptions) {
        self.eval_options = opts;
        if self.eval_options.cancel.is_none() {
            self.eval_options.cancel = Some(self.federation.cancel_token());
        }
        self.needs_rebuild = true;
    }

    /// The current evaluation options.
    pub fn eval_options(&self) -> &EvalOptions {
        &self.eval_options
    }

    /// Sets the evaluate-plane thread budget (0 = one worker per core).
    /// Parallel evaluation is bit-identical to serial — same `Model`,
    /// `EvalStats`, and join plans — so changing it neither dirties the
    /// base nor invalidates a cached model; it only affects wall clock.
    pub fn set_eval_threads(&mut self, threads: usize) {
        self.eval_options.eval_threads = threads;
    }

    /// The configured evaluate-plane thread budget.
    pub fn eval_threads(&self) -> usize {
        self.eval_options.eval_threads
    }

    /// Selects the fetch-plane transport (see [`kind_core::FetchMode`]
    /// via the crate root): scoped thread-per-job, or the overlapped
    /// executor that parks stalled attempts on a timer wheel. Both
    /// transports produce bit-identical `FetchSet`s, so switching
    /// neither dirties the base nor invalidates a cached model; it only
    /// affects wall clock and thread footprint.
    pub fn set_fetch_mode(&mut self, mode: crate::FetchMode) {
        self.federation.set_fetch_mode(mode);
    }

    /// The configured fetch-plane transport.
    pub fn fetch_mode(&self) -> crate::FetchMode {
        self.federation.fetch_mode()
    }

    /// Caps how many fetch jobs may be in flight at once on the
    /// overlapped transport (0 = unlimited). Admission order is job
    /// order, so the knob is cache-neutral like the other fetch knobs.
    pub fn set_in_flight_limit(&mut self, n: usize) {
        self.federation.set_in_flight_limit(n);
    }

    /// The configured overlapped-transport admission cap.
    pub fn in_flight_limit(&self) -> usize {
        self.federation.in_flight_limit()
    }

    /// Toggles the magic-sets demand transformation for goal-directed
    /// queries ([`Self::answer`] and snapshot answers). The rewrite is
    /// answer-preserving and only ever applied on the query path — full
    /// materialization ([`Self::run`]) ignores it — so flipping it
    /// neither dirties the base nor invalidates a cached model.
    pub fn set_magic_sets(&mut self, on: bool) {
        self.eval_options.magic_sets = on;
    }

    /// Whether goal-directed queries apply the magic-sets rewrite.
    pub fn magic_sets(&self) -> bool {
        self.eval_options.magic_sets
    }

    /// Read access to the GCM base (the built engine).
    pub fn base(&self) -> &GcmBase {
        &self.base
    }

    /// Mutable access to the GCM base, for the goal-directed query path
    /// (the magic-sets rewrite interns adorned predicate names).
    pub(crate) fn base_mut(&mut self) -> &mut GcmBase {
        &mut self.base
    }

    /// Removes the most recently defined view (used for one-off queries).
    /// When the base is current, exactly the view's own rules are removed
    /// from the live engine — a staged retraction the next
    /// [`Self::publish`] maintains incrementally — instead of invalidating
    /// the whole program.
    pub(crate) fn pop_view(&mut self) {
        self.knowledge.views.pop();
        if self.needs_rebuild {
            // Spans are only valid for a current base; the pending
            // rebuild reloads the (now shorter) view list anyway.
            return;
        }
        match self.view_spans.pop() {
            Some((start, end)) => {
                self.base.flogic_mut().engine_mut().remove_rules(start, end);
                self.shared_base = None;
            }
            None => self.needs_rebuild = true,
        }
    }

    /// Defines an integrated view (an IVD): FL rule text over source
    /// classes and the domain map (Example 4). When the base is current,
    /// the view's rules are loaded into the live engine immediately (and
    /// their span recorded for [`Self::pop_view`]); the staged write plane
    /// picks the change up at the next [`Self::publish`].
    pub fn define_view(&mut self, fl_text: &str) -> Result<()> {
        if !self.needs_rebuild {
            let start = self.base.flogic().engine().rules().len();
            if let Err(e) = self.base.flogic_mut().load(fl_text) {
                // Partial loads leave stray rules; resync via rebuild.
                self.needs_rebuild = true;
                return Err(e.into());
            }
            let end = self.base.flogic().engine().rules().len();
            self.view_spans.push((start, end));
            self.shared_base = None;
        }
        self.knowledge.views.push(fl_text.to_string());
        Ok(())
    }

    /// Rebuilds the GCM base from scratch: DM rules, every applied CM,
    /// anchor facts, views. Called lazily by [`Self::run`] after any
    /// change (DM refinements cannot be retracted incrementally).
    pub fn rebuild(&mut self) -> Result<()> {
        let mut base = GcmBase::new();
        base.flogic_mut().load_datalog(DM_OPS_RULES)?;
        let prog = rules::compile(&self.knowledge.dm, self.knowledge.mode);
        base.flogic_mut().load(&prog.text)?;
        for cm in &self.knowledge.cms {
            base.apply(cm)?;
        }
        // Anchor facts: anchored(source, concept) for source selection at
        // the logic level too.
        for src in self.federation.sources() {
            for concept in self.knowledge.index.concepts_of(src.id) {
                if let Some(cname) = self.knowledge.dm.name(concept) {
                    let text = format!("anchored({:?}, {:?}).", src.name, cname);
                    base.flogic_mut().load(&text)?;
                }
            }
        }
        let mut spans = Vec::with_capacity(self.knowledge.views.len());
        for v in &self.knowledge.views {
            let start = base.flogic().engine().rules().len();
            base.flogic_mut().load(v)?;
            spans.push((start, base.flogic().engine().rules().len()));
        }
        // From here every mutation is recorded: the staged write plane
        // starts at the freshly built program.
        base.flogic_mut().engine_mut().begin_delta();
        self.base = base;
        self.view_spans = spans;
        self.model = None;
        self.shared_base = None;
        self.needs_rebuild = false;
        Ok(())
    }

    /// Bulk-loads every row of every registered source into the GCM base
    /// as `inst`/`mi` facts (plus `relinst` for anchor attributes) — the
    /// *materialize-everything* strategy, used for loose federation and as
    /// the baseline the §5 push-down plan is compared against.
    ///
    /// Runs as a two-phase pipeline: the **fetch phase** scans every
    /// (source, class) pair concurrently through
    /// [`Federation::fetch_parallel`] (one worker job per source; tune
    /// with [`Federation::set_fetch_threads`]), then the **evaluate
    /// phase** applies the fetched batches in registration order — so
    /// the loaded base, including its interner, is bit-identical to what
    /// serial fetching produced.
    ///
    /// Degrades gracefully: a failing (or breaker-skipped) source simply
    /// contributes no rows, and CM-invalid rows are quarantined rather
    /// than loaded. Inspect [`Self::report`] afterwards for per-source
    /// outcomes and the completeness flag.
    pub fn materialize_all(&mut self) -> Result<usize> {
        self.begin_report();
        if self.needs_rebuild {
            self.rebuild()?;
        }
        // Fetch phase: every (source, class) scan, in registration order.
        let requests: Vec<FetchRequest> = self
            .federation
            .sources()
            .iter()
            .flat_map(|s| {
                s.classes
                    .iter()
                    .map(|class| FetchRequest::scan(s.name.as_str(), class.as_str()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let fetched = self.federation.fetch_parallel(&requests)?;
        // Evaluate phase: apply batches in request (= registration) order.
        let mut loaded = 0usize;
        for batch in &fetched.batches {
            for row in &batch.rows {
                self.apply_row(&batch.source, &batch.query.class, row)?;
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Loads one row into the base as GCM declarations, after validating
    /// it against the source's exported CM (unknown source, unexported
    /// class, and malformed rows are typed errors — not silently
    /// accepted).
    pub fn load_row(&mut self, source: &str, class: &str, row: &ObjectRow) -> Result<()> {
        let src = self.federation.source(source)?;
        if !src.classes.iter().any(|c| c == class) {
            return Err(MediatorError::UnknownClass {
                class: class.to_string(),
            });
        }
        if let Err(reason) = src.validate_row(class, row) {
            return Err(MediatorError::Source {
                name: source.to_string(),
                error: SourceError::MalformedRow {
                    row: row.id.clone(),
                    reason,
                },
            });
        }
        self.apply_row(source, class, row)
    }

    /// The unchecked load path, for rows already validated by
    /// [`Self::fetch`]. The row's facts are **staged**: they land in the
    /// live engine and its changelog, and the cached model stays valid
    /// as the pre-delta base until [`Self::publish`] applies the
    /// accumulated delta incrementally.
    pub(crate) fn apply_row(&mut self, source: &str, class: &str, row: &ObjectRow) -> Result<()> {
        apply_row_to(&mut self.base, source, class, row)?;
        self.shared_base = None;
        Ok(())
    }

    /// Retracts a previously loaded row — the delete plane's mirror of
    /// [`Self::load_row`]: the row's `inst` fact and each of its `mi`
    /// attribute facts are removed from the base, staged in the write
    /// plane like any other mutation (the next [`Self::publish`]
    /// maintains the model incrementally, DRed-style). Returns how many
    /// facts were actually present and removed — `0` means the row was
    /// never loaded (or already retracted), which is not an error. The
    /// class declaration itself stays: other rows may still use it.
    pub fn retract_row(&mut self, source: &str, class: &str, row: &ObjectRow) -> Result<usize> {
        self.federation.source(source)?;
        let obj = format!("{source}.{}", row.id);
        let mut removed = 0usize;
        if self.base.retract_decl(&GcmDecl::Instance {
            obj: obj.clone(),
            class: class.to_string(),
        }) {
            removed += 1;
        }
        for (attr, value) in &row.attrs {
            if self.base.retract_decl(&GcmDecl::MethodInst {
                obj: obj.clone(),
                method: attr.clone(),
                value: value.clone(),
            }) {
                removed += 1;
            }
        }
        if removed > 0 {
            self.shared_base = None;
        }
        Ok(removed)
    }

    /// A fingerprint of everything the base *program* is built from — the
    /// domain map, execution mode, applied CMs, views, and evaluation
    /// options. The cached model is keyed by it: [`Self::run`] discards a
    /// cached model whose fingerprint no longer matches, even if no dirty
    /// flag was raised (belt-and-braces for the cross-query base cache).
    /// Instance facts are deliberately excluded: fact loads and
    /// retractions flow through the engine changelog, which [`Self::run`]
    /// drains into the cached model incrementally.
    fn base_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}", self.knowledge.dm).hash(&mut h);
        format!("{:?}", self.knowledge.mode).hash(&mut h);
        // The thread budget is normalized out: parallel evaluation is
        // bit-identical to serial, so a cached model stays valid across
        // `set_eval_threads` calls.
        let mut opts = self.eval_options.clone();
        opts.eval_threads = 0;
        // The cancellation token is identity, not semantics: it never
        // changes what a completed evaluation computes, so it must not
        // invalidate a cached model either.
        opts.cancel = None;
        // The magic-sets toggle only affects goal-directed query plans;
        // full materialization (`run`) never applies the rewrite, so the
        // cached base model is always the full one and stays valid across
        // `set_magic_sets` calls.
        opts.magic_sets = true;
        format!("{opts:?}").hash(&mut h);
        // CMs and views are deliberately *not* hashed: their lifecycle
        // flows through the staged write plane (the engine changelog plus
        // `needs_rebuild`), so a view push/pop or an incremental CM
        // application updates the cached model by delta instead of
        // invalidating it wholesale.
        h.finish()
    }

    /// Evaluates the base (rebuilding first if needed) and caches the
    /// model across queries; the cache key is [`Self::base_fingerprint`].
    ///
    /// This is the **publish point** of the staged write plane: mutations
    /// since the last run (loaded rows, retracted rows, incremental CM
    /// applications, view pushes/pops) have been accumulating in the
    /// engine's changelog, and when a cached model exists they are
    /// applied to it *incrementally* ([`kind_datalog::Engine::apply_delta`]
    /// — monotone additions ride delta rounds, retractions
    /// overdelete-and-rederive, non-monotone residues rebuild only their
    /// strata). Only when no model is cached — first run, rebuild, or a
    /// prior publish failure — does the evaluation start cold.
    pub fn run(&mut self) -> Result<&Model> {
        let fp = self.base_fingerprint();
        if self.model.is_some() && self.model_fp != Some(fp) {
            self.model = None;
        }
        if self.needs_rebuild {
            self.rebuild()?;
        }
        // Drain staged mutations unconditionally: whatever happens below,
        // the model produced reflects the engine's *current* state.
        let delta = self.base.flogic_mut().engine_mut().take_delta();
        if let Some(d) = delta.filter(|d| !d.is_empty()) {
            if let Some(prev) = self.model.take() {
                // On error the model stays `None` (the delta is already
                // consumed), so the next run evaluates cold — never a
                // stale model passed off as current.
                let next =
                    self.base
                        .flogic()
                        .engine()
                        .apply_delta(&prev, &d, &self.eval_options)?;
                self.model = Some(Arc::new(next));
            }
        }
        if self.model.is_none() {
            let m = self.base.run_with(&self.eval_options)?;
            self.model = Some(Arc::new(m));
        }
        self.model_fp = Some(fp);
        Ok(self.model.as_ref().expect("just set"))
    }

    /// Ensures the base *program* is current — rebuilding only when a
    /// non-delta change demands it — without forcing an evaluation (the
    /// cold query path evaluates goal-directed on the engine itself).
    pub(crate) fn ensure_base_current(&mut self) -> Result<()> {
        if self.needs_rebuild {
            self.rebuild()?;
        }
        Ok(())
    }

    /// Publishes the staged writes: the write-plane name for
    /// [`Self::run`]. Everything asserted or retracted since the last
    /// publish is folded into the cached model — incrementally when one
    /// exists — and the result becomes what queries and snapshots see.
    ///
    /// Publication is **demand-driven**: when anyone besides the
    /// mediator holds the [`Self::hub`], the refreshed snapshot is also
    /// installed there (bumping the hub epoch) so hub readers observe
    /// the new state. With no subscribers the install — and the base
    /// clone a snapshot implies — is skipped entirely, keeping the bare
    /// write path as cheap as before the hub existed.
    pub fn publish(&mut self) -> Result<&Model> {
        if Arc::strong_count(&self.hub) > 1 {
            self.publish_snapshot()?;
        } else {
            self.run()?;
        }
        Ok(self.model.as_ref().expect("run() caches the model"))
    }

    /// The snapshot publication hub. Cloning the returned `Arc` counts
    /// as *subscribing*: from then on every [`Self::publish`] installs
    /// the fresh snapshot into the hub for wait-free loads. Readers that
    /// only ever want the current state should hold the hub and
    /// [`SnapshotHub::load`] per request rather than calling
    /// [`Self::snapshot`] through a lock on the mediator.
    pub fn hub(&self) -> Arc<SnapshotHub> {
        Arc::clone(&self.hub)
    }

    /// Publishes staged writes *and* unconditionally installs the
    /// resulting snapshot into the hub, returning the pinned
    /// publication. This is the explicit serving-plane entry point —
    /// call it once at startup to seed the hub, then let
    /// [`Self::publish`] keep it fresh.
    pub fn publish_snapshot(&mut self) -> Result<PinnedSnapshot> {
        let snap = self.snapshot()?;
        self.hub.install(snap);
        Ok(self.hub.load().expect("just installed"))
    }

    /// Whether mutations are staged and waiting for the next
    /// [`Self::publish`] (a pending rebuild counts: the whole program is
    /// the delta).
    pub fn publish_pending(&self) -> bool {
        self.needs_rebuild
            || self
                .base
                .flogic()
                .engine()
                .pending_delta()
                .is_some_and(|d| !d.is_empty())
    }

    /// Drops the cached model and forces the next evaluation to rebuild
    /// the base and run cold — the baseline the incremental publish path
    /// is benchmarked against, and an operator escape hatch should the
    /// cache ever be suspected.
    pub fn invalidate(&mut self) {
        self.model = None;
        self.model_fp = None;
        self.needs_rebuild = true;
        self.shared_base = None;
    }

    /// The cached model, if a publish has happened and nothing discarded
    /// it since (test instrumentation: pointer identity tells whether an
    /// operation kept the cache warm).
    #[cfg(test)]
    pub(crate) fn cached_model(&self) -> Option<&Arc<Model>> {
        self.model.as_ref()
    }

    /// Freezes the current state into an immutable, `Send + Sync`
    /// [`QuerySnapshot`]: the evaluated model, the (cloned) GCM base, and
    /// the resolved domain-map view, all behind `Arc`s. Call after
    /// [`Self::materialize_all`]/[`Self::rebuild`]; the snapshot then
    /// serves [`QuerySnapshot::query_fl`]/[`QuerySnapshot::answer`] from
    /// any number of threads with no locks on the hot path, while the
    /// mediator remains free to keep evolving.
    /// Snapshots are **structurally shared**: the model `Arc` comes from
    /// the publish cache (and after an incremental publish, relations of
    /// untouched strata inside it are shared with the previous model);
    /// the domain map, resolved view, and semantic index `Arc`s are
    /// reused for as long as registration does not change them; and the
    /// base clone itself is reused verbatim across consecutive snapshots
    /// when no write intervened.
    pub fn snapshot(&mut self) -> Result<QuerySnapshot> {
        self.run()?;
        let base = match &self.shared_base {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(self.base.clone());
                self.shared_base = Some(Arc::clone(&b));
                b
            }
        };
        Ok(QuerySnapshot::new(
            base,
            Arc::clone(self.model.as_ref().expect("run() caches the model")),
            self.knowledge.dm_arc(),
            self.knowledge.resolved_arc(),
            self.knowledge.index_arc(),
            self.eval_options.clone(),
        ))
    }

    /// Runs an FL query pattern (e.g. `"X : Neuron"` or
    /// `"protein_distribution(P, C, A)"`) against the evaluated model.
    pub fn query_fl(&mut self, pattern: &str) -> Result<Vec<Vec<Term>>> {
        self.run()?;
        let model = Arc::clone(self.model.as_ref().expect("model cached"));
        self.base
            .flogic_mut()
            .query(&model, pattern)
            .map_err(MediatorError::from)
    }

    /// Explains why an FL fact holds in the current model (e.g.
    /// `"SENSELAB.nt0 : neurotransmission"` or a derived view atom) as a
    /// rendered derivation tree. `None` when the fact does not hold.
    pub fn explain_fl(&mut self, fact: &str) -> Result<Option<String>> {
        self.run()?;
        let model = Arc::clone(self.model.as_ref().expect("model cached"));
        self.base
            .flogic_mut()
            .explain(&model, fact, 16)
            .map_err(MediatorError::from)
    }

    /// Renders a term from a query result.
    pub fn show(&self, t: &Term) -> String {
        self.base.flogic().engine().show(t)
    }

    /// The inconsistency witnesses of the current model.
    pub fn witnesses(&mut self) -> Result<Vec<String>> {
        self.run()?;
        let model = Arc::clone(self.model.as_ref().expect("model cached"));
        Ok(self.base.witnesses(&model))
    }

    /// The warm [`Mediator::answer`] path (see `query.rs`): evaluates a
    /// one-off view on a scratch clone of the base, seeded with the
    /// cached base-layer model so only query-relevant strata are
    /// recomputed (`run_for_seeded`). Returns `None` when seeding would
    /// be unsound — the head predicate already has facts in the base
    /// model — so the caller falls back to the cold path.
    pub(crate) fn answer_via_base_cache(
        &mut self,
        rule_text: &str,
        head_pred: &str,
        head_args: &[Term],
        exported: &[String],
        scratch: &Interner,
    ) -> Result<Option<RowsAndSources>> {
        self.run()?;
        let base_model = Arc::clone(self.model.as_ref().expect("run() caches the model"));
        let collides = self
            .base
            .flogic()
            .engine()
            .lookup(head_pred)
            .is_some_and(|p| base_model.facts.relation(p).is_some_and(|r| !r.is_empty()));
        if collides {
            return Ok(None);
        }
        // The base itself is not touched below: the cached model stays
        // valid, and the shared `Arc` means no take/put juggling.
        self.answer_on_clone(
            rule_text,
            head_pred,
            head_args,
            exported,
            scratch,
            &base_model,
        )
        .map(Some)
    }

    fn answer_on_clone(
        &mut self,
        rule_text: &str,
        head_pred: &str,
        head_args: &[Term],
        exported: &[String],
        scratch: &Interner,
        base_model: &Model,
    ) -> Result<RowsAndSources> {
        let mut work = self.base.clone();
        work.flogic_mut().load(rule_text)?;
        // Fetch phase: scan every source exporting a mentioned class,
        // concurrently, then apply batches in the deterministic request
        // order.
        let mut contacted: BTreeSet<String> = BTreeSet::new();
        let mut requests: Vec<FetchRequest> = Vec::new();
        for class in exported {
            for src in self.sources_exporting(class) {
                contacted.insert(src.clone());
                requests.push(FetchRequest::scan(src, class.as_str()));
            }
        }
        let fetched = self.federation.fetch_parallel(&requests)?;
        for batch in &fetched.batches {
            for row in &batch.rows {
                apply_row_to(&mut work, &batch.source, &batch.query.class, row)?;
            }
        }
        // The goal's constant arguments were interned by the caller's
        // scratch parse; map them into the work clone so the pattern (and
        // the magic-sets demand seeds derived from it) bind correctly.
        let goal_args: Vec<Term> = head_args
            .iter()
            .map(|t| reintern_term(scratch, work.flogic_mut().engine_mut(), t))
            .collect();
        let goal = kind_datalog::Atom::new(
            work.flogic()
                .engine()
                .lookup(head_pred)
                .expect("head predicate interned by view load"),
            goal_args,
        );
        // Goal-directed evaluation: seeded from the cached base model,
        // with the magic-sets rewrite specializing the delta to the
        // goal's bindings when `EvalOptions::magic_sets` is on.
        let model =
            work.flogic_mut()
                .run_for_query_seeded(&goal, base_model, &self.eval_options)?;
        let rows = model.query(&goal);
        let stats = model.stats;
        let magic_fired = model.profile.magic_fired;
        // Answer terms may reference symbols interned only in the scratch
        // clone (object ids fetched this query); re-intern them into the
        // mediator's own engine so `show` resolves them.
        let rows = rows
            .into_iter()
            .map(|r| {
                r.iter()
                    .map(|t| {
                        reintern_term(
                            work.flogic().engine().symbols(),
                            self.base.flogic_mut().engine_mut(),
                            t,
                        )
                    })
                    .collect()
            })
            .collect();
        Ok((rows, contacted.into_iter().collect(), stats, magic_fired))
    }
}

/// Loads one row's GCM declarations into `base` — the shared load path
/// for the mediator's own base and for per-query scratch clones.
pub(crate) fn apply_row_to(
    base: &mut GcmBase,
    source: &str,
    class: &str,
    row: &ObjectRow,
) -> Result<()> {
    let obj = format!("{source}.{}", row.id);
    base.apply_decl(&GcmDecl::Instance {
        obj: obj.clone(),
        class: class.to_string(),
    })?;
    for (attr, value) in &row.attrs {
        base.apply_decl(&GcmDecl::MethodInst {
            obj: obj.clone(),
            method: attr.clone(),
            value: value.clone(),
        })?;
    }
    Ok(())
}

/// Recursively re-interns a ground term from one symbol table into
/// another engine's. Variables and integers pass through unchanged.
pub(crate) fn reintern_term(from: &Interner, to: &mut kind_datalog::Engine, t: &Term) -> Term {
    match t {
        Term::Const(s) => to.constant(from.resolve(*s)),
        Term::Func(f, args) => {
            let name = from.resolve(*f).to_string();
            let mapped: Vec<Term> = args.iter().map(|a| reintern_term(from, to, a)).collect();
            let sym = to.sym(&name);
            Term::func(sym, mapped)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::{Capability, MemoryWrapper};
    use kind_dm::figures;
    use kind_gcm::GcmValue;

    fn simple_wrapper(name: &str, class: &str, concept: &str, n: usize) -> Arc<MemoryWrapper> {
        let mut w = MemoryWrapper::new(name);
        w.caps.push(Capability {
            class: class.into(),
            pushable: vec!["location".into()],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: class.into(),
            concept: concept.into(),
        });
        for i in 0..n {
            w.add_row(
                class,
                &format!("o{i}"),
                vec![
                    ("location", GcmValue::Id(concept.into())),
                    ("value", GcmValue::Int(i as i64)),
                ],
            );
        }
        Arc::new(w)
    }

    #[test]
    fn registration_builds_semantic_index() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        let w = simple_wrapper("SYNAPSE", "spine_data", "Spine", 5);
        let id = m.register(w).unwrap();
        let spine = m.dm().lookup("Spine").unwrap();
        assert_eq!(m.index().count(id, spine), 5);
        // Source selection: Spine is an Ion_Regulating_Component.
        assert_eq!(
            m.sources_below("Ion_Regulating_Component").unwrap(),
            vec!["SYNAPSE".to_string()]
        );
        assert!(m.sources_below("Neuron").unwrap().is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("A", "c", "Spine", 1)).unwrap();
        assert!(matches!(
            m.register(simple_wrapper("A", "c", "Spine", 1)),
            Err(MediatorError::DuplicateSource { .. })
        ));
    }

    #[test]
    fn unknown_anchor_concept_rejected() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        assert!(matches!(
            m.register(simple_wrapper("A", "c", "NoSuchConcept", 1)),
            Err(MediatorError::UnknownConcept { .. })
        ));
    }

    #[test]
    fn dm_contribution_extends_the_map() {
        // Figure 3 flow: registering MyNeuron/MyDendrite refines the DM.
        let mut m = Mediator::new(figures::figure3_base(), ExecMode::Assertion);
        assert!(m.dm().lookup("MyNeuron").is_none());
        let mut w = MemoryWrapper::new("MYLAB");
        w.dm_axioms = figures::FIGURE3_REGISTRATION_AXIOMS.to_string();
        w.caps.push(Capability {
            class: "my_neurons".into(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: "my_neurons".into(),
            concept: "MyNeuron".into(),
        });
        w.add_row("my_neurons", "m1", vec![]);
        m.register(Arc::new(w)).unwrap();
        assert!(m.dm().lookup("MyNeuron").is_some());
        // Derived knowledge: MyNeuron projects to GPE, so the source is
        // found below Medium_Spiny_Neuron.
        assert_eq!(
            m.sources_below("Medium_Spiny_Neuron").unwrap(),
            vec!["MYLAB".to_string()]
        );
    }

    #[test]
    fn materialize_and_query_loose_federation() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 3))
            .unwrap();
        m.materialize_all().unwrap();
        let rows = m.query_fl("X : spines").unwrap();
        assert_eq!(rows.len(), 3);
        // Rows carry source-qualified object names.
        let shown = m.show(&rows[0][0]);
        assert!(shown.starts_with("S1."), "{shown}");
    }

    #[test]
    fn views_evaluate_over_sources_and_dm() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 2))
            .unwrap();
        m.define_view("big(X) :- X : spines, X[value -> V], V >= 1.")
            .unwrap();
        m.materialize_all().unwrap();
        assert_eq!(m.query_fl("big(X)").unwrap().len(), 1);
    }

    #[test]
    fn fetch_applies_residual_filters() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 4))
            .unwrap();
        // `value` is not pushable: wrapper ships all 4, mediator keeps 1.
        let rows = m
            .fetch(
                "S1",
                &SourceQuery::scan("spines").with("value", GcmValue::Int(2)),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(m.stats().rows_shipped, 4);
        assert_eq!(m.stats().rows_kept, 1);
        // `location` is pushable: wrapper ships only matches.
        let rows = m
            .fetch(
                "S1",
                &SourceQuery::scan("spines").with("location", GcmValue::Id("Spine".into())),
            )
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(m.stats().rows_shipped, 8);
    }

    #[test]
    fn lub_through_mediator() {
        let m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        assert_eq!(
            m.lub(&["Purkinje_Cell", "Pyramidal_Cell"]).unwrap(),
            Some("Spiny_Neuron".to_string())
        );
    }

    #[test]
    fn incremental_registration_equals_rebuild() {
        // Register two sources; the second goes through the incremental
        // path. Force a rebuild on a copy and compare observable state.
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("A", "ca", "Spine", 2)).unwrap();
        m.run().unwrap(); // base now current
        m.register(simple_wrapper("B", "cb", "Shaft", 3)).unwrap();
        let inc_rows = m.query_fl(r#"anchored(S, C)"#).unwrap().len();
        m.rebuild().unwrap();
        let rebuilt_rows = m.query_fl(r#"anchored(S, C)"#).unwrap().len();
        assert_eq!(inc_rows, rebuilt_rows);
        assert_eq!(inc_rows, 2);
    }

    #[test]
    fn explanations_cross_the_whole_stack() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 1))
            .unwrap();
        m.define_view("X : noted :- X : spines, X[value -> V], V >= 0.")
            .unwrap();
        m.materialize_all().unwrap();
        let why = m
            .explain_fl(r#""S1.o0" : noted"#)
            .unwrap()
            .expect("fact holds");
        // The tree goes: view rule -> inst fact (edb) + mi fact (edb).
        assert!(why.contains("[rule #"), "{why}");
        assert!(why.contains("[edb]"), "{why}");
        assert!(m.explain_fl(r#""S1.o0" : nonsense"#).unwrap().is_none());
    }

    #[test]
    fn template_call_through_mediator() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        let mut w = MemoryWrapper::new("T");
        w.caps.push(Capability {
            class: "m".into(),
            pushable: vec!["loc".into()],
        });
        w.query_templates.push(crate::wrapper::QueryTemplate {
            name: "by_loc".into(),
            class: "m".into(),
            params: vec!["loc".into()],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: "m".into(),
            concept: "Spine".into(),
        });
        w.add_row("m", "a", vec![("loc", GcmValue::Id("Spine".into()))]);
        w.add_row("m", "b", vec![("loc", GcmValue::Id("Shaft".into()))]);
        m.register(Arc::new(w)).unwrap();
        let rows = m
            .call_template("T", "by_loc", &[GcmValue::Id("Spine".into())])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, "a");
        // Unknown template / wrong arity are errors.
        assert!(m.call_template("T", "nope", &[]).is_err());
        assert!(m.call_template("T", "by_loc", &[]).is_err());
    }

    #[test]
    fn derived_anchors_computed_at_the_mediator() {
        // Objects carry a numeric depth; the source declares a *rule*
        // mapping depths to concepts — the source itself never mentions
        // concept names per row.
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        let mut w = MemoryWrapper::new("DEPTHS");
        w.caps.push(Capability {
            class: "probe".into(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Derived {
            class: "probe".into(),
            rule: r#"anchor_at(X, "Spine") :- X : probe, X[depth -> D], D >= 5.
                     anchor_at(X, "Shaft") :- X : probe, X[depth -> D], D < 5."#
                .into(),
        });
        w.add_row("probe", "p1", vec![("depth", GcmValue::Int(9))]);
        w.add_row("probe", "p2", vec![("depth", GcmValue::Int(2))]);
        w.add_row("probe", "p3", vec![("depth", GcmValue::Int(7))]);
        let id = m.register(Arc::new(w)).unwrap();
        let spine = m.dm().lookup("Spine").unwrap();
        let shaft = m.dm().lookup("Shaft").unwrap();
        assert_eq!(m.index().count(id, spine), 2);
        assert_eq!(m.index().count(id, shaft), 1);
    }

    #[test]
    fn subsumption_based_source_selection() {
        let mut m = Mediator::from_axioms(
            "Spiny_Neuron = Neuron and exists has.Spine.
             Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.
             Granule_Cell < Neuron.",
            ExecMode::Assertion,
        )
        .unwrap();
        m.register(simple_wrapper("P", "pdata", "Purkinje_Cell", 2))
            .unwrap();
        m.register(simple_wrapper("G", "gdata", "Granule_Cell", 2))
            .unwrap();
        // A query about spiny things finds only the Purkinje source.
        let spiny = m
            .select_sources_by_expression("Neuron and exists has.Spine")
            .unwrap();
        assert_eq!(spiny, vec!["P".to_string()]);
        // A plain neuron query finds both.
        let neurons = m.select_sources_by_expression("Neuron").unwrap();
        assert_eq!(neurons, vec!["P".to_string(), "G".to_string()]);
    }

    /// Renders a published model's true and undefined facts
    /// name-resolved, so models from independently driven mediators are
    /// comparable bit-for-bit.
    fn fact_dump(
        m: &Mediator,
    ) -> (
        std::collections::BTreeSet<String>,
        std::collections::BTreeSet<String>,
    ) {
        let model = Arc::clone(m.cached_model().expect("published"));
        let e = m.base().flogic().engine();
        let render = |fs: &kind_datalog::FactStore| {
            fs.iter()
                .map(|(p, t)| {
                    let args: Vec<String> = t.iter().map(|x| e.show(x)).collect();
                    format!("{}({})", e.name(p), args.join(","))
                })
                .collect()
        };
        (render(&model.facts), render(&model.undefined))
    }

    fn extra_row() -> ObjectRow {
        ObjectRow {
            id: "extra".into(),
            attrs: vec![
                ("location".into(), GcmValue::Id("Spine".into())),
                ("value".into(), GcmValue::Int(7)),
            ],
        }
    }

    fn existing_row(i: i64) -> ObjectRow {
        ObjectRow {
            id: format!("o{i}"),
            attrs: vec![
                ("location".into(), GcmValue::Id("Spine".into())),
                ("value".into(), GcmValue::Int(i)),
            ],
        }
    }

    /// The write-plane soundness contract: a history of loads and
    /// retractions published eagerly (incremental maintenance after every
    /// mutation) must end at the exact model a single cold evaluation of
    /// the same final engine state computes.
    #[test]
    fn incremental_publish_matches_cold_evaluation() {
        let drive = |eager: bool| {
            let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
            m.register(simple_wrapper("S1", "spines", "Spine", 3))
                .unwrap();
            m.define_view("big(X) :- X : spines, X[value -> V], V >= 1.")
                .unwrap();
            m.materialize_all().unwrap();
            if eager {
                m.publish().unwrap();
            }
            m.load_row("S1", "spines", &extra_row()).unwrap();
            if eager {
                assert!(m.publish_pending());
                m.publish().unwrap();
            }
            // inst + two mi facts per row.
            assert_eq!(m.retract_row("S1", "spines", &existing_row(2)).unwrap(), 3);
            m.publish().unwrap();
            assert!(!m.publish_pending());
            fact_dump(&m)
        };
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn retraction_publish_removes_derived_facts() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 3))
            .unwrap();
        m.define_view("big(X) :- X : spines, X[value -> V], V >= 1.")
            .unwrap();
        m.materialize_all().unwrap();
        assert_eq!(m.query_fl("big(X)").unwrap().len(), 2); // o1, o2
        let before = Arc::as_ptr(m.cached_model().unwrap());
        m.retract_row("S1", "spines", &existing_row(2)).unwrap();
        m.publish().unwrap();
        // The publish was incremental (a new model was derived from the
        // cached one, not recomputed after an invalidation)...
        assert_ne!(Arc::as_ptr(m.cached_model().unwrap()), before);
        // ...and the retracted row's own facts *and* its derived view
        // member are gone.
        assert_eq!(m.query_fl("X : spines").unwrap().len(), 2);
        assert_eq!(m.query_fl("big(X)").unwrap().len(), 1);
        // Retracting a never-loaded row is a no-op, not an error.
        assert_eq!(m.retract_row("S1", "spines", &existing_row(9)).unwrap(), 0);
    }

    /// A publish with nothing staged must not touch the cached model —
    /// pointer-identical `Arc`, no re-evaluation.
    #[test]
    fn quiet_publish_is_free() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 2))
            .unwrap();
        m.materialize_all().unwrap();
        m.publish().unwrap();
        let ptr = Arc::as_ptr(m.cached_model().unwrap());
        m.publish().unwrap();
        assert_eq!(Arc::as_ptr(m.cached_model().unwrap()), ptr);
        // `invalidate` is the escape hatch: the next publish recomputes.
        m.invalidate();
        assert!(m.publish_pending());
        m.publish().unwrap();
        assert_ne!(Arc::as_ptr(m.cached_model().unwrap()), ptr);
    }

    #[test]
    fn anchored_facts_visible_to_rules() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(simple_wrapper("S1", "spines", "Spine", 1))
            .unwrap();
        let rows = m.query_fl(r#"anchored("S1", C)"#).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(m.show(&rows[0][1]), "Spine");
    }
}
