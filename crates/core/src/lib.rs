//! # kind-core — the KIND model-based mediator
//!
//! The paper's primary contribution (Figure 2): a mediator where views
//! are defined and executed at the level of **conceptual models** rather
//! than raw semistructured data, and where **domain maps** correlate
//! sources from multiple worlds.
//!
//! The mediator itself is a thin facade over three layers (see
//! DESIGN.md):
//!
//! * [`wrapper`] — the source interface: CM export (in any plugged-in
//!   formalism), query capabilities (binding patterns for push-down),
//!   anchor declarations, and optional DM contributions;
//! * [`federation`] — the source-facing layer: registered wrappers,
//!   per-source policies, circuit breakers, the shared clock, and the
//!   single guarded-fetch path;
//! * [`knowledge`] — the semantic layer: domain map + resolved view,
//!   retained DL axioms, plug-in registry, semantic index, CMs, views;
//! * [`mediator`] — the facade composing the two with the eval/cache
//!   pipeline: registration, integrated views, model evaluation, source
//!   selection, lub computation;
//! * [`snapshot`] — immutable `Send + Sync` [`QuerySnapshot`]s for
//!   serving reads from many threads with no locks on the hot path;
//! * [`hub`] — the publication plane: an epoch-counted
//!   [`SnapshotHub`] slot that [`Mediator::publish`] installs into and
//!   readers load wait-free, pinning each request to one epoch;
//! * [`plan`] — the §5 four-step query plan with a full execution trace,
//!   and the Example 4 `protein_distribution` view.
//!
//! ```
//! use kind_core::{Mediator, MemoryWrapper, Capability, Anchor};
//! use kind_dm::{figures, ExecMode};
//! use kind_gcm::GcmValue;
//! use std::sync::Arc;
//!
//! let mut med = Mediator::new(figures::figure1(), ExecMode::Assertion);
//! let mut w = MemoryWrapper::new("SYNAPSE");
//! w.caps.push(Capability { class: "spines".into(), pushable: vec![] });
//! w.anchor_decls.push(Anchor::Fixed {
//!     class: "spines".into(),
//!     concept: "Spine".into(),
//! });
//! w.add_row("spines", "s1", vec![("volume", GcmValue::Int(7))]);
//! med.register(Arc::new(w)).unwrap();
//! // Source selection through the domain map: spines regulate ions.
//! assert_eq!(
//!     med.sources_below("Ion_Regulating_Component").unwrap(),
//!     vec!["SYNAPSE".to_string()]
//! );
//! ```
#![warn(missing_docs)]

pub mod error;
mod executor;
pub mod fault;
pub mod federation;
pub mod hub;
pub mod knowledge;
pub mod mediator;
pub mod plan;
pub mod query;
pub mod snapshot;
pub mod wrapper;

pub use error::{MediatorError, Result};
pub use fault::{
    AnswerReport, BreakerConfig, BreakerState, CircuitBreaker, Clock, Fault, FaultInjector,
    QuarantinedRow, QueryBudget, RetryPolicy, SourceError, SourceOutcome, SourcePolicy,
    SourceReport, VirtualClock,
};
pub use federation::{
    Federation, FetchBatch, FetchMode, FetchRequest, FetchSet, MediatorStats, RegisteredSource,
};
pub use hub::{PinnedSnapshot, SnapshotHub};
pub use knowledge::{DomainView, Knowledge};
pub use mediator::Mediator;
pub use plan::{
    distribution_eval, distribution_fetch, protein_distribution, run_section5, section5_eval,
    section5_fetch, DistributionFetch, DistributionRow, NeuroSchema, PlanTrace, Section5Fetch,
    Section5Query,
};
pub use query::AnswerSet;
pub use snapshot::{QuerySnapshot, SnapshotAnswer};
pub use wrapper::{
    Anchor, Capability, MemoryWrapper, ObjectRow, QueryTemplate, Selection, SourceQuery,
    StallAware, Submission, Wrapper,
};
