//! # kind-core — the KIND model-based mediator
//!
//! The paper's primary contribution (Figure 2): a mediator where views
//! are defined and executed at the level of **conceptual models** rather
//! than raw semistructured data, and where **domain maps** correlate
//! sources from multiple worlds.
//!
//! * [`wrapper`] — the source interface: CM export (in any plugged-in
//!   formalism), query capabilities (binding patterns for push-down),
//!   anchor declarations, and optional DM contributions;
//! * [`mediator`] — registration (plug-in translation, GCM application,
//!   semantic-index construction, DM refinement), integrated view
//!   definitions, model evaluation, capability-aware fetch, source
//!   selection, lub computation;
//! * [`plan`] — the §5 four-step query plan with a full execution trace,
//!   and the Example 4 `protein_distribution` view.
//!
//! ```
//! use kind_core::{Mediator, MemoryWrapper, Capability, Anchor};
//! use kind_dm::{figures, ExecMode};
//! use kind_gcm::GcmValue;
//! use std::rc::Rc;
//!
//! let mut med = Mediator::new(figures::figure1(), ExecMode::Assertion);
//! let mut w = MemoryWrapper::new("SYNAPSE");
//! w.caps.push(Capability { class: "spines".into(), pushable: vec![] });
//! w.anchor_decls.push(Anchor::Fixed {
//!     class: "spines".into(),
//!     concept: "Spine".into(),
//! });
//! w.add_row("spines", "s1", vec![("volume", GcmValue::Int(7))]);
//! med.register(Rc::new(w)).unwrap();
//! // Source selection through the domain map: spines regulate ions.
//! assert_eq!(
//!     med.sources_below("Ion_Regulating_Component").unwrap(),
//!     vec!["SYNAPSE".to_string()]
//! );
//! ```
#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod mediator;
pub mod plan;
pub mod query;
pub mod wrapper;

pub use error::{MediatorError, Result};
pub use fault::{
    AnswerReport, BreakerConfig, BreakerState, CircuitBreaker, Clock, Fault, FaultInjector,
    QuarantinedRow, RetryPolicy, SourceError, SourceOutcome, SourcePolicy, SourceReport,
    VirtualClock,
};
pub use mediator::{Mediator, MediatorStats, RegisteredSource};
pub use plan::{
    protein_distribution, run_section5, DistributionRow, NeuroSchema, PlanTrace, Section5Query,
};
pub use query::AnswerSet;
pub use wrapper::{
    Anchor, Capability, MemoryWrapper, ObjectRow, QueryTemplate, Selection, SourceQuery, Wrapper,
};
