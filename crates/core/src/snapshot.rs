//! Immutable, thread-safe query snapshots.
//!
//! [`QuerySnapshot`] is the mediator's answer to "serve reads from N
//! threads": [`crate::Mediator::snapshot`] freezes the evaluated state —
//! the GCM base (rules + interner), the evaluated [`Model`], and the
//! resolved domain-map view — behind `Arc`s, and the snapshot then
//! answers queries with **no locks on the hot path**:
//!
//! * [`QuerySnapshot::query_fl`] parses the pattern into a private
//!   scratch symbol table and *remaps* it into the frozen interner
//!   (`FLogic::query_frozen`), so it never mutates shared state — `&self`
//!   all the way down. A constant the snapshot has never seen simply
//!   matches nothing.
//! * [`QuerySnapshot::answer`] evaluates a one-off rule on a per-call
//!   **clone** of the frozen base (per-thread scratch space), seeded from
//!   the shared model so only the rule's own stratum is computed.
//!
//! The only shared mutable state anywhere below a snapshot is the
//! `RwLock`-backed closure memo tables inside [`Resolved`] — concurrent
//! readers warm those cooperatively, and a lost race merely recomputes a
//! deterministic value.
//!
//! Snapshots are decoupled from the mediator that produced them: the
//! mediator may keep registering sources, loading rows, and rebuilding
//! while old snapshots keep serving the state they captured (snapshot
//! isolation for reads). Publishing a fresher view is just
//! `mediator.snapshot()` again.

use crate::error::{MediatorError, Result};
use crate::knowledge::DomainView;
use crate::plan::{DistributionFetch, NeuroSchema, PlanTrace, Section5Fetch};
use kind_datalog::{EvalOptions, EvalStats, Model, Term};
use kind_dm::{DomainMap, Resolved, SemanticIndex};
use kind_flogic::{parse_fl_program, Molecule};
use kind_gcm::GcmBase;
use std::sync::Arc;

/// The result of [`QuerySnapshot::answer_with`]: rendered answer rows
/// plus the evaluation counters a serving layer wants to report per
/// response (see `crates/server`).
#[derive(Debug, Clone)]
pub struct SnapshotAnswer {
    /// Rendered rows in head-variable order, sorted.
    pub rows: Vec<Vec<String>>,
    /// Evaluation statistics of the per-call scratch run.
    pub stats: EvalStats,
    /// Whether the magic-sets demand rewrite fired for this goal.
    pub magic_fired: bool,
    /// Whether the cost model declined an otherwise applicable rewrite.
    pub magic_declined: bool,
}

/// A frozen, `Send + Sync` view of an evaluated mediator: shared base +
/// model + domain map + resolved closures, read-only query API. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    base: Arc<GcmBase>,
    model: Arc<Model>,
    dm: Arc<DomainMap>,
    resolved: Arc<Resolved>,
    index: Arc<SemanticIndex>,
    eval_options: EvalOptions,
}

// The whole point of a snapshot: hand it to N worker threads. Enforced
// here at compile time (and again from the integration tests).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QuerySnapshot>();
};

impl QuerySnapshot {
    pub(crate) fn new(
        base: Arc<GcmBase>,
        model: Arc<Model>,
        dm: Arc<DomainMap>,
        resolved: Arc<Resolved>,
        index: Arc<SemanticIndex>,
        eval_options: EvalOptions,
    ) -> Self {
        QuerySnapshot {
            base,
            model,
            dm,
            resolved,
            index,
            eval_options,
        }
    }

    /// The frozen evaluated model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The frozen base (rules + interner) backing this snapshot.
    pub fn base(&self) -> &GcmBase {
        &self.base
    }

    /// The semantic index captured by this snapshot: which sources hold
    /// data at which domain-map concepts, frozen at snapshot time.
    pub fn index(&self) -> &SemanticIndex {
        &self.index
    }

    /// The domain map captured by this snapshot.
    pub fn dm(&self) -> &DomainMap {
        &self.dm
    }

    /// The resolved domain-map view captured by this snapshot (its memo
    /// tables are `RwLock`-backed, so concurrent probes are fine).
    pub fn resolved(&self) -> &Resolved {
        &self.resolved
    }

    /// The read-only domain-knowledge slice the **evaluate phase**
    /// consumes — the same view [`crate::Knowledge::domain_view`] hands
    /// out, so plan evaluation is literally the same code either way.
    pub fn domain_view(&self) -> DomainView<'_> {
        DomainView::new(&self.dm, &self.resolved)
    }

    /// The **evaluate phase** of the §5 plan against this snapshot: step
    /// 4 (lub root + downward-closure aggregation) over a fetch artifact
    /// produced earlier by [`crate::plan::section5_fetch`]. Pure and
    /// `&self` — no wrapper is contacted, so any number of threads can
    /// replay warm plans concurrently, and the resulting [`PlanTrace`]
    /// is identical to what the `&mut Mediator` path
    /// ([`crate::plan::run_section5`]) produced from the same fetch.
    pub fn run_section5(&self, schema: &NeuroSchema, fetched: &Section5Fetch) -> Result<PlanTrace> {
        crate::plan::section5_eval(&self.domain_view(), schema, fetched)
    }

    /// The **evaluate phase** of the Example 4 `protein_distribution`
    /// view against this snapshot (see [`Self::run_section5`] for the
    /// pattern; the fetch artifact comes from
    /// [`crate::plan::distribution_fetch`]).
    pub fn protein_distribution(
        &self,
        schema: &NeuroSchema,
        fetched: &DistributionFetch,
    ) -> Result<Vec<(String, i64)>> {
        crate::plan::distribution_eval(&self.domain_view(), schema, fetched)
    }

    /// The evaluation options captured at snapshot time (used by
    /// [`Self::answer`]'s per-call evaluation).
    pub fn eval_options(&self) -> &EvalOptions {
        &self.eval_options
    }

    /// Runs an FL query pattern (e.g. `"X : Neuron"`) against the frozen
    /// model. Lock-free and allocation-light: the pattern is parsed into
    /// a scratch symbol table and remapped into the frozen interner, so
    /// `&self` suffices and threads never contend. Patterns mentioning
    /// symbols the snapshot has never seen yield no rows.
    pub fn query_fl(&self, pattern: &str) -> Result<Vec<Vec<Term>>> {
        self.base
            .flogic()
            .query_frozen(&self.model, pattern)
            .map_err(MediatorError::from)
    }

    /// Renders a term from a query result using the frozen symbol table.
    pub fn show(&self, t: &Term) -> String {
        self.base.flogic().engine().show(t)
    }

    /// [`Self::query_fl`] with every row pre-rendered — convenient for
    /// cross-thread result comparison and for callers that do not want to
    /// hold `Term`s.
    pub fn query_fl_rendered(&self, pattern: &str) -> Result<Vec<Vec<String>>> {
        let mut rows: Vec<Vec<String>> = self
            .query_fl(pattern)?
            .iter()
            .map(|r| r.iter().map(|t| self.show(t)).collect())
            .collect();
        rows.sort();
        Ok(rows)
    }

    /// Answers a one-off conjunctive query given as a single FL rule
    /// (same shape as [`crate::Mediator::answer`]), evaluated **over the
    /// snapshot's materialized data** — no sources are contacted; rows
    /// fetched before the snapshot was taken are what there is to query.
    ///
    /// Each call clones the frozen base into private scratch space, loads
    /// the rule there, and evaluates it seeded from the shared model, so
    /// strata the rule does not touch are never recomputed and concurrent
    /// callers share nothing mutable. Returns rendered rows (sorted), in
    /// head-variable order.
    pub fn answer(&self, rule_text: &str) -> Result<Vec<Vec<String>>> {
        self.answer_with(rule_text, &self.eval_options)
            .map(|a| a.rows)
    }

    /// [`Self::answer`] with caller-supplied evaluation options and the
    /// per-call evaluation counters returned alongside the rows. This is
    /// the serving-plane entry point: a server thread swaps in a
    /// per-request [`kind_datalog::CancelToken`] / budget while keeping
    /// everything else from the snapshot's frozen options, and reports
    /// the [`EvalStats`] and magic-sets outcome with the response.
    pub fn answer_with(&self, rule_text: &str, opts: &EvalOptions) -> Result<SnapshotAnswer> {
        // Validate the rule's shape with a scratch interner first, like
        // `Mediator::answer` does.
        let mut scratch = kind_datalog::Interner::new();
        let clauses = parse_fl_program(rule_text, &mut scratch).map_err(MediatorError::from)?;
        let [clause] = clauses.as_slice() else {
            return Err(MediatorError::Datalog(kind_datalog::DatalogError::Parse {
                offset: 0,
                line: 0,
                message: format!("answer() takes exactly one rule, got {}", clauses.len()),
            }));
        };
        let Molecule::Plain(head) = &clause.head else {
            return Err(MediatorError::Datalog(kind_datalog::DatalogError::Parse {
                offset: 0,
                line: 0,
                message: "answer() rule head must be a plain predicate".to_string(),
            }));
        };
        let head_pred = scratch.resolve(head.pred).to_string();
        // Per-call scratch clone of the frozen base: loading the rule
        // interns new symbols *there*, never in the shared snapshot.
        let mut work = (*self.base).clone();
        work.flogic_mut().load(rule_text)?;
        // Seeding from the cached model is unsound if the head predicate
        // already has base facts (the seed would double as input); fall
        // back to a full evaluation on the clone in that case.
        let collides = self
            .base
            .flogic()
            .engine()
            .lookup(&head_pred)
            .is_some_and(|p| self.model.facts.relation(p).is_some_and(|r| !r.is_empty()));
        // The goal's constant arguments live in the scratch interner; map
        // them into the work clone so the pattern (and the magic-sets
        // demand seeds derived from it) bind correctly.
        let goal_args: Vec<kind_datalog::Term> = head
            .args
            .iter()
            .map(|t| crate::mediator::reintern_term(&scratch, work.flogic_mut().engine_mut(), t))
            .collect();
        let goal = kind_datalog::Atom::new(
            work.flogic()
                .engine()
                .lookup(&head_pred)
                .expect("head predicate interned by rule load"),
            goal_args,
        );
        let model = if collides {
            work.flogic_mut()
                .run_for_query(&goal, opts)
                .map_err(MediatorError::from)?
        } else {
            work.flogic_mut()
                .run_for_query_seeded(&goal, &self.model, opts)
                .map_err(MediatorError::from)?
        };
        let mut rows: Vec<Vec<String>> = model
            .query(&goal)
            .iter()
            .map(|r| {
                r.iter()
                    .map(|t| work.flogic().engine().show(t))
                    .collect::<Vec<String>>()
            })
            .collect();
        rows.sort();
        Ok(SnapshotAnswer {
            rows,
            stats: model.stats,
            magic_fired: model.profile.magic_fired,
            magic_declined: model.profile.magic_declined,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::mediator::Mediator;
    use crate::wrapper::{Anchor, Capability, MemoryWrapper, ObjectRow};
    use kind_dm::{figures, ExecMode};
    use kind_gcm::GcmValue;
    use std::sync::Arc;

    fn spine_wrapper(name: &str, n: usize) -> Arc<MemoryWrapper> {
        let mut w = MemoryWrapper::new(name);
        w.caps.push(Capability {
            class: "spines".into(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: "spines".into(),
            concept: "Spine".into(),
        });
        for i in 0..n {
            w.add_row(
                "spines",
                &format!("{name}r{i}"),
                vec![("len", GcmValue::Int(i as i64))],
            );
        }
        Arc::new(w)
    }

    fn mediator() -> Mediator {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(spine_wrapper("A", 3)).unwrap();
        m.materialize_all().unwrap();
        m
    }

    /// Two snapshots with no intervening write share *every* component —
    /// republish is pointer-copying, not cloning.
    #[test]
    fn quiet_snapshots_share_all_components() {
        let mut m = mediator();
        let s1 = m.snapshot().unwrap();
        let s2 = m.snapshot().unwrap();
        assert!(std::ptr::eq(s1.model(), s2.model()));
        assert!(std::ptr::eq(s1.base(), s2.base()));
        assert!(std::ptr::eq(s1.dm(), s2.dm()));
        assert!(std::ptr::eq(s1.resolved(), s2.resolved()));
        assert!(std::ptr::eq(s1.index(), s2.index()));
    }

    /// A fact write invalidates exactly the components it touches (base
    /// clone + model); the knowledge-layer structures stay shared, and the
    /// old snapshot keeps serving its frozen state.
    #[test]
    fn fact_write_degrades_sharing_only_where_it_lands() {
        let mut m = mediator();
        let s1 = m.snapshot().unwrap();
        let row = ObjectRow {
            id: "fresh".into(),
            attrs: vec![("len".into(), GcmValue::Int(42))],
        };
        m.load_row("A", "spines", &row).unwrap();
        let s2 = m.snapshot().unwrap();
        assert!(!std::ptr::eq(s1.model(), s2.model()));
        assert!(!std::ptr::eq(s1.base(), s2.base()));
        assert!(std::ptr::eq(s1.dm(), s2.dm()));
        assert!(std::ptr::eq(s1.resolved(), s2.resolved()));
        assert!(std::ptr::eq(s1.index(), s2.index()));
        // Snapshot isolation: the older snapshot still answers from the
        // state it captured.
        assert_eq!(s1.query_fl("X : spines").unwrap().len(), 3);
        assert_eq!(s2.query_fl("X : spines").unwrap().len(), 4);
    }

    /// Registration rebuilds the semantic index (new anchors) but reuses
    /// the resolved domain-map view when the registration did not refine
    /// the map's structure.
    #[test]
    fn registration_updates_index_but_reuses_resolved() {
        let mut m = mediator();
        let s1 = m.snapshot().unwrap();
        m.register(spine_wrapper("B", 2)).unwrap();
        let s2 = m.snapshot().unwrap();
        assert!(!std::ptr::eq(s1.index(), s2.index()));
        assert!(std::ptr::eq(s1.dm(), s2.dm()));
        assert!(std::ptr::eq(s1.resolved(), s2.resolved()));
    }
}
