//! Error type for the mediator.

use crate::fault::SourceError;
use std::fmt;

/// Errors raised by mediator operations.
#[derive(Debug)]
pub enum MediatorError {
    /// From the GCM layer.
    Gcm(kind_gcm::GcmError),
    /// From the domain-map layer.
    Dm(kind_dm::DmError),
    /// From the deductive engine.
    Datalog(kind_datalog::DatalogError),
    /// A source failed at the wrapper boundary (after retries, or
    /// because its circuit breaker was open).
    Source {
        /// The failing source.
        name: String,
        /// The underlying typed failure.
        error: SourceError,
    },
    /// A source name was registered twice.
    DuplicateSource {
        /// The offending name.
        name: String,
    },
    /// No source with that id/name.
    UnknownSource {
        /// The requested source.
        name: String,
    },
    /// A query referenced a class no registered source exports.
    UnknownClass {
        /// The class name.
        class: String,
    },
    /// A query referenced a concept absent from the domain map.
    UnknownConcept {
        /// The concept name.
        name: String,
    },
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::Gcm(e) => write!(f, "gcm: {e}"),
            MediatorError::Dm(e) => write!(f, "domain map: {e}"),
            MediatorError::Datalog(e) => write!(f, "datalog: {e}"),
            MediatorError::Source { name, error } => {
                write!(f, "source `{name}`: {error}")
            }
            MediatorError::DuplicateSource { name } => {
                write!(f, "source `{name}` already registered")
            }
            MediatorError::UnknownSource { name } => write!(f, "unknown source `{name}`"),
            MediatorError::UnknownClass { class } => write!(f, "no source exports class `{class}`"),
            MediatorError::UnknownConcept { name } => {
                write!(f, "concept `{name}` is not in the domain map")
            }
        }
    }
}

impl std::error::Error for MediatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MediatorError::Gcm(e) => Some(e),
            MediatorError::Dm(e) => Some(e),
            MediatorError::Datalog(e) => Some(e),
            MediatorError::Source { error, .. } => Some(error),
            // Leaf variants: the message carries everything there is.
            MediatorError::DuplicateSource { .. }
            | MediatorError::UnknownSource { .. }
            | MediatorError::UnknownClass { .. }
            | MediatorError::UnknownConcept { .. } => None,
        }
    }
}

impl From<kind_gcm::GcmError> for MediatorError {
    fn from(e: kind_gcm::GcmError) -> Self {
        MediatorError::Gcm(e)
    }
}

impl From<kind_dm::DmError> for MediatorError {
    fn from(e: kind_dm::DmError) -> Self {
        MediatorError::Dm(e)
    }
}

impl From<kind_datalog::DatalogError> for MediatorError {
    fn from(e: kind_datalog::DatalogError) -> Self {
        MediatorError::Datalog(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MediatorError>;
