//! The **federation layer**: registered sources and everything about
//! *talking to them* — wrappers, per-source resilience policies, circuit
//! breakers, the shared clock, fetch statistics, and the degradation
//! report of the operation in flight.
//!
//! This is the bottom layer of the mediator split (see DESIGN.md):
//! [`Federation`] owns the wrapper boundary, [`crate::Knowledge`] owns the
//! semantic state (domain map, index, CMs, views), and
//! [`crate::Mediator`] composes the two with the eval/cache pipeline.
//!
//! All retry/breaker/quarantine semantics live in **one** place —
//! [`Federation::fetch`] — so the degradable entry points
//! ([`crate::Mediator::fetch`], [`crate::Mediator::fetch_degraded`],
//! [`crate::Mediator::materialize_all`], [`crate::Mediator::answer`], the
//! §5 plan) cannot drift apart.

use crate::error::{MediatorError, Result};
use crate::fault::{
    AnswerReport, BreakerState, CircuitBreaker, Clock, QuarantinedRow, SourceError, SourceOutcome,
    SourcePolicy, VirtualClock,
};
use crate::wrapper::{Capability, ObjectRow, SourceQuery, Wrapper};
use kind_dm::SourceId;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Bookkeeping for one registered source.
pub struct RegisteredSource {
    /// The mediator-assigned id.
    pub id: SourceId,
    /// The source name.
    pub name: String,
    /// Declared capabilities.
    pub caps: Vec<Capability>,
    /// The wrapper (shared, thread-safe).
    pub wrapper: Arc<dyn Wrapper>,
    /// Classes this source exports rows for (from capabilities).
    pub classes: Vec<String>,
    /// Attributes declared per class in the translated CM (`method`
    /// schema decls). An empty/absent set means the CM is schema-less
    /// for that class and attribute names are not checked.
    pub declared_attrs: HashMap<String, BTreeSet<String>>,
    /// Anchor attributes every row of a class must carry (its `ByAttr`
    /// anchors).
    pub anchor_attrs: HashMap<String, Vec<String>>,
}

impl RegisteredSource {
    /// Validates a shipped row against this source's exported CM:
    /// the class must be exported, the object id non-empty, every
    /// `ByAttr` anchor attribute present, and (when the CM declares a
    /// schema for the class) every attribute declared.
    pub fn validate_row(&self, class: &str, row: &ObjectRow) -> std::result::Result<(), String> {
        if !self.classes.iter().any(|c| c == class) {
            return Err(format!(
                "class `{class}` is not exported by `{}`",
                self.name
            ));
        }
        if row.id.trim().is_empty() {
            return Err("empty object id".into());
        }
        if let Some(anchor_attrs) = self.anchor_attrs.get(class) {
            for attr in anchor_attrs {
                if row.get(attr).is_none() {
                    return Err(format!("missing anchor attribute `{attr}`"));
                }
            }
        }
        if let Some(declared) = self.declared_attrs.get(class) {
            if !declared.is_empty() {
                for (attr, _) in &row.attrs {
                    if !declared.contains(attr) {
                        return Err(format!(
                            "attribute `{attr}` is not declared in the exported CM"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for RegisteredSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredSource")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("classes", &self.classes)
            .finish()
    }
}

/// Cumulative query-processing statistics (for the benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediatorStats {
    /// Wrapper queries issued (every physical attempt counts).
    pub source_queries: usize,
    /// Rows shipped from wrappers to the mediator.
    pub rows_shipped: usize,
    /// Rows surviving mediator-side residual filters.
    pub rows_kept: usize,
    /// Retry attempts beyond the first, across all fetches.
    pub retries: usize,
    /// Fetches that ultimately failed or were skipped by a breaker.
    pub failures: usize,
}

/// The outcome of one guarded (retry/breaker-aware) wrapper query.
enum GuardedFetch {
    /// Rows arrived, possibly after retries.
    Rows {
        /// The shipped rows.
        rows: Vec<ObjectRow>,
        /// Physical attempts made (1 = no retry).
        attempts: u32,
    },
    /// The retry budget was exhausted (or the breaker opened mid-retry).
    Failed {
        /// Physical attempts made.
        attempts: u32,
        /// The final error.
        error: SourceError,
    },
    /// The breaker was open: the source was never contacted.
    Skipped,
}

/// The source-facing layer of the mediator: registered wrappers plus the
/// resilience machinery guarding every fetch. See the module docs.
#[derive(Debug)]
pub struct Federation {
    sources: Vec<RegisteredSource>,
    clock: Arc<dyn Clock>,
    default_policy: SourcePolicy,
    policies: HashMap<String, SourcePolicy>,
    breakers: HashMap<String, CircuitBreaker>,
    report: AnswerReport,
    /// Query-processing statistics.
    pub stats: MediatorStats,
}

impl Default for Federation {
    fn default() -> Self {
        Self::new()
    }
}

impl Federation {
    /// An empty federation with a fresh [`VirtualClock`] and default
    /// policies.
    pub fn new() -> Self {
        Federation {
            sources: Vec::new(),
            clock: Arc::new(VirtualClock::new()),
            default_policy: SourcePolicy::default(),
            policies: HashMap::new(),
            breakers: HashMap::new(),
            report: AnswerReport::default(),
            stats: MediatorStats::default(),
        }
    }

    /// Registered sources.
    pub fn sources(&self) -> &[RegisteredSource] {
        &self.sources
    }

    /// Looks up a registered source by name.
    pub fn source(&self, name: &str) -> Result<&RegisteredSource> {
        self.sources
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| MediatorError::UnknownSource {
                name: name.to_string(),
            })
    }

    /// The id the next registered source will get.
    pub(crate) fn next_id(&self) -> SourceId {
        SourceId(self.sources.len() as u32)
    }

    /// Whether a source with this name is already registered.
    pub(crate) fn has_source(&self, name: &str) -> bool {
        self.sources.iter().any(|s| s.name == name)
    }

    /// Adds a fully-built source record (the mediator's `register` builds
    /// it after translating the CM and anchoring the data).
    pub(crate) fn add_source(&mut self, src: RegisteredSource) {
        self.sources.push(src);
    }

    /// The federation's clock (share it with [`crate::FaultInjector`]s so
    /// injected delays are visible to timeout checks).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Replaces the clock (e.g. with a pre-advanced [`VirtualClock`]).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Sets the policy used for sources without a per-source override.
    pub fn set_default_policy(&mut self, policy: SourcePolicy) {
        self.default_policy = policy;
    }

    /// Sets a per-source retry/timeout/breaker policy. Any existing
    /// breaker for the source is reset so the new configuration takes
    /// effect immediately.
    pub fn set_source_policy(&mut self, name: impl Into<String>, policy: SourcePolicy) {
        let name = name.into();
        self.breakers.remove(&name);
        self.policies.insert(name, policy);
    }

    /// The policy governing `name` (per-source override or default).
    pub fn policy_for(&self, name: &str) -> &SourcePolicy {
        self.policies.get(name).unwrap_or(&self.default_policy)
    }

    /// The breaker state for a source, once it has been fetched from at
    /// least once.
    pub fn breaker_state(&self, name: &str) -> Option<BreakerState> {
        self.breakers.get(name).map(|b| b.state())
    }

    /// Force-closes a source's breaker (operator override).
    pub fn reset_breaker(&mut self, name: &str) {
        self.breakers.remove(name);
    }

    /// The degradation report of the most recent degradable operation.
    pub fn report(&self) -> &AnswerReport {
        &self.report
    }

    /// Starts a fresh report (each degradable operation calls this).
    pub(crate) fn begin_report(&mut self) {
        self.report = AnswerReport::default();
    }

    /// The names of sources that export `class` (by declared capability).
    pub fn sources_exporting(&self, class: &str) -> Vec<String> {
        self.sources
            .iter()
            .filter(|s| s.classes.iter().any(|c| c == class))
            .map(|s| s.name.clone())
            .collect()
    }

    /// Runs one wrapper query under the source's policy: breaker check,
    /// per-attempt virtual-time budget, bounded retries with
    /// deterministic backoff. Every attempt updates `stats` and the
    /// breaker; the caller folds the outcome into the report.
    fn guarded_query(
        &mut self,
        name: &str,
        wrapper: &Arc<dyn Wrapper>,
        q: &SourceQuery,
    ) -> GuardedFetch {
        let policy = self.policy_for(name).clone();
        self.breakers
            .entry(name.to_string())
            .or_insert_with(|| CircuitBreaker::new(policy.breaker.clone()));
        let clock = Arc::clone(&self.clock);
        let mut attempts = 0u32;
        let mut last_error: Option<SourceError> = None;
        loop {
            let now = clock.now_ms();
            let allowed = self
                .breakers
                .get_mut(name)
                .expect("breaker inserted above")
                .allows(now);
            if !allowed {
                self.stats.failures += 1;
                return match last_error {
                    // The breaker opened between retry attempts: report
                    // the failure that opened it.
                    Some(error) => GuardedFetch::Failed { attempts, error },
                    None => GuardedFetch::Skipped,
                };
            }
            attempts += 1;
            self.stats.source_queries += 1;
            let started = clock.now_ms();
            let result = wrapper.query(q).and_then(|rows| {
                let elapsed = clock.now_ms().saturating_sub(started);
                if policy.timeout_ms > 0 && elapsed > policy.timeout_ms {
                    Err(SourceError::Timeout {
                        elapsed_ms: elapsed,
                        budget_ms: policy.timeout_ms,
                    })
                } else {
                    Ok(rows)
                }
            });
            match result {
                Ok(rows) => {
                    self.breakers
                        .get_mut(name)
                        .expect("breaker inserted above")
                        .record_success();
                    self.stats.rows_shipped += rows.len();
                    self.stats.retries += (attempts - 1) as usize;
                    return GuardedFetch::Rows { rows, attempts };
                }
                Err(error) => {
                    let now = clock.now_ms();
                    self.breakers
                        .get_mut(name)
                        .expect("breaker inserted above")
                        .record_failure(now);
                    if attempts >= policy.retry.max_attempts {
                        self.stats.retries += (attempts - 1) as usize;
                        self.stats.failures += 1;
                        return GuardedFetch::Failed { attempts, error };
                    }
                    last_error = Some(error);
                    clock.advance_ms(policy.retry.backoff_ms(attempts));
                }
            }
        }
    }

    /// Capability-aware, fault-tolerant fetch: pushes the pushable
    /// selections to the wrapper (with retries, timeout budget, and
    /// circuit breaker per the source's [`SourcePolicy`]), quarantines
    /// rows that violate the source's exported CM, and applies the
    /// remaining selections as a residual filter mediator-side.
    ///
    /// This is the **single** guarded-fetch path — every degradable
    /// operation funnels through it, so retry/breaker/quarantine
    /// semantics cannot drift between entry points.
    ///
    /// A source that exhausts its retry budget — or whose breaker is
    /// open — is a typed [`MediatorError::Source`] error; the outcome is
    /// also folded into the current [`Self::report`].
    pub fn fetch(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        let src = self.source(source_name)?;
        if !src.classes.iter().any(|c| c == &q.class) {
            return Err(MediatorError::UnknownClass {
                class: q.class.clone(),
            });
        }
        let wrapper = Arc::clone(&src.wrapper);
        match self.guarded_query(source_name, &wrapper, q) {
            GuardedFetch::Rows { rows, attempts } => {
                // CM validation: quarantine, don't abort.
                let mut kept = Vec::with_capacity(rows.len());
                let mut quarantined = Vec::new();
                {
                    let src = self.source(source_name)?;
                    for row in rows {
                        match src.validate_row(&q.class, &row) {
                            Ok(()) => kept.push(row),
                            Err(reason) => quarantined.push(QuarantinedRow {
                                source: source_name.to_string(),
                                class: q.class.clone(),
                                row_id: row.id.clone(),
                                reason,
                            }),
                        }
                    }
                }
                for qr in quarantined {
                    self.report.record_quarantine(qr);
                }
                let kept: Vec<ObjectRow> = kept
                    .into_iter()
                    .filter(|r| {
                        q.selections
                            .iter()
                            .all(|s| r.get(&s.attr) == Some(&s.value))
                    })
                    .collect();
                self.stats.rows_kept += kept.len();
                let outcome = if attempts > 1 {
                    SourceOutcome::Retried {
                        retries: attempts - 1,
                    }
                } else {
                    SourceOutcome::Ok
                };
                self.report
                    .record_fetch(source_name, attempts as usize, kept.len(), outcome);
                Ok(kept)
            }
            GuardedFetch::Failed { attempts, error } => {
                self.report.record_fetch(
                    source_name,
                    attempts as usize,
                    0,
                    SourceOutcome::Failed {
                        error: error.clone(),
                    },
                );
                Err(MediatorError::Source {
                    name: source_name.to_string(),
                    error,
                })
            }
            GuardedFetch::Skipped => {
                self.report
                    .record_fetch(source_name, 0, 0, SourceOutcome::SkippedByBreaker);
                Err(MediatorError::Source {
                    name: source_name.to_string(),
                    error: SourceError::Unavailable {
                        reason: "circuit breaker open; source not contacted".into(),
                    },
                })
            }
        }
    }

    /// Like [`Self::fetch`], but a source-level failure degrades to an
    /// empty row set instead of an error (the failure stays visible in
    /// [`Self::report`]). Mediator-level errors (unknown source/class)
    /// still propagate.
    pub fn fetch_degraded(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        match self.fetch(source_name, q) {
            Ok(rows) => Ok(rows),
            Err(MediatorError::Source { .. }) => Ok(Vec::new()),
            Err(other) => Err(other),
        }
    }

    /// Calls a declared query template on a source (§2's "query
    /// templates" capability form): expands the template with the given
    /// arguments and fetches through the capability-aware path.
    pub fn call_template(
        &mut self,
        source_name: &str,
        template: &str,
        args: &[kind_gcm::GcmValue],
    ) -> Result<Vec<ObjectRow>> {
        let src = self.source(source_name)?;
        let t = src
            .wrapper
            .templates()
            .into_iter()
            .find(|t| t.name == template)
            .ok_or_else(|| MediatorError::UnknownClass {
                class: format!("{source_name}::{template}"),
            })?;
        let q = t.expand(args).ok_or_else(|| MediatorError::UnknownClass {
            class: format!(
                "{source_name}::{template}/{} called with {} args",
                t.params.len(),
                args.len()
            ),
        })?;
        self.fetch(source_name, &q)
    }
}
