//! The **federation layer**: registered sources and everything about
//! *talking to them* — wrappers, per-source resilience policies, circuit
//! breakers, the shared clock, fetch statistics, and the degradation
//! report of the operation in flight.
//!
//! This is the bottom layer of the mediator split (see DESIGN.md):
//! [`Federation`] owns the wrapper boundary, [`crate::Knowledge`] owns the
//! semantic state (domain map, index, CMs, views), and
//! [`crate::Mediator`] composes the two with the eval/cache pipeline.
//!
//! All retry/breaker/quarantine semantics live in **one** place — the
//! private `execute_fetch` body shared by the serial path
//! ([`Federation::fetch`]) and every worker of the parallel fetch plane
//! ([`Federation::fetch_parallel`]) — so the degradable entry points
//! ([`crate::Mediator::fetch`], [`crate::Mediator::fetch_degraded`],
//! [`crate::Mediator::materialize_all`], [`crate::Mediator::answer`], the
//! §5 plan) cannot drift apart.
//!
//! ## The fetch plane
//!
//! [`Federation::fetch_parallel`] is the entry point of the **fetch
//! phase** of the two-phase pipeline (see DESIGN.md): a caller describes
//! everything a plan needs from sources as a list of [`FetchRequest`]s,
//! the federation executes them with one worker job per source on a
//! scoped thread pool (`std::thread::scope`, no extra deps), and the
//! results come back as a [`FetchSet`] whose batches are in request
//! order regardless of completion order. Determinism comes from the
//! **merge order**, not from serial fetching: each source's requests run
//! serially inside its own job (so per-source breaker/retry/fault
//! schedules are identical to a serial run), and rows, statistics, and
//! report entries are folded job-by-job in first-appearance (i.e.
//! registration) order after every worker has joined.

use crate::error::{MediatorError, Result};
use crate::fault::{
    AnswerReport, BreakerState, CircuitBreaker, Clock, QuarantinedRow, QueryBudget, SourceError,
    SourceOutcome, SourcePolicy, VirtualClock,
};
use crate::wrapper::{Capability, ObjectRow, SourceQuery, Wrapper};
use kind_datalog::CancelToken;
use kind_dm::SourceId;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Bookkeeping for one registered source.
pub struct RegisteredSource {
    /// The mediator-assigned id.
    pub id: SourceId,
    /// The source name.
    pub name: String,
    /// Declared capabilities.
    pub caps: Vec<Capability>,
    /// The wrapper (shared, thread-safe).
    pub wrapper: Arc<dyn Wrapper>,
    /// Classes this source exports rows for (from capabilities).
    pub classes: Vec<String>,
    /// Attributes declared per class in the translated CM (`method`
    /// schema decls). An empty/absent set means the CM is schema-less
    /// for that class and attribute names are not checked.
    pub declared_attrs: HashMap<String, BTreeSet<String>>,
    /// Anchor attributes every row of a class must carry (its `ByAttr`
    /// anchors).
    pub anchor_attrs: HashMap<String, Vec<String>>,
}

impl RegisteredSource {
    /// Validates a shipped row against this source's exported CM:
    /// the class must be exported, the object id non-empty, every
    /// `ByAttr` anchor attribute present, and (when the CM declares a
    /// schema for the class) every attribute declared.
    pub fn validate_row(&self, class: &str, row: &ObjectRow) -> std::result::Result<(), String> {
        if !self.classes.iter().any(|c| c == class) {
            return Err(format!(
                "class `{class}` is not exported by `{}`",
                self.name
            ));
        }
        if row.id.trim().is_empty() {
            return Err("empty object id".into());
        }
        if let Some(anchor_attrs) = self.anchor_attrs.get(class) {
            for attr in anchor_attrs {
                if row.get(attr).is_none() {
                    return Err(format!("missing anchor attribute `{attr}`"));
                }
            }
        }
        if let Some(declared) = self.declared_attrs.get(class) {
            if !declared.is_empty() {
                for (attr, _) in &row.attrs {
                    if !declared.contains(attr) {
                        return Err(format!(
                            "attribute `{attr}` is not declared in the exported CM"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for RegisteredSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredSource")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("classes", &self.classes)
            .finish()
    }
}

/// Cumulative query-processing statistics (for the benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediatorStats {
    /// Wrapper queries issued (every physical attempt counts).
    pub source_queries: usize,
    /// Rows shipped from wrappers to the mediator.
    pub rows_shipped: usize,
    /// Rows surviving mediator-side residual filters.
    pub rows_kept: usize,
    /// Retry attempts beyond the first, across all fetches.
    pub retries: usize,
    /// Fetches that ultimately failed or were skipped by a breaker.
    pub failures: usize,
}

impl MediatorStats {
    /// Folds another counter set into this one (the parallel fetch plane
    /// sums per-worker deltas into the federation's totals).
    pub fn merge(&mut self, other: &MediatorStats) {
        self.source_queries += other.source_queries;
        self.rows_shipped += other.rows_shipped;
        self.rows_kept += other.rows_kept;
        self.retries += other.retries;
        self.failures += other.failures;
    }
}

/// One unit of the fetch phase: a (possibly selection-pushing) query
/// against one named source. Plans describe their source needs as a list
/// of these and hand them to [`Federation::fetch_parallel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchRequest {
    /// The source to contact.
    pub source: String,
    /// The capability-aware query to run against it.
    pub query: SourceQuery,
}

impl FetchRequest {
    /// A request wrapping an explicit query.
    pub fn new(source: impl Into<String>, query: SourceQuery) -> Self {
        FetchRequest {
            source: source.into(),
            query,
        }
    }

    /// A full-class scan request.
    pub fn scan(source: impl Into<String>, class: impl Into<String>) -> Self {
        FetchRequest {
            source: source.into(),
            query: SourceQuery::scan(class),
        }
    }
}

/// The rows one [`FetchRequest`] produced (empty when the source failed
/// or its breaker was open — the [`FetchSet`]'s report says which).
#[derive(Debug, Clone)]
pub struct FetchBatch {
    /// The contacted source.
    pub source: String,
    /// The query that was run.
    pub query: SourceQuery,
    /// The surviving rows (validated, residual-filtered), in wrapper
    /// ship order.
    pub rows: Vec<ObjectRow>,
}

/// Everything a fetch phase produced: one [`FetchBatch`] per request (in
/// request order), plus the degradation report and wrapper-traffic
/// statistics of exactly this operation. A `FetchSet` is self-contained:
/// the **evaluate phase** consumes it with no federation access at all,
/// which is what lets warm plans run read-only against a
/// [`crate::QuerySnapshot`].
#[derive(Debug, Clone, Default)]
pub struct FetchSet {
    /// One batch per submitted request, in submission order.
    pub batches: Vec<FetchBatch>,
    /// Per-source outcomes, quarantined rows, completeness — the delta
    /// for this operation only.
    pub report: AnswerReport,
    /// Wrapper-traffic counters — the delta for this operation only.
    pub stats: MediatorStats,
}

impl FetchSet {
    /// Total surviving rows across all batches.
    pub fn total_rows(&self) -> usize {
        self.batches.iter().map(|b| b.rows.len()).sum()
    }

    /// Whether every request got exactly what a fault-free run would
    /// have produced (no failures, no breaker skips, no quarantines).
    pub fn is_complete(&self) -> bool {
        self.report.is_complete()
    }

    /// Appends another fetch set (a later round of the same plan):
    /// batches are concatenated, reports and statistics folded.
    pub fn absorb(&mut self, other: FetchSet) {
        self.batches.extend(other.batches);
        self.report.absorb(&other.report);
        self.stats.merge(&other.stats);
    }
}

/// The outcome of one guarded (retry/breaker-aware) wrapper query.
enum GuardedFetch {
    /// Rows arrived, possibly after retries.
    Rows {
        /// The shipped rows.
        rows: Vec<ObjectRow>,
        /// Physical attempts made (1 = no retry).
        attempts: u32,
    },
    /// The retry budget was exhausted (or the breaker opened mid-retry).
    Failed {
        /// Physical attempts made.
        attempts: u32,
        /// The final error.
        error: SourceError,
    },
    /// The breaker was open: the source was never contacted.
    Skipped,
    /// The query's cancellation token fired before (or between) attempts.
    Cancelled {
        /// Physical attempts made before the cancellation was seen.
        attempts: u32,
    },
    /// The job's budget slice ran out: either before this fetch started
    /// (no contact at all) or while the source was answering (rows
    /// dropped — they arrived past the deadline).
    DeadlineExceeded {
        /// Physical attempts made.
        attempts: u32,
    },
}

/// The per-job deadline context of one fetch job: the job's slice of the
/// query budget, the job's own self-charged spend, and the query-wide
/// cancellation token. Every job owns exactly one — never shared — so
/// deadline and hedging decisions depend only on the job's own work,
/// never on how concurrent jobs were scheduled. That is what keeps
/// reports bit-identical at every `fetch_threads` setting.
struct JobBudget {
    /// The job's slice of the query budget (`None` = no deadline).
    slice_ms: Option<u64>,
    /// Virtual milliseconds this job has charged itself so far: its own
    /// wrappers' [`Wrapper::virtual_cost_ms`] deltas plus its own retry
    /// backoffs — never raw clock reads, which siblings pollute.
    spent_ms: u64,
    /// The query-wide cancellation token, checked before every attempt.
    cancel: Option<CancelToken>,
    /// Whether exhausting this slice fires the query-wide token (the
    /// opt-in sibling-cancellation mode).
    cancel_on_exhaust: bool,
    /// Set once the job has quarantined rows from its source: a source
    /// that ships garbage is never hedged (a backup attempt would ship
    /// more garbage, not better data).
    tainted: bool,
}

impl JobBudget {
    /// Fires the query-wide token if this job's exhaustion should cancel
    /// its siblings.
    fn note_exhausted(&self) {
        if self.cancel_on_exhaust {
            if let Some(t) = &self.cancel {
                t.cancel();
            }
        }
    }

    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    fn exhausted(&self) -> bool {
        self.slice_ms.is_some_and(|s| self.spent_ms >= s)
    }

    fn charge(&mut self, ms: u64) {
        self.spent_ms = self.spent_ms.saturating_add(ms);
    }
}

/// The full outcome of one guarded fetch against one source, before any
/// report folding: surviving rows, quarantine diagnostics, and the
/// outcome classification. Produced by [`execute_fetch`] and folded into
/// the report by the serial path or by the parallel merge.
pub(crate) struct FetchCompletion {
    /// Validated, residual-filtered rows (empty on failure/skip).
    rows: Vec<ObjectRow>,
    /// Rows rejected by CM validation.
    quarantined: Vec<QuarantinedRow>,
    /// Physical wrapper attempts (0 when the breaker skipped).
    attempts: usize,
    /// Backup attempts launched because the primary was slow.
    hedged: usize,
    /// Attempts cancelled: hedge losers plus abandoned fetches.
    cancelled: usize,
    /// The report-level classification.
    outcome: SourceOutcome,
    /// The terminal error, for strict callers ([`Federation::fetch`]).
    error: Option<SourceError>,
}

/// A wrapper contact's outcome, fed back into the machine that asked
/// for it.
pub(crate) type SourceReply = std::result::Result<Vec<ObjectRow>, SourceError>;

/// What a [`FetchMachine`] (or [`JobMachine`]) needs next.
pub(crate) enum MachineStep {
    /// Contact the source with the current query — run
    /// [`Wrapper::query`] (blocking plane) or the split
    /// [`Wrapper::submit`]/[`Wrapper::complete`] pair (overlapped plane)
    /// — and call `step` again with the reply.
    Contact,
    /// The guarded fetch finished.
    Done(FetchCompletion),
}

/// Where a [`FetchMachine`] is between contacts.
enum FetchState {
    /// About to run the pre-attempt gates (cancellation, deadline,
    /// breaker) and issue the next primary attempt.
    Gate,
    /// A primary attempt is in flight.
    Primary {
        /// Whether the breaker was fully closed when the attempt left
        /// (hedging is only for sources in good standing).
        breaker_closed: bool,
        /// Clock reading when the attempt left, for the per-attempt
        /// timeout check.
        started: u64,
        /// The wrapper's self-charged cost before the attempt.
        cost_before: u64,
    },
    /// A hedge backup is in flight; the slow primary's rows ride along
    /// in case the backup loses the race.
    Backup {
        /// The primary's rows.
        rows: Vec<ObjectRow>,
        /// The primary's self-charged cost (the time to beat).
        attempt_cost: u64,
        /// The wrapper's self-charged cost before the backup.
        backup_before: u64,
    },
}

/// One guarded fetch — breaker check, per-attempt virtual-time budget,
/// bounded retries with deterministic backoff, hedging, CM quarantine,
/// residual selection filters — as a **resumable state machine** whose
/// only suspension points are wrapper contacts.
///
/// This is the **single** guarded-fetch body: the serial path
/// ([`Federation::fetch`]), every worker of the scoped-thread fetch
/// plane, and the overlapped executor ([`crate::executor`]) all drive
/// exactly this machine — the planes differ only in *how* a suspended
/// contact waits (a blocked thread vs. a parked timer), so
/// retry/breaker/quarantine/hedge semantics cannot drift between them.
struct FetchMachine {
    attempts: u32,
    hedged: usize,
    cancelled: usize,
    last_error: Option<SourceError>,
    state: FetchState,
}

impl FetchMachine {
    fn new() -> Self {
        FetchMachine {
            attempts: 0,
            hedged: 0,
            cancelled: 0,
            last_error: None,
            state: FetchState::Gate,
        }
    }

    /// Advances the machine. `reply` carries the contact outcome iff the
    /// previous step returned [`MachineStep::Contact`].
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        src: &RegisteredSource,
        policy: &SourcePolicy,
        breaker: &mut CircuitBreaker,
        clock: &Arc<dyn Clock>,
        stats: &mut MediatorStats,
        q: &SourceQuery,
        budget: &mut JobBudget,
        mut reply: Option<SourceReply>,
    ) -> MachineStep {
        loop {
            match std::mem::replace(&mut self.state, FetchState::Gate) {
                FetchState::Gate => {
                    // The deadline plane runs before any contact: a fired
                    // cancellation token or an exhausted slice abandons
                    // the fetch without touching the source or its
                    // breaker.
                    if budget.cancelled() {
                        stats.failures += 1;
                        self.cancelled += 1;
                        return self.finish(
                            GuardedFetch::Cancelled {
                                attempts: self.attempts,
                            },
                            src,
                            stats,
                            q,
                            budget,
                        );
                    }
                    if budget.exhausted() {
                        stats.failures += 1;
                        self.cancelled += 1;
                        budget.note_exhausted();
                        return self.finish(
                            GuardedFetch::DeadlineExceeded {
                                attempts: self.attempts,
                            },
                            src,
                            stats,
                            q,
                            budget,
                        );
                    }
                    let now = clock.now_ms();
                    if !breaker.allows(now) {
                        stats.failures += 1;
                        let guarded = match self.last_error.take() {
                            // The breaker opened between retry attempts:
                            // report the failure that opened it.
                            Some(error) => GuardedFetch::Failed {
                                attempts: self.attempts,
                                error,
                            },
                            None => GuardedFetch::Skipped,
                        };
                        return self.finish(guarded, src, stats, q, budget);
                    }
                    // Hedging is only for sources in good standing: a
                    // HalfOpen trial already is the recovery probe,
                    // doubling it would defeat the breaker's slow-start.
                    let breaker_closed = matches!(breaker.state(), BreakerState::Closed { .. });
                    self.attempts += 1;
                    stats.source_queries += 1;
                    self.state = FetchState::Primary {
                        breaker_closed,
                        started: clock.now_ms(),
                        cost_before: src.wrapper.virtual_cost_ms(),
                    };
                    return MachineStep::Contact;
                }
                FetchState::Primary {
                    breaker_closed,
                    started,
                    cost_before,
                } => {
                    let result = reply
                        .take()
                        .expect("contact reply fed back after Primary")
                        .and_then(|rows| {
                            let elapsed = clock.now_ms().saturating_sub(started);
                            if policy.timeout_ms > 0 && elapsed > policy.timeout_ms {
                                Err(SourceError::Timeout {
                                    elapsed_ms: elapsed,
                                    budget_ms: policy.timeout_ms,
                                })
                            } else {
                                Ok(rows)
                            }
                        });
                    // The attempt's own cost: the wrapper's self-reported
                    // stall delta, immune to concurrent siblings
                    // advancing the shared clock.
                    let attempt_cost = src.wrapper.virtual_cost_ms().saturating_sub(cost_before);
                    match result {
                        Ok(rows) => {
                            breaker.record_success();
                            stats.rows_shipped += rows.len();
                            stats.retries += (self.attempts - 1) as usize;
                            if policy.hedge_after_ms > 0
                                && attempt_cost > policy.hedge_after_ms
                                && breaker_closed
                                && !budget.tainted
                            {
                                // The primary answered, but slower than
                                // the hedge threshold: in wall-clock terms
                                // a backup attempt would have been racing
                                // it since `hedge_after_ms`. Run the
                                // backup (it consumes the source's next
                                // fault draw, so a seeded slow-tail
                                // re-rolls), pick the virtual-time winner,
                                // and charge only the winner's finishing
                                // time. Exactly one of the pair loses and
                                // is recorded as cancelled.
                                self.hedged += 1;
                                self.cancelled += 1;
                                self.attempts += 1;
                                stats.source_queries += 1;
                                self.state = FetchState::Backup {
                                    rows,
                                    attempt_cost,
                                    backup_before: src.wrapper.virtual_cost_ms(),
                                };
                                return MachineStep::Contact;
                            }
                            return self.land(rows, attempt_cost, src, stats, q, budget);
                        }
                        Err(error) => {
                            budget.charge(attempt_cost);
                            breaker.record_failure(clock.now_ms());
                            if self.attempts >= policy.retry.max_attempts {
                                stats.retries += (self.attempts - 1) as usize;
                                stats.failures += 1;
                                return self.finish(
                                    GuardedFetch::Failed {
                                        attempts: self.attempts,
                                        error,
                                    },
                                    src,
                                    stats,
                                    q,
                                    budget,
                                );
                            }
                            self.last_error = Some(error);
                            let backoff = policy.retry.backoff_ms(self.attempts);
                            clock.advance_ms(backoff);
                            // The job sat out its own backoff: charge it.
                            budget.charge(backoff);
                            // Loop straight back into the gates: backoff
                            // is a virtual-clock advance, not a wall stall.
                            self.state = FetchState::Gate;
                        }
                    }
                }
                FetchState::Backup {
                    rows,
                    attempt_cost,
                    backup_before,
                } => {
                    let backup = reply.take().expect("contact reply fed back after Backup");
                    let backup_cost = src.wrapper.virtual_cost_ms().saturating_sub(backup_before);
                    let backup_finish = policy.hedge_after_ms.saturating_add(backup_cost);
                    let mut rows = rows;
                    let mut charge = attempt_cost;
                    match backup {
                        Ok(backup_rows)
                            if (policy.timeout_ms == 0 || backup_cost <= policy.timeout_ms)
                                && backup_finish < attempt_cost =>
                        {
                            // Backup wins: its rows stand, the slow
                            // primary is the cancelled loser.
                            stats.rows_shipped += backup_rows.len();
                            rows = backup_rows;
                            charge = backup_finish;
                        }
                        Ok(backup_rows) => {
                            // Backup lost the race (or blew the per-attempt
                            // timeout): it is the cancelled loser.
                            stats.rows_shipped += backup_rows.len();
                        }
                        Err(_) => {
                            // A failed backup is just a cancelled hedge;
                            // the primary succeeded, so the breaker is
                            // not penalised.
                        }
                    }
                    return self.land(rows, charge, src, stats, q, budget);
                }
            }
        }
    }

    /// The success epilogue shared by the hedged and unhedged paths:
    /// charge the winner's cost, then either drop the rows at the
    /// deadline or classify them.
    fn land(
        &mut self,
        rows: Vec<ObjectRow>,
        charge: u64,
        src: &RegisteredSource,
        stats: &mut MediatorStats,
        q: &SourceQuery,
        budget: &mut JobBudget,
    ) -> MachineStep {
        budget.charge(charge);
        if budget.exhausted() {
            // The rows landed, but past the deadline: they are dropped,
            // exactly as if the transfer were still in flight when the
            // query gave up.
            stats.failures += 1;
            self.cancelled += 1;
            budget.note_exhausted();
            return self.finish(
                GuardedFetch::DeadlineExceeded {
                    attempts: self.attempts,
                },
                src,
                stats,
                q,
                budget,
            );
        }
        self.finish(
            GuardedFetch::Rows {
                rows,
                attempts: self.attempts,
            },
            src,
            stats,
            q,
            budget,
        )
    }

    /// Classifies a terminal [`GuardedFetch`] into the
    /// [`FetchCompletion`] the merge consumes (CM quarantine, residual
    /// filters, outcome/error mapping).
    fn finish(
        &mut self,
        guarded: GuardedFetch,
        src: &RegisteredSource,
        stats: &mut MediatorStats,
        q: &SourceQuery,
        budget: &mut JobBudget,
    ) -> MachineStep {
        let hedged = self.hedged;
        let cancelled = self.cancelled;
        MachineStep::Done(classify_fetch(
            guarded, hedged, cancelled, src, stats, q, budget,
        ))
    }
}

/// Runs one guarded fetch to completion on the calling thread — the
/// blocking driver of [`FetchMachine`], used by the serial path and the
/// scoped-thread plane. Every contact is a plain [`Wrapper::query`]
/// call, exactly as before the machine refactor.
#[allow(clippy::too_many_arguments)]
fn execute_fetch(
    src: &RegisteredSource,
    policy: &SourcePolicy,
    breaker: &mut CircuitBreaker,
    clock: &Arc<dyn Clock>,
    stats: &mut MediatorStats,
    q: &SourceQuery,
    budget: &mut JobBudget,
) -> FetchCompletion {
    let mut machine = FetchMachine::new();
    let mut reply: Option<SourceReply> = None;
    loop {
        match machine.step(src, policy, breaker, clock, stats, q, budget, reply.take()) {
            MachineStep::Contact => reply = Some(src.wrapper.query(q)),
            MachineStep::Done(completion) => return completion,
        }
    }
}

/// Maps a terminal [`GuardedFetch`] to its [`FetchCompletion`]:
/// quarantine-validate and residual-filter surviving rows, classify the
/// outcome, surface the terminal error.
#[allow(clippy::too_many_arguments)]
fn classify_fetch(
    guarded: GuardedFetch,
    hedged: usize,
    cancelled: usize,
    src: &RegisteredSource,
    stats: &mut MediatorStats,
    q: &SourceQuery,
    budget: &mut JobBudget,
) -> FetchCompletion {
    match guarded {
        GuardedFetch::Rows { rows, attempts } => {
            // CM validation: quarantine, don't abort.
            let mut kept = Vec::with_capacity(rows.len());
            let mut quarantined = Vec::new();
            for row in rows {
                match src.validate_row(&q.class, &row) {
                    Ok(()) => kept.push(row),
                    Err(reason) => quarantined.push(QuarantinedRow {
                        source: src.name.clone(),
                        class: q.class.clone(),
                        row_id: row.id.clone(),
                        reason,
                    }),
                }
            }
            let kept: Vec<ObjectRow> = kept
                .into_iter()
                .filter(|r| {
                    q.selections
                        .iter()
                        .all(|s| r.get(&s.attr) == Some(&s.value))
                })
                .collect();
            stats.rows_kept += kept.len();
            let outcome = if attempts > 1 {
                SourceOutcome::Retried {
                    retries: attempts - 1,
                }
            } else {
                SourceOutcome::Ok
            };
            FetchCompletion {
                rows: kept,
                quarantined,
                attempts: attempts as usize,
                hedged,
                cancelled,
                outcome,
                error: None,
            }
        }
        GuardedFetch::Failed { attempts, error } => FetchCompletion {
            rows: Vec::new(),
            quarantined: Vec::new(),
            attempts: attempts as usize,
            hedged,
            cancelled,
            outcome: SourceOutcome::Failed {
                error: error.clone(),
            },
            error: Some(error),
        },
        GuardedFetch::Skipped => FetchCompletion {
            rows: Vec::new(),
            quarantined: Vec::new(),
            attempts: 0,
            hedged,
            cancelled,
            outcome: SourceOutcome::SkippedByBreaker,
            error: Some(SourceError::Unavailable {
                reason: "circuit breaker open; source not contacted".into(),
            }),
        },
        GuardedFetch::Cancelled { attempts } => FetchCompletion {
            rows: Vec::new(),
            quarantined: Vec::new(),
            attempts: attempts as usize,
            hedged,
            cancelled,
            outcome: SourceOutcome::Cancelled,
            error: Some(SourceError::Unavailable {
                reason: "query cancelled; fetch abandoned".into(),
            }),
        },
        GuardedFetch::DeadlineExceeded { attempts } => {
            let slice = budget.slice_ms.unwrap_or(0);
            FetchCompletion {
                rows: Vec::new(),
                quarantined: Vec::new(),
                attempts: attempts as usize,
                hedged,
                cancelled,
                outcome: SourceOutcome::DeadlineExceeded {
                    spent_ms: budget.spent_ms,
                    budget_ms: slice,
                },
                error: Some(SourceError::Timeout {
                    elapsed_ms: budget.spent_ms,
                    budget_ms: slice,
                }),
            }
        }
    }
}

/// One worker job of the parallel fetch plane: everything needed to run
/// one source's requests without touching the federation — the source's
/// breaker is *moved* in (taken out of the federation's map) so its
/// requests run serially under exactly the serial-path semantics, and
/// moved back at merge time.
pub(crate) struct FetchJob {
    /// Index into the federation's source roster.
    src_pos: usize,
    policy: SourcePolicy,
    breaker: CircuitBreaker,
    /// The job's deadline context (slice of the query budget + token).
    budget: JobBudget,
    /// `(request index, query)` in submission order.
    requests: Vec<(usize, SourceQuery)>,
}

/// What one [`FetchJob`] produced, ready for the deterministic merge.
pub(crate) struct FetchJobDone {
    source: String,
    breaker: CircuitBreaker,
    stats: MediatorStats,
    /// Virtual milliseconds the job charged itself (its critical path).
    spent_ms: u64,
    /// `(request index, completion)` in submission order.
    results: Vec<(usize, FetchCompletion)>,
}

/// Runs one job's requests serially against its source.
fn run_fetch_job(
    sources: &[RegisteredSource],
    clock: &Arc<dyn Clock>,
    job: FetchJob,
) -> FetchJobDone {
    let src = &sources[job.src_pos];
    let FetchJob {
        policy,
        mut breaker,
        mut budget,
        requests,
        ..
    } = job;
    let mut stats = MediatorStats::default();
    let mut results = Vec::with_capacity(requests.len());
    for (idx, q) in requests {
        let completion = execute_fetch(
            src,
            &policy,
            &mut breaker,
            clock,
            &mut stats,
            &q,
            &mut budget,
        );
        if !completion.quarantined.is_empty() {
            budget.tainted = true;
        }
        results.push((idx, completion));
    }
    FetchJobDone {
        source: src.name.clone(),
        breaker,
        stats,
        spent_ms: budget.spent_ms,
        results,
    }
}

/// One fetch job as a **resumable machine**: sequences the job's
/// requests through a [`FetchMachine`] each, suspending at every wrapper
/// contact. The overlapped executor ([`crate::executor`]) drives these
/// on a fixed worker pool — a parked contact releases its worker instead
/// of blocking it — while producing byte-for-byte the [`FetchJobDone`]
/// that [`run_fetch_job`] produces on a dedicated thread.
pub(crate) struct JobMachine {
    src_pos: usize,
    source_name: String,
    policy: SourcePolicy,
    breaker: CircuitBreaker,
    budget: JobBudget,
    requests: Vec<(usize, SourceQuery)>,
    stats: MediatorStats,
    results: Vec<(usize, FetchCompletion)>,
    cursor: usize,
    fetch: FetchMachine,
}

impl JobMachine {
    pub(crate) fn new(sources: &[RegisteredSource], job: FetchJob) -> Self {
        let source_name = sources[job.src_pos].name.clone();
        let results = Vec::with_capacity(job.requests.len());
        JobMachine {
            src_pos: job.src_pos,
            source_name,
            policy: job.policy,
            breaker: job.breaker,
            budget: job.budget,
            requests: job.requests,
            stats: MediatorStats::default(),
            results,
            cursor: 0,
            fetch: FetchMachine::new(),
        }
    }

    /// The roster position of the job's source.
    pub(crate) fn src_pos(&self) -> usize {
        self.src_pos
    }

    /// The query the pending [`MachineStep::Contact`] is for. Only valid
    /// between a `Contact` step and its reply.
    pub(crate) fn current_query(&self) -> &SourceQuery {
        &self.requests[self.cursor].1
    }

    /// Advances the job. `reply` carries the contact outcome iff the
    /// previous step returned [`MachineStep::Contact`].
    pub(crate) fn step(
        &mut self,
        sources: &[RegisteredSource],
        clock: &Arc<dyn Clock>,
        mut reply: Option<SourceReply>,
    ) -> JobStep {
        while self.cursor < self.requests.len() {
            let src = &sources[self.src_pos];
            let q = &self.requests[self.cursor].1;
            match self.fetch.step(
                src,
                &self.policy,
                &mut self.breaker,
                clock,
                &mut self.stats,
                q,
                &mut self.budget,
                reply.take(),
            ) {
                MachineStep::Contact => return JobStep::Contact,
                MachineStep::Done(completion) => {
                    if !completion.quarantined.is_empty() {
                        self.budget.tainted = true;
                    }
                    let idx = self.requests[self.cursor].0;
                    self.results.push((idx, completion));
                    self.cursor += 1;
                    self.fetch = FetchMachine::new();
                }
            }
        }
        JobStep::Done(FetchJobDone {
            source: std::mem::take(&mut self.source_name),
            breaker: self.breaker.clone(),
            stats: self.stats,
            spent_ms: self.budget.spent_ms,
            results: std::mem::take(&mut self.results),
        })
    }
}

/// What a [`JobMachine`] needs next.
pub(crate) enum JobStep {
    /// Contact the job's source with [`JobMachine::current_query`] and
    /// step again with the reply.
    Contact,
    /// The job finished; merge its result.
    Done(FetchJobDone),
}

/// How [`Federation::fetch_parallel`] maps fetch jobs onto OS threads.
/// Either way the results — batches, reports, statistics, breaker
/// transitions — are **bit-identical**; the modes differ only in how a
/// stalled wrapper contact waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchMode {
    /// One scoped thread per worker job (the default): a stalled contact
    /// blocks its thread for the duration. Simple and fast for small
    /// fan-out, but the thread count scales with the number of slow
    /// sources in flight.
    #[default]
    ScopedThreads,
    /// The overlapped executor ([`crate::executor`]): jobs are resumable
    /// state machines on a fixed worker pool plus a timer wheel. A
    /// stall-aware wrapper contact *parks* — releases its worker and
    /// schedules a wake at its deadline — so hundreds of slow sources
    /// overlap on `fetch_threads` workers, admission-limited by
    /// [`Federation::set_in_flight_limit`].
    Overlapped,
}

/// Tracks how many fetch-plane worker threads are live, and the
/// high-water mark — the observable the overlapped executor exists to
/// flatten (peak ≈ worker-pool size instead of ≈ sources in flight).
#[derive(Debug, Default)]
pub(crate) struct ThreadGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl ThreadGauge {
    pub(crate) fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    pub(crate) fn exit(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }

    fn reset(&self) {
        self.current.store(0, Ordering::SeqCst);
        self.peak.store(0, Ordering::SeqCst);
    }
}

/// The source-facing layer of the mediator: registered wrappers plus the
/// resilience machinery guarding every fetch. See the module docs.
#[derive(Debug)]
pub struct Federation {
    sources: Vec<RegisteredSource>,
    clock: Arc<dyn Clock>,
    default_policy: SourcePolicy,
    policies: HashMap<String, SourcePolicy>,
    breakers: HashMap<String, CircuitBreaker>,
    report: AnswerReport,
    /// Worker threads for the parallel fetch plane (0 = auto: one per
    /// involved source, capped by available parallelism).
    fetch_threads: usize,
    /// How fetch jobs map onto threads (scoped thread-per-job vs the
    /// overlapped executor).
    fetch_mode: FetchMode,
    /// Admission limit for the overlapped executor: at most this many
    /// jobs in flight at once (0 = admit everything immediately). Also
    /// caps the stall-aware adaptive sizing of the scoped plane.
    in_flight_limit: usize,
    /// Live/peak fetch worker threads (for the bench and the example).
    thread_gauge: ThreadGauge,
    /// End-to-end budget armed for every degradable operation (0 = no
    /// deadline).
    query_budget_ms: u64,
    /// The budget of the operation in flight, if one is armed.
    budget: Option<QueryBudget>,
    /// The query-wide cooperative cancellation token, shared with every
    /// fetch job (and, via the mediator, with the Datalog fixpoint).
    cancel: CancelToken,
    /// Whether budget exhaustion fires [`Self::cancel`] (aggressive
    /// sibling cancellation; off by default — see
    /// [`Self::set_deadline_cancels_siblings`]).
    cancel_on_exhaust: bool,
    /// Query-processing statistics.
    pub stats: MediatorStats,
}

impl Default for Federation {
    fn default() -> Self {
        Self::new()
    }
}

impl Federation {
    /// An empty federation with a fresh [`VirtualClock`] and default
    /// policies.
    pub fn new() -> Self {
        Federation {
            sources: Vec::new(),
            clock: Arc::new(VirtualClock::new()),
            default_policy: SourcePolicy::default(),
            policies: HashMap::new(),
            breakers: HashMap::new(),
            report: AnswerReport::default(),
            fetch_threads: 0,
            fetch_mode: FetchMode::default(),
            in_flight_limit: 0,
            thread_gauge: ThreadGauge::default(),
            query_budget_ms: 0,
            budget: None,
            cancel: CancelToken::new(),
            cancel_on_exhaust: false,
            stats: MediatorStats::default(),
        }
    }

    /// Arms an end-to-end virtual-time budget for every subsequent
    /// degradable operation: each operation starts a fresh
    /// [`QueryBudget`] of this many milliseconds, every fetch job works
    /// against the remaining slice, and sources that run past it are cut
    /// off with [`SourceOutcome::DeadlineExceeded`] — the answer
    /// completes from whatever landed in time. `0` (the default)
    /// disables the deadline.
    pub fn set_query_budget_ms(&mut self, ms: u64) {
        self.query_budget_ms = ms;
    }

    /// The configured per-operation budget (0 = no deadline).
    pub fn query_budget_ms(&self) -> u64 {
        self.query_budget_ms
    }

    /// The budget of the operation in flight (or the most recent one).
    pub fn budget(&self) -> Option<&QueryBudget> {
        self.budget.as_ref()
    }

    /// The query-wide cancellation token. Cancel it (from any thread) to
    /// make in-flight and subsequent fetches of the current operation
    /// abandon cooperatively with [`SourceOutcome::Cancelled`]; each new
    /// operation starts with the token reset.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// When `true`, the first fetch job to exhaust its budget slice fires
    /// the query-wide cancellation token, so sibling jobs abandon their
    /// remaining work immediately instead of each running to its own
    /// deadline. Off by default: cross-job cancellation makes *which*
    /// sibling fetches complete depend on scheduling, trading the
    /// bit-identical-reports guarantee for lower tail latency.
    pub fn set_deadline_cancels_siblings(&mut self, yes: bool) {
        self.cancel_on_exhaust = yes;
    }

    /// The [`Self::set_deadline_cancels_siblings`] setting.
    pub fn deadline_cancels_siblings(&self) -> bool {
        self.cancel_on_exhaust
    }

    /// Sets the worker-thread count for [`Self::fetch_parallel`]: `0`
    /// (the default) means auto — one worker per involved source, capped
    /// by available parallelism; `1` forces serial execution (useful as
    /// the determinism baseline); larger values cap the pool. Results
    /// are bit-identical for every setting — only wall-clock changes.
    pub fn set_fetch_threads(&mut self, threads: usize) {
        self.fetch_threads = threads;
    }

    /// The configured fetch-plane worker count (0 = auto).
    pub fn fetch_threads(&self) -> usize {
        self.fetch_threads
    }

    /// Selects how [`Self::fetch_parallel`] maps jobs onto threads.
    /// Results are bit-identical in both modes at every worker count —
    /// only the wall-clock/thread-count profile changes — so switching
    /// is always safe. [`FetchMode::ScopedThreads`] is the default.
    pub fn set_fetch_mode(&mut self, mode: FetchMode) {
        self.fetch_mode = mode;
    }

    /// The configured fetch transport.
    pub fn fetch_mode(&self) -> FetchMode {
        self.fetch_mode
    }

    /// Caps how many fetch jobs the overlapped executor admits at once
    /// (0 = no cap, the default). Admission is in job registration
    /// order, so the knob changes wall clock and memory pressure, never
    /// results. The same cap bounds the stall-aware adaptive sizing of
    /// the scoped-thread plane.
    pub fn set_in_flight_limit(&mut self, n: usize) {
        self.in_flight_limit = n;
    }

    /// The configured in-flight admission limit (0 = unlimited).
    pub fn in_flight_limit(&self) -> usize {
        self.in_flight_limit
    }

    /// The highest number of fetch-plane worker threads that were ever
    /// live at once since the last [`Self::reset_peak_fetch_threads`] —
    /// the knob the overlapped executor flattens (a scoped-thread fetch
    /// of 64 stalled sources peaks at 64; the overlapped plane peaks at
    /// its worker-pool size).
    pub fn peak_fetch_threads(&self) -> usize {
        self.thread_gauge.peak()
    }

    /// Resets the [`Self::peak_fetch_threads`] high-water mark.
    pub fn reset_peak_fetch_threads(&self) {
        self.thread_gauge.reset();
    }

    /// Registered sources.
    pub fn sources(&self) -> &[RegisteredSource] {
        &self.sources
    }

    /// Looks up a registered source by name.
    pub fn source(&self, name: &str) -> Result<&RegisteredSource> {
        self.sources
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| MediatorError::UnknownSource {
                name: name.to_string(),
            })
    }

    /// The id the next registered source will get.
    pub(crate) fn next_id(&self) -> SourceId {
        SourceId(self.sources.len() as u32)
    }

    /// Whether a source with this name is already registered.
    pub(crate) fn has_source(&self, name: &str) -> bool {
        self.sources.iter().any(|s| s.name == name)
    }

    /// Adds a fully-built source record (the mediator's `register` builds
    /// it after translating the CM and anchoring the data).
    pub(crate) fn add_source(&mut self, src: RegisteredSource) {
        self.sources.push(src);
    }

    /// The federation's clock (share it with [`crate::FaultInjector`]s so
    /// injected delays are visible to timeout checks).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Replaces the clock (e.g. with a pre-advanced [`VirtualClock`]).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Sets the policy used for sources without a per-source override.
    pub fn set_default_policy(&mut self, policy: SourcePolicy) {
        self.default_policy = policy;
    }

    /// Sets a per-source retry/timeout/breaker policy. Any existing
    /// breaker for the source is reset so the new configuration takes
    /// effect immediately.
    pub fn set_source_policy(&mut self, name: impl Into<String>, policy: SourcePolicy) {
        let name = name.into();
        self.breakers.remove(&name);
        self.policies.insert(name, policy);
    }

    /// The policy governing `name` (per-source override or default).
    pub fn policy_for(&self, name: &str) -> &SourcePolicy {
        self.policies.get(name).unwrap_or(&self.default_policy)
    }

    /// The breaker state for a source, once it has been fetched from at
    /// least once.
    pub fn breaker_state(&self, name: &str) -> Option<BreakerState> {
        self.breakers.get(name).map(|b| b.state())
    }

    /// Force-closes a source's breaker (operator override).
    pub fn reset_breaker(&mut self, name: &str) {
        self.breakers.remove(name);
    }

    /// The degradation report of the most recent degradable operation.
    pub fn report(&self) -> &AnswerReport {
        &self.report
    }

    /// Starts a fresh report (each degradable operation calls this), and
    /// arms a fresh [`QueryBudget`] when a deadline is configured. The
    /// cancellation token is reset: every operation starts live.
    pub(crate) fn begin_report(&mut self) {
        self.report = AnswerReport::default();
        self.report.budget_ms = self.query_budget_ms;
        self.cancel.reset();
        self.budget = if self.query_budget_ms > 0 {
            let mut b = QueryBudget::start(&self.clock, self.query_budget_ms)
                .with_cancel(self.cancel.clone());
            b.set_cancel_on_exhaust(self.cancel_on_exhaust);
            Some(b)
        } else {
            None
        };
    }

    /// The names of sources that export `class` (by declared capability).
    pub fn sources_exporting(&self, class: &str) -> Vec<String> {
        self.sources
            .iter()
            .filter(|s| s.classes.iter().any(|c| c == class))
            .map(|s| s.name.clone())
            .collect()
    }

    /// Maps knowledge-layer source ids to names, preserving registration
    /// order.
    pub fn names_of(&self, ids: &[SourceId]) -> Vec<String> {
        self.sources
            .iter()
            .filter(|s| ids.contains(&s.id))
            .map(|s| s.name.clone())
            .collect()
    }

    /// Validates that a request targets a known source exporting the
    /// queried class, returning the roster position.
    fn validate_request(&self, source_name: &str, q: &SourceQuery) -> Result<usize> {
        let pos = self
            .sources
            .iter()
            .position(|s| s.name == source_name)
            .ok_or_else(|| MediatorError::UnknownSource {
                name: source_name.to_string(),
            })?;
        if !self.sources[pos].classes.iter().any(|c| c == &q.class) {
            return Err(MediatorError::UnknownClass {
                class: q.class.clone(),
            });
        }
        Ok(pos)
    }

    /// Takes a source's breaker out of the map (creating a fresh one
    /// under its policy on first contact) so it can run detached — in a
    /// worker job or a serial split-borrow — and be put back afterwards.
    fn take_breaker(&mut self, name: &str, policy: &SourcePolicy) -> CircuitBreaker {
        self.breakers
            .remove(name)
            .unwrap_or_else(|| CircuitBreaker::new(policy.breaker.clone()))
    }

    /// Capability-aware, fault-tolerant fetch: pushes the pushable
    /// selections to the wrapper (with retries, timeout budget, and
    /// circuit breaker per the source's [`SourcePolicy`]), quarantines
    /// rows that violate the source's exported CM, and applies the
    /// remaining selections as a residual filter mediator-side.
    ///
    /// Runs the same guarded-fetch body as the parallel fetch plane
    /// ([`Self::fetch_parallel`]), so retry/breaker/quarantine semantics
    /// cannot drift between entry points.
    ///
    /// A source that exhausts its retry budget — or whose breaker is
    /// open — is a typed [`MediatorError::Source`] error; the outcome is
    /// also folded into the current [`Self::report`].
    pub fn fetch(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        let pos = self.validate_request(source_name, q)?;
        let policy = self.policy_for(source_name).clone();
        let mut breaker = self.take_breaker(source_name, &policy);
        let mut job_budget = self.job_budget();
        let completion = {
            let Federation {
                sources,
                clock,
                stats,
                ..
            } = self;
            execute_fetch(
                &sources[pos],
                &policy,
                &mut breaker,
                clock,
                stats,
                q,
                &mut job_budget,
            )
        };
        self.breakers.insert(source_name.to_string(), breaker);
        if let Some(b) = &mut self.budget {
            b.charge(job_budget.spent_ms);
        }
        self.report.elapsed_ms = self.report.elapsed_ms.saturating_add(job_budget.spent_ms);
        let FetchCompletion {
            rows,
            quarantined,
            attempts,
            hedged,
            cancelled,
            outcome,
            error,
        } = completion;
        for qr in quarantined {
            self.report.record_quarantine(qr);
        }
        self.report.record_fetch(
            source_name,
            attempts,
            rows.len(),
            hedged,
            cancelled,
            outcome,
        );
        match error {
            None => Ok(rows),
            Some(error) => Err(MediatorError::Source {
                name: source_name.to_string(),
                error,
            }),
        }
    }

    /// A fresh per-job deadline context: the remaining budget (when one
    /// is armed) plus the query-wide cancellation token.
    fn job_budget(&self) -> JobBudget {
        JobBudget {
            slice_ms: self.budget.as_ref().map(QueryBudget::remaining_ms),
            spent_ms: 0,
            cancel: Some(self.cancel.clone()),
            cancel_on_exhaust: self.cancel_on_exhaust,
            tainted: false,
        }
    }

    /// The **fetch phase** of the two-phase pipeline: executes a batch of
    /// [`FetchRequest`]s with one worker job per distinct source on a
    /// scoped thread pool, and returns a [`FetchSet`] whose batches are
    /// in request order. Source-level failures degrade to empty batches
    /// (visible in the set's report), exactly like
    /// [`Self::fetch_degraded`]; unknown sources/classes are typed errors
    /// detected up front, before anything is contacted.
    ///
    /// **Determinism.** Results are bit-identical for any worker count:
    ///
    /// * each source's requests run serially inside that source's job, so
    ///   its breaker transitions, retry schedule, and any
    ///   [`crate::FaultInjector`] call counters see exactly the sequence
    ///   a serial run would produce;
    /// * rows are returned per-batch in request order, so downstream
    ///   interning order does not depend on completion order;
    /// * statistics and report entries are folded job-by-job in the
    ///   sources' first-appearance order (registration order, for plans
    ///   built from the roster) after every worker has joined.
    ///
    /// The one shared mutable resource is the federation [`Clock`]:
    /// concurrent backoff/delay advances interleave, so *timestamps* (not
    /// row contents) can differ from a serial run when a virtual clock is
    /// shared across faulty sources.
    pub fn fetch_parallel(&mut self, requests: &[FetchRequest]) -> Result<FetchSet> {
        for r in requests {
            self.validate_request(&r.source, &r.query)?;
        }
        // Group requests into one job per source, in first-appearance
        // order; move each involved source's breaker into its job.
        let mut jobs: Vec<FetchJob> = Vec::new();
        let mut job_of: HashMap<String, usize> = HashMap::new();
        for (idx, r) in requests.iter().enumerate() {
            let job_idx = match job_of.get(&r.source) {
                Some(&j) => j,
                None => {
                    let policy = self.policy_for(&r.source).clone();
                    let breaker = self.take_breaker(&r.source, &policy);
                    let src_pos = self
                        .sources
                        .iter()
                        .position(|s| s.name == r.source)
                        .expect("validated above");
                    jobs.push(FetchJob {
                        src_pos,
                        policy,
                        breaker,
                        budget: self.job_budget(),
                        requests: Vec::new(),
                    });
                    job_of.insert(r.source.clone(), jobs.len() - 1);
                    jobs.len() - 1
                }
            };
            jobs[job_idx].requests.push((idx, r.query.clone()));
        }
        let workers = self.effective_fetch_threads(jobs.len());
        let mode = self.fetch_mode;
        let in_flight = self.in_flight_limit;
        let finished: Vec<FetchJobDone> = {
            let Federation {
                sources,
                clock,
                thread_gauge,
                ..
            } = &*self;
            match mode {
                FetchMode::Overlapped if !jobs.is_empty() => crate::executor::run_overlapped(
                    sources,
                    clock,
                    jobs,
                    workers,
                    in_flight,
                    thread_gauge,
                ),
                _ if workers <= 1 => {
                    // Serial baseline: same job code, no thread overhead.
                    // The caller's thread is the one fetch worker.
                    thread_gauge.enter();
                    let finished = jobs
                        .into_iter()
                        .map(|job| run_fetch_job(sources, clock, job))
                        .collect();
                    thread_gauge.exit();
                    finished
                }
                _ => {
                    let slots: Vec<Mutex<Option<FetchJobDone>>> =
                        jobs.iter().map(|_| Mutex::new(None)).collect();
                    let queue: Vec<Mutex<Option<FetchJob>>> =
                        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
                    let next = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            scope.spawn(|| {
                                thread_gauge.enter();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= queue.len() {
                                        break;
                                    }
                                    let job = queue[i]
                                        .lock()
                                        .expect("job queue poisoned")
                                        .take()
                                        .expect("each job taken exactly once");
                                    let done = run_fetch_job(sources, clock, job);
                                    *slots[i].lock().expect("result slot poisoned") = Some(done);
                                }
                                thread_gauge.exit();
                            });
                        }
                    });
                    slots
                        .into_iter()
                        .map(|slot| {
                            slot.into_inner()
                                .expect("result slot poisoned")
                                .expect("every job produced a result")
                        })
                        .collect()
                }
            }
        };
        // Deterministic merge: jobs in first-appearance order, requests
        // within a job in submission order — regardless of which worker
        // finished when.
        let mut set = FetchSet {
            batches: requests
                .iter()
                .map(|r| FetchBatch {
                    source: r.source.clone(),
                    query: r.query.clone(),
                    rows: Vec::new(),
                })
                .collect(),
            ..FetchSet::default()
        };
        // The round's elapsed time is its critical path: concurrent jobs
        // overlap, so the slowest job — by its own self-charged spend —
        // bounds the round. A max over jobs is commutative, so the value
        // is identical for every worker count and join order.
        let round_elapsed = finished.iter().map(|d| d.spent_ms).max().unwrap_or(0);
        for done in finished {
            self.breakers.insert(done.source.clone(), done.breaker);
            set.stats.merge(&done.stats);
            for (idx, completion) in done.results {
                for qr in completion.quarantined {
                    set.report.record_quarantine(qr);
                }
                set.report.record_fetch(
                    &done.source,
                    completion.attempts,
                    completion.rows.len(),
                    completion.hedged,
                    completion.cancelled,
                    completion.outcome,
                );
                set.batches[idx].rows = completion.rows;
            }
        }
        set.report.elapsed_ms = round_elapsed;
        set.report.budget_ms = self.query_budget_ms;
        if let Some(b) = &mut self.budget {
            b.charge(round_elapsed);
        }
        self.stats.merge(&set.stats);
        self.report.absorb(&set.report);
        Ok(set)
    }

    /// The worker count [`Self::fetch_parallel`] will actually use for a
    /// given number of jobs: the explicit knob when set, otherwise one
    /// worker per core, always capped by the number of plan sources
    /// (adaptive sizing — both planes share [`kind_datalog::pool_size`]).
    ///
    /// With one exception: on the scoped-thread plane, a plan touching
    /// any **stall-aware** source ([`Wrapper::stall_hint`]) is
    /// latency-bound, not compute-bound — its workers spend their time
    /// blocked in wrapper I/O, not on a core — so capping the pool at
    /// core count would serialize it (on a 1-core host, 8 × 5ms sources
    /// would fetch in 40ms instead of ~5ms). Such plans size by overlap
    /// instead: one worker per job, capped only by the in-flight limit.
    pub(crate) fn effective_fetch_threads(&self, jobs: usize) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.fetch_mode == FetchMode::ScopedThreads
            && self.fetch_threads == 0
            && jobs > 0
            && self
                .sources
                .iter()
                .any(|s| s.wrapper.stall_hint().is_some())
        {
            let cap = if self.in_flight_limit == 0 {
                jobs
            } else {
                self.in_flight_limit
            };
            return jobs.min(cap).max(1);
        }
        kind_datalog::pool_size(self.fetch_threads, jobs, cores)
    }

    /// Like [`Self::fetch`], but a source-level failure degrades to an
    /// empty row set instead of an error (the failure stays visible in
    /// [`Self::report`]). Mediator-level errors (unknown source/class)
    /// still propagate.
    pub fn fetch_degraded(&mut self, source_name: &str, q: &SourceQuery) -> Result<Vec<ObjectRow>> {
        match self.fetch(source_name, q) {
            Ok(rows) => Ok(rows),
            Err(MediatorError::Source { .. }) => Ok(Vec::new()),
            Err(other) => Err(other),
        }
    }

    /// Calls a declared query template on a source (§2's "query
    /// templates" capability form): expands the template with the given
    /// arguments and fetches through the capability-aware path.
    pub fn call_template(
        &mut self,
        source_name: &str,
        template: &str,
        args: &[kind_gcm::GcmValue],
    ) -> Result<Vec<ObjectRow>> {
        let src = self.source(source_name)?;
        let t = src
            .wrapper
            .templates()
            .into_iter()
            .find(|t| t.name == template)
            .ok_or_else(|| MediatorError::UnknownClass {
                class: format!("{source_name}::{template}"),
            })?;
        let q = t.expand(args).ok_or_else(|| MediatorError::UnknownClass {
            class: format!(
                "{source_name}::{template}/{} called with {} args",
                t.params.len(),
                args.len()
            ),
        })?;
        self.fetch(source_name, &q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultInjector};
    use crate::mediator::Mediator;
    use crate::wrapper::{Anchor, MemoryWrapper, StallAware};
    use kind_dm::{figures, ExecMode};
    use kind_gcm::GcmValue;

    fn wrapper(name: &str, class: &str, concept: &str, n: usize) -> Arc<MemoryWrapper> {
        let mut w = MemoryWrapper::new(name);
        w.caps.push(Capability {
            class: class.into(),
            pushable: vec!["location".into()],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: class.into(),
            concept: concept.into(),
        });
        for i in 0..n {
            w.add_row(
                class,
                &format!("{name}-o{i}"),
                vec![
                    ("location", GcmValue::Id(concept.into())),
                    ("value", GcmValue::Int(i as i64)),
                ],
            );
        }
        Arc::new(w)
    }

    fn three_source_mediator() -> Mediator {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(wrapper("A", "ca", "Spine", 3)).unwrap();
        m.register(wrapper("B", "cb", "Shaft", 2)).unwrap();
        m.register(wrapper("C", "cc", "Neuron", 4)).unwrap();
        m
    }

    fn all_scans(m: &Mediator) -> Vec<FetchRequest> {
        m.sources()
            .iter()
            .flat_map(|s| {
                s.classes
                    .iter()
                    .map(|c| FetchRequest::scan(s.name.as_str(), c.as_str()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn parallel_results_identical_for_every_worker_count() {
        let mut baseline = three_source_mediator();
        baseline.federation_mut().set_fetch_threads(1);
        let requests = all_scans(&baseline);
        let serial = baseline.federation_mut().fetch_parallel(&requests).unwrap();
        for threads in [2usize, 3, 8] {
            let mut m = three_source_mediator();
            m.federation_mut().set_fetch_threads(threads);
            let parallel = m.federation_mut().fetch_parallel(&requests).unwrap();
            assert_eq!(
                format!("{:?}", serial.batches),
                format!("{:?}", parallel.batches),
                "batches diverge at {threads} threads"
            );
            assert_eq!(serial.report, parallel.report);
            assert_eq!(serial.stats, parallel.stats);
        }
    }

    #[test]
    fn fetch_threads_default_adapts_to_plan_and_cores() {
        let mut m = three_source_mediator();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Knob unset: min(plan sources, cores), never below 1.
        assert_eq!(m.federation().fetch_threads(), 0);
        assert_eq!(m.federation().effective_fetch_threads(3), cores.clamp(1, 3));
        assert_eq!(m.federation().effective_fetch_threads(0), 1);
        // Explicit knob: still capped by the job count.
        m.federation_mut().set_fetch_threads(2);
        assert_eq!(m.federation().effective_fetch_threads(8), 2);
        assert_eq!(m.federation().effective_fetch_threads(1), 1);
    }

    #[test]
    fn parallel_batches_come_back_in_request_order() {
        let mut m = three_source_mediator();
        // Interleave sources on purpose: C, A, C, B.
        let requests = vec![
            FetchRequest::scan("C", "cc"),
            FetchRequest::scan("A", "ca"),
            FetchRequest::new("C", SourceQuery::scan("cc").with("value", GcmValue::Int(1))),
            FetchRequest::scan("B", "cb"),
        ];
        let set = m.federation_mut().fetch_parallel(&requests).unwrap();
        let order: Vec<&str> = set.batches.iter().map(|b| b.source.as_str()).collect();
        assert_eq!(order, vec!["C", "A", "C", "B"]);
        assert_eq!(set.batches[0].rows.len(), 4);
        assert_eq!(set.batches[1].rows.len(), 3);
        // The residual filter ran inside the worker too.
        assert_eq!(set.batches[2].rows.len(), 1);
        assert_eq!(set.batches[3].rows.len(), 2);
        assert_eq!(set.total_rows(), 10);
        assert!(set.is_complete());
    }

    #[test]
    fn parallel_fetch_degrades_failing_sources() {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.register(wrapper("OK", "ca", "Spine", 3)).unwrap();
        let failing = FaultInjector::new(wrapper("BAD", "cb", "Shaft", 2), m.clock())
            .with_fault(Fault::FailFirst(1000));
        let failing = Arc::new(failing);
        failing.disarm();
        m.register(Arc::clone(&failing) as Arc<dyn Wrapper>)
            .unwrap();
        failing.arm();
        let requests = vec![
            FetchRequest::scan("OK", "ca"),
            FetchRequest::scan("BAD", "cb"),
        ];
        let set = m.federation_mut().fetch_parallel(&requests).unwrap();
        // The healthy source's rows arrive; the failing one degrades to
        // an empty batch, visible in the report.
        assert_eq!(set.batches[0].rows.len(), 3);
        assert!(set.batches[1].rows.is_empty());
        assert!(!set.is_complete());
        assert!(matches!(
            set.report.source("BAD").unwrap().outcome,
            SourceOutcome::Failed { .. }
        ));
        // The breaker advanced under the worker and was put back.
        assert!(m.breaker_state("BAD").is_some());
        // The federation's cumulative report absorbed the delta.
        assert!(!m.report().is_complete());
    }

    #[test]
    fn parallel_fetch_validates_before_contacting_anything() {
        let mut m = three_source_mediator();
        let requests = vec![
            FetchRequest::scan("A", "ca"),
            FetchRequest::scan("NOPE", "ca"),
        ];
        assert!(matches!(
            m.federation_mut().fetch_parallel(&requests),
            Err(MediatorError::UnknownSource { .. })
        ));
        // Nothing was fetched: the wrapper never saw the valid request.
        assert_eq!(m.stats().source_queries, 0);
        let requests = vec![FetchRequest::scan("A", "not_a_class")];
        assert!(matches!(
            m.federation_mut().fetch_parallel(&requests),
            Err(MediatorError::UnknownClass { .. })
        ));
    }

    #[test]
    fn empty_request_list_is_a_complete_noop() {
        let mut m = three_source_mediator();
        let set = m.federation_mut().fetch_parallel(&[]).unwrap();
        assert!(set.batches.is_empty());
        assert!(set.is_complete());
        assert_eq!(set.stats, MediatorStats::default());
    }

    #[test]
    fn overlapped_is_bit_identical_to_scoped() {
        let mut baseline = three_source_mediator();
        baseline.federation_mut().set_fetch_threads(1);
        let requests = all_scans(&baseline);
        let serial = baseline.federation_mut().fetch_parallel(&requests).unwrap();
        for (workers, in_flight) in [(1usize, 0usize), (1, 1), (8, 0), (8, 2)] {
            let mut m = three_source_mediator();
            m.set_fetch_mode(FetchMode::Overlapped);
            m.federation_mut().set_fetch_threads(workers);
            m.set_in_flight_limit(in_flight);
            let over = m.federation_mut().fetch_parallel(&requests).unwrap();
            assert_eq!(
                format!("{:?}", serial.batches),
                format!("{:?}", over.batches),
                "batches diverge at {workers} workers / in-flight {in_flight}"
            );
            assert_eq!(serial.report, over.report);
            assert_eq!(serial.stats, over.stats);
        }
    }

    #[test]
    fn overlapped_matches_scoped_under_faults_hedges_and_deadlines() {
        // A seeded fault schedule exercising retries (FailFirst), the
        // hedge path (SlowTail + hedge_after_ms), and deadline charging
        // (query budget), run through both transports.
        let build = |mode: FetchMode, workers: usize| {
            let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
            m.set_fetch_mode(mode);
            m.federation_mut().set_fetch_threads(workers);
            m.set_default_policy(SourcePolicy::with_hedge_after_ms(10));
            m.set_query_budget_ms(500);
            m.register(wrapper("OK", "ca", "Spine", 3)).unwrap();
            let shaky = FaultInjector::new(wrapper("SHAKY", "cb", "Shaft", 2), m.clock())
                .with_fault(Fault::FailFirst(1))
                .with_fault(Fault::SlowTail {
                    seed: 77,
                    delay_ms: 40,
                    slow_per_mille: 700,
                });
            let shaky = Arc::new(shaky);
            shaky.disarm();
            m.register(Arc::clone(&shaky) as Arc<dyn Wrapper>).unwrap();
            shaky.arm();
            m.register(wrapper("C", "cc", "Neuron", 4)).unwrap();
            m
        };
        let mut baseline = build(FetchMode::ScopedThreads, 1);
        let requests = all_scans(&baseline);
        let serial = baseline.federation_mut().fetch_parallel(&requests).unwrap();
        for workers in [1usize, 8] {
            let mut m = build(FetchMode::Overlapped, workers);
            let over = m.federation_mut().fetch_parallel(&requests).unwrap();
            assert_eq!(
                format!("{:?}", serial.batches),
                format!("{:?}", over.batches),
                "batches diverge at {workers} workers"
            );
            assert_eq!(serial.report, over.report, "reports diverge at {workers}");
            assert_eq!(serial.stats, over.stats, "stats diverge at {workers}");
            assert_eq!(
                baseline.breaker_state("SHAKY"),
                m.breaker_state("SHAKY"),
                "breaker state diverges at {workers}"
            );
        }
        // The schedule actually exercised the machinery: a retry
        // happened and at least one hedge fired.
        let shaky = serial.report.source("SHAKY").unwrap();
        assert!(shaky.attempts > 1 || shaky.hedged > 0);
    }

    #[test]
    fn stall_aware_plans_size_by_overlap_not_cores() {
        // Satellite: a 1-core host federating 8 stall-bound sources must
        // not serialize them. With a stall hint registered and the knob
        // on auto, the scoped plane sizes one worker per job.
        let mut m = three_source_mediator();
        let slow = StallAware::new(
            wrapper("SLOW", "cd", "Dendrite", 1),
            std::time::Duration::from_millis(1),
        );
        m.register(slow).unwrap();
        assert_eq!(m.federation().effective_fetch_threads(8), 8);
        assert_eq!(m.federation().effective_fetch_threads(1), 1);
        // The in-flight limit still caps the pool.
        m.set_in_flight_limit(3);
        assert_eq!(m.federation().effective_fetch_threads(8), 3);
        m.set_in_flight_limit(0);
        // An explicit knob wins over the stall-aware sizing.
        m.federation_mut().set_fetch_threads(2);
        assert_eq!(m.federation().effective_fetch_threads(8), 2);
        // On the overlapped plane parking makes over-provisioning moot,
        // so the pool sizes by cores as usual.
        m.federation_mut().set_fetch_threads(0);
        m.set_fetch_mode(FetchMode::Overlapped);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(
            m.federation().effective_fetch_threads(8),
            kind_datalog::pool_size(0, 8, cores)
        );
    }

    #[test]
    fn overlapped_parks_stalls_instead_of_holding_threads() {
        // 8 stall-aware sources × 25ms on 2 workers: thread-per-source
        // needs 8 threads (or 4 × 25ms rounds); parking overlaps all 8
        // stalls on the wheel and finishes in ~1 round.
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        for s in 0..8 {
            let w = wrapper(&format!("S{s}"), &format!("c{s}"), "Spine", 2);
            m.register(StallAware::new(w, std::time::Duration::from_millis(25)))
                .unwrap();
        }
        m.set_fetch_mode(FetchMode::Overlapped);
        m.federation_mut().set_fetch_threads(2);
        let requests = all_scans(&m);
        m.federation_mut().reset_peak_fetch_threads();
        let start = std::time::Instant::now();
        let set = m.federation_mut().fetch_parallel(&requests).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(set.total_rows(), 16);
        assert!(set.is_complete());
        // Peak thread count is the pool size, not the source count.
        assert!(
            m.federation().peak_fetch_threads() <= 2,
            "peak {} > workers",
            m.federation().peak_fetch_threads()
        );
        // Serial would be 8 × 25ms = 200ms; 2 blocking workers 100ms.
        // Overlapped parks all stalls concurrently: ~25ms + scheduling.
        assert!(
            elapsed < std::time::Duration::from_millis(150),
            "stalls did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn overlapped_respects_in_flight_admission() {
        // With in_flight = 1 jobs are admitted one at a time, in job
        // order — results still land bit-identical to serial.
        let mut baseline = three_source_mediator();
        baseline.federation_mut().set_fetch_threads(1);
        let requests = all_scans(&baseline);
        let serial = baseline.federation_mut().fetch_parallel(&requests).unwrap();
        let mut m = three_source_mediator();
        m.set_fetch_mode(FetchMode::Overlapped);
        m.federation_mut().set_fetch_threads(4);
        m.set_in_flight_limit(1);
        let over = m.federation_mut().fetch_parallel(&requests).unwrap();
        assert_eq!(
            format!("{:?}", serial.batches),
            format!("{:?}", over.batches)
        );
        assert_eq!(serial.report, over.report);
        assert_eq!(serial.stats, over.stats);
    }
}
