//! Fault model for the source federation.
//!
//! The paper's mediator assumes every wrapped source answers every query.
//! Real federations do not work that way: sources go down, time out, ship
//! rows that violate their own exported CM, or truncate results. This
//! module gives the wrapper boundary a failure vocabulary and the
//! machinery the mediator uses to survive it:
//!
//! * [`SourceError`] — the typed failure taxonomy every
//!   [`Wrapper::query`] call can raise;
//! * [`Clock`] / [`VirtualClock`] — a virtual time source, so timeouts,
//!   backoff, and breaker cooldowns are fully deterministic (no
//!   wall-clock anywhere in the query path);
//! * [`QueryBudget`] — the **deadline plane**: a per-operation
//!   virtual-time allowance sliced across the fetch plane, with a shared
//!   [`CancelToken`] for cooperative cancellation of in-flight fetch
//!   jobs and Datalog fixpoints;
//! * [`RetryPolicy`] — bounded attempts with deterministic exponential
//!   backoff;
//! * [`CircuitBreaker`] — the classic closed → open → half-open state
//!   machine, one per source, so a persistently failing source stops
//!   being queried at all until a cooldown elapses;
//! * [`FaultInjector`] — a decorator wrapper that injects failures from a
//!   *seeded, deterministic* schedule (fail-first-N, every-Kth, flaky,
//!   slow, truncating, row-corrupting), for tests and chaos experiments;
//! * [`AnswerReport`] — the per-source outcome record every degradable
//!   operation (`materialize_all`, `answer`, the §5 plan) attaches to its
//!   result, including quarantined-row diagnostics and a completeness
//!   flag.
//!
//! Degradation semantics are described in DESIGN.md ("Fault model &
//! degradation semantics").

use crate::wrapper::{Anchor, Capability, ObjectRow, QueryTemplate, SourceQuery, Wrapper};
use kind_datalog::CancelToken;
use kind_gcm::GcmValue;
use kind_xml::Element;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// The failure taxonomy.
// ---------------------------------------------------------------------

/// A typed failure at the wrapper boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The source could not be reached (or refused) the query.
    Unavailable {
        /// Human-readable cause.
        reason: String,
    },
    /// The query took longer than the caller's budget.
    Timeout {
        /// Observed elapsed virtual time.
        elapsed_ms: u64,
        /// The budget that was exceeded.
        budget_ms: u64,
    },
    /// The source shipped a row the mediator could not make sense of.
    MalformedRow {
        /// The offending row's id (or a placeholder for wire-level
        /// failures that never produced a row).
        row: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The source stopped shipping mid-answer.
    Truncated {
        /// Rows shipped before the cut.
        shipped: usize,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Unavailable { reason } => write!(f, "source unavailable: {reason}"),
            SourceError::Timeout {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "query timed out after {elapsed_ms}ms (budget {budget_ms}ms)"
            ),
            SourceError::MalformedRow { row, reason } => {
                write!(f, "malformed row `{row}`: {reason}")
            }
            SourceError::Truncated { shipped } => {
                write!(f, "answer truncated after {shipped} rows")
            }
        }
    }
}

impl std::error::Error for SourceError {}

impl From<kind_xml::XmlError> for SourceError {
    /// A wire-level parse failure is a malformed answer: no row was ever
    /// recovered from the document.
    fn from(e: kind_xml::XmlError) -> Self {
        SourceError::MalformedRow {
            row: "<wire>".into(),
            reason: e.to_string(),
        }
    }
}

impl From<kind_gcm::GcmError> for SourceError {
    /// A bundle/CM decode failure is likewise a malformed answer.
    fn from(e: kind_gcm::GcmError) -> Self {
        SourceError::MalformedRow {
            row: "<wire>".into(),
            reason: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// Virtual time.
// ---------------------------------------------------------------------

/// A time source for timeouts, backoff, and breaker cooldowns.
///
/// Production code could plug a wall-clock in; everything in this
/// repository uses [`VirtualClock`] so that every fault-tolerance test is
/// deterministic and instant.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Current time in milliseconds.
    fn now_ms(&self) -> u64;
    /// Advances time (backoff "sleeps" by calling this).
    fn advance_ms(&self, ms: u64);
}

/// A deterministic, manually advanced clock.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// A clock starting at `ms`.
    pub fn at(ms: u64) -> Self {
        VirtualClock {
            now: AtomicU64::new(ms),
        }
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn advance_ms(&self, ms: u64) {
        self.now
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| {
                Some(t.saturating_add(ms))
            })
            .expect("fetch_update never fails");
    }
}

// ---------------------------------------------------------------------
// The deadline plane: query budgets.
// ---------------------------------------------------------------------

/// A per-operation virtual-time allowance — the **deadline plane**.
///
/// A budget is started against the federation [`Clock`] when a
/// degradable operation begins and is *charged* at deterministic points:
/// after each parallel fetch round, with that round's **critical path**
/// (the maximum over concurrent source jobs of their self-inflicted
/// virtual time — injected delays plus retry backoff). Each fetch round
/// hands every source job a *slice* equal to the budget's remaining
/// allowance; a job that exhausts its slice stops contacting its source
/// and reports [`SourceOutcome::DeadlineExceeded`], degrading the answer
/// instead of aborting it.
///
/// **Determinism.** Budget decisions are never made from racy global
/// clock reads: a job charges itself only for time *it* caused
/// ([`Wrapper::virtual_cost_ms`] deltas around its own calls, plus its
/// own backoff sleeps), so outcomes are bit-identical for every
/// `fetch_threads` setting even though concurrent clock advances
/// interleave. The clock anchors [`Self::started_ms`] for diagnostics
/// only.
///
/// The embedded [`CancelToken`] is shared with the evaluate plane
/// ([`kind_datalog::EvalOptions::cancel`]) and checked by fetch jobs
/// between attempts: cancelling it winds down both planes cooperatively.
/// With [`Self::set_cancel_on_exhaust`] the first job to exhaust its
/// slice also cancels the token, reining in in-flight siblings — at the
/// cost of the strict any-thread-count report identity (which siblings
/// see the flag first is a scheduling race), so it is off by default.
#[derive(Debug, Clone)]
pub struct QueryBudget {
    budget_ms: u64,
    started_ms: u64,
    consumed_ms: u64,
    cancel: CancelToken,
    cancel_on_exhaust: bool,
}

impl QueryBudget {
    /// Starts a budget of `budget_ms` virtual milliseconds at the
    /// clock's current time, with a fresh cancellation token.
    pub fn start(clock: &Arc<dyn Clock>, budget_ms: u64) -> Self {
        QueryBudget {
            budget_ms,
            started_ms: clock.now_ms(),
            consumed_ms: 0,
            cancel: CancelToken::new(),
            cancel_on_exhaust: false,
        }
    }

    /// Shares an externally owned token (builder-style), so a caller can
    /// cancel the whole operation from another thread.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The total allowance in virtual milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// The clock reading when the budget started (diagnostics only; see
    /// the type docs for why decisions never read the clock).
    pub fn started_ms(&self) -> u64 {
        self.started_ms
    }

    /// Deterministically accounted virtual time consumed so far.
    pub fn consumed_ms(&self) -> u64 {
        self.consumed_ms
    }

    /// The remaining allowance (saturating at zero).
    pub fn remaining_ms(&self) -> u64 {
        self.budget_ms.saturating_sub(self.consumed_ms)
    }

    /// Whether the allowance is used up.
    pub fn is_exhausted(&self) -> bool {
        self.remaining_ms() == 0
    }

    /// Charges `ms` of consumed virtual time (a fetch round's critical
    /// path). Cancels the token if configured and now exhausted.
    pub fn charge(&mut self, ms: u64) {
        self.consumed_ms = self.consumed_ms.saturating_add(ms);
        if self.cancel_on_exhaust && self.is_exhausted() {
            self.cancel.cancel();
        }
    }

    /// A clone of the budget's cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether exhausting the budget should cancel the shared token (and
    /// with it any in-flight sibling work). Off by default; see the type
    /// docs for the determinism trade-off.
    pub fn set_cancel_on_exhaust(&mut self, yes: bool) {
        self.cancel_on_exhaust = yes;
    }

    /// The [`Self::set_cancel_on_exhaust`] setting.
    pub fn cancels_on_exhaust(&self) -> bool {
        self.cancel_on_exhaust
    }
}

// ---------------------------------------------------------------------
// Retry policy.
// ---------------------------------------------------------------------

/// Bounded retries with deterministic exponential backoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry). Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff_ms: u64,
    /// Backoff growth factor between attempts.
    pub multiplier: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            multiplier: 2,
            max_backoff_ms: 5_000,
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The default policy with a different attempt budget.
    pub fn attempts(n: u32) -> Self {
        RetryPolicy {
            max_attempts: n.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep after `completed_attempts` have failed
    /// (so `backoff_ms(1)` is the delay before attempt 2).
    pub fn backoff_ms(&self, completed_attempts: u32) -> u64 {
        let mut delay = self.base_backoff_ms;
        for _ in 1..completed_attempts {
            delay = delay
                .saturating_mul(self.multiplier.max(1))
                .min(self.max_backoff_ms);
        }
        delay.min(self.max_backoff_ms)
    }
}

// ---------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------

/// Breaker tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a half-open
    /// trial.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 30_000,
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counts failures since the last success.
    Closed {
        /// Consecutive failures so far.
        consecutive_failures: u32,
    },
    /// Tripped: all queries are skipped until the cooldown elapses.
    Open {
        /// When the breaker opened.
        opened_at_ms: u64,
    },
    /// Cooldown elapsed: exactly one trial query is allowed through; its
    /// outcome decides between `Closed` and `Open`.
    HalfOpen,
}

/// A per-source circuit breaker (closed → open → half-open).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a query may go through at virtual time `now_ms`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the trial.
    pub fn allows(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { opened_at_ms } => {
                if now_ms >= opened_at_ms.saturating_add(self.config.cooldown_ms) {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful query: the breaker closes and the failure
    /// count resets.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed {
            consecutive_failures: 0,
        };
    }

    /// Records a failed query at virtual time `now_ms`: a half-open
    /// trial failure re-opens immediately; a closed breaker opens once
    /// the threshold is reached.
    pub fn record_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.config.failure_threshold {
                    self.state = BreakerState::Open {
                        opened_at_ms: now_ms,
                    };
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures: n,
                    };
                }
            }
            BreakerState::HalfOpen | BreakerState::Open { .. } => {
                self.state = BreakerState::Open {
                    opened_at_ms: now_ms,
                };
            }
        }
    }
}

/// Per-source resilience settings: retry, timeout budget, breaker,
/// hedging.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourcePolicy {
    /// Retry/backoff settings.
    pub retry: RetryPolicy,
    /// Per-attempt budget in virtual milliseconds; 0 disables the check.
    pub timeout_ms: u64,
    /// Breaker settings.
    pub breaker: BreakerConfig,
    /// Hedged fetches: when a successful attempt's self-inflicted
    /// virtual cost exceeds this threshold, one backup attempt is
    /// launched and the first (virtual-time) success wins; the loser is
    /// cancelled and recorded ([`SourceReport::hedged`] /
    /// [`SourceReport::cancelled`]). `0` (the default) disables
    /// hedging. Sources in breaker half-open trials, and sources that
    /// already shipped quarantined rows in the operation, are never
    /// hedged.
    pub hedge_after_ms: u64,
}

impl SourcePolicy {
    /// The default policy with a per-attempt timeout budget.
    pub fn with_timeout_ms(timeout_ms: u64) -> Self {
        SourcePolicy {
            timeout_ms,
            ..SourcePolicy::default()
        }
    }

    /// The default policy with hedging enabled past `hedge_after_ms`.
    pub fn with_hedge_after_ms(hedge_after_ms: u64) -> Self {
        SourcePolicy {
            hedge_after_ms,
            ..SourcePolicy::default()
        }
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// One entry of a [`FaultInjector`] schedule. All faults are
/// deterministic functions of the injector's call counter (and their
/// seed, where they have one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The first `n` calls fail with [`SourceError::Unavailable`].
    FailFirst(u32),
    /// Every `k`-th call (the k-th, 2k-th, …) fails.
    EveryKth(u32),
    /// Each call independently fails with probability
    /// `fail_per_mille`/1000, drawn from a seeded hash of the call
    /// number — the same seed always fails the same calls.
    Flaky {
        /// Hash seed.
        seed: u64,
        /// Failure probability in per-mille.
        fail_per_mille: u16,
    },
    /// Every call advances the virtual clock by `delay_ms` before
    /// answering (combine with a [`SourcePolicy::timeout_ms`] budget to
    /// exercise timeouts).
    Slow {
        /// Virtual delay per call.
        delay_ms: u64,
    },
    /// A latency *tail*: each call is independently slow (advancing the
    /// clock by `delay_ms`) with probability `slow_per_mille`/1000,
    /// drawn from a seeded hash of the call number. The tool behind the
    /// hedged-fetch benchmarks: a hedge's backup attempt re-rolls, so
    /// most tail hits are rescued. Use a seed distinct from any `Flaky`
    /// fault on the same injector (the draws are salted differently, but
    /// distinct seeds keep schedules independent at a glance).
    SlowTail {
        /// Hash seed.
        seed: u64,
        /// Virtual delay when the tail hits.
        delay_ms: u64,
        /// Tail probability in per-mille.
        slow_per_mille: u16,
    },
    /// Answers with more than `n` rows fail with
    /// [`SourceError::Truncated`].
    TruncateAfter(usize),
    /// Chaos mode: a seeded fraction of shipped rows is corrupted
    /// *against the declared CM* — ids blanked, attributes dropped, or
    /// undeclared attributes injected — so CM validation downstream has
    /// something real to catch.
    CorruptRows {
        /// Hash seed.
        seed: u64,
        /// Corruption probability per row, in per-mille.
        corrupt_per_mille: u16,
    },
}

/// SplitMix64 finalizer: the deterministic hash behind `Flaky` and
/// `CorruptRows`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A decorator wrapper that injects faults from a deterministic
/// schedule. Wrap any [`Wrapper`] before registering it:
///
/// ```
/// use kind_core::{Fault, FaultInjector, MemoryWrapper, VirtualClock};
/// use std::sync::Arc;
///
/// let clock = Arc::new(VirtualClock::new());
/// let flaky = FaultInjector::new(Arc::new(MemoryWrapper::new("LAB")), clock)
///     .with_fault(Fault::FailFirst(2));
/// ```
///
/// The injector can be `disarm`ed (pass-through) during registration and
/// `arm`ed afterwards, so a fault schedule targets query traffic rather
/// than the registration handshake.
pub struct FaultInjector {
    inner: Arc<dyn Wrapper>,
    clock: Arc<dyn Clock>,
    faults: Vec<Fault>,
    armed: AtomicBool,
    calls: AtomicU64,
    /// Cumulative virtual delay this injector itself added (`Slow` /
    /// `SlowTail`), reported through [`Wrapper::virtual_cost_ms`] so the
    /// deadline plane can charge each job exactly its own time.
    injected_ms: AtomicU64,
    /// The call number of the one outstanding parked submission (the
    /// split-phase protocol allows at most one per wrapper), so
    /// [`Wrapper::complete`] applies the *same* call's post-faults that
    /// [`Wrapper::submit`] drew pre-faults for. [`NO_PENDING`] when the
    /// submission was made while disarmed (or none is outstanding).
    pending_call: AtomicU64,
}

/// Sentinel for [`FaultInjector::pending_call`]: no armed submission
/// outstanding.
const NO_PENDING: u64 = u64::MAX;

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("inner", &self.inner.name())
            .field("faults", &self.faults)
            .field("armed", &self.armed.load(Ordering::SeqCst))
            .field("calls", &self.calls.load(Ordering::SeqCst))
            .finish()
    }
}

impl FaultInjector {
    /// Wraps `inner`, sharing `clock` with the mediator (see
    /// [`crate::Mediator::clock`]).
    pub fn new(inner: Arc<dyn Wrapper>, clock: Arc<dyn Clock>) -> Self {
        FaultInjector {
            inner,
            clock,
            faults: Vec::new(),
            armed: AtomicBool::new(true),
            calls: AtomicU64::new(0),
            injected_ms: AtomicU64::new(0),
            pending_call: AtomicU64::new(NO_PENDING),
        }
    }

    /// Adds a fault to the schedule (builder-style).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Starts injecting (the default).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stops injecting; calls pass straight through and do not advance
    /// the call counter.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// How many (armed) queries the injector has intercepted.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Advances the shared clock by an injected delay and books it as
    /// this wrapper's own virtual cost.
    fn inject_delay(&self, ms: u64) {
        self.clock.advance_ms(ms);
        self.injected_ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Deterministically mangles a row against its declared CM.
    fn corrupt(row: &mut ObjectRow, h: u64) {
        match (h >> 10) % 3 {
            0 => row.id.clear(),
            1 => {
                if !row.attrs.is_empty() {
                    let i = ((h >> 20) as usize) % row.attrs.len();
                    row.attrs.remove(i);
                }
            }
            _ => row
                .attrs
                .push(("__corrupted".into(), GcmValue::Id("??".into()))),
        }
    }

    /// The faults drawn *before* the inner wrapper answers, for call
    /// number `call`: injected delays and outright failures, in schedule
    /// order. Shared by the blocking ([`Wrapper::query`]) and split
    /// ([`Wrapper::submit`]) paths, so a given call number draws the
    /// identical schedule in both fetch modes.
    fn pre_faults(&self, call: u64) -> std::result::Result<(), SourceError> {
        for fault in &self.faults {
            match *fault {
                Fault::Slow { delay_ms } => self.inject_delay(delay_ms),
                Fault::SlowTail {
                    seed,
                    delay_ms,
                    slow_per_mille,
                    // Salted so a SlowTail and a Flaky sharing a seed
                    // still draw independent schedules.
                } if mix(seed ^ 0x7a11 ^ mix(call)) % 1000 < u64::from(slow_per_mille) => {
                    self.inject_delay(delay_ms);
                }
                Fault::FailFirst(n) if call < u64::from(n) => {
                    return Err(SourceError::Unavailable {
                        reason: format!("injected fail-first-{n} (call #{call})"),
                    });
                }
                Fault::EveryKth(k) if k > 0 && (call + 1).is_multiple_of(u64::from(k)) => {
                    return Err(SourceError::Unavailable {
                        reason: format!("injected every-{k}th failure (call #{call})"),
                    });
                }
                Fault::Flaky {
                    seed,
                    fail_per_mille,
                } if mix(seed ^ mix(call)) % 1000 < u64::from(fail_per_mille) => {
                    return Err(SourceError::Unavailable {
                        reason: format!("injected flaky failure (seed {seed}, call #{call})"),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The faults applied *to* the inner wrapper's answer, for the same
    /// call number the pre-faults were drawn with.
    fn post_faults(
        &self,
        call: u64,
        mut rows: Vec<ObjectRow>,
    ) -> std::result::Result<Vec<ObjectRow>, SourceError> {
        for fault in &self.faults {
            match *fault {
                Fault::TruncateAfter(n) if rows.len() > n => {
                    return Err(SourceError::Truncated { shipped: n });
                }
                Fault::CorruptRows {
                    seed,
                    corrupt_per_mille,
                } => {
                    for (i, row) in rows.iter_mut().enumerate() {
                        let h = mix(seed ^ mix(call) ^ (i as u64).wrapping_mul(0x5851));
                        if h % 1000 < u64::from(corrupt_per_mille) {
                            Self::corrupt(row, h);
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(rows)
    }
}

impl Wrapper for FaultInjector {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn formalism(&self) -> &str {
        self.inner.formalism()
    }

    fn export_cm(&self) -> Element {
        self.inner.export_cm()
    }

    fn capabilities(&self) -> Vec<Capability> {
        self.inner.capabilities()
    }

    fn templates(&self) -> Vec<QueryTemplate> {
        self.inner.templates()
    }

    fn anchors(&self) -> Vec<Anchor> {
        self.inner.anchors()
    }

    fn dm_contribution(&self) -> String {
        self.inner.dm_contribution()
    }

    fn virtual_cost_ms(&self) -> u64 {
        self.injected_ms
            .load(Ordering::SeqCst)
            .saturating_add(self.inner.virtual_cost_ms())
    }

    fn query(&self, q: &SourceQuery) -> std::result::Result<Vec<ObjectRow>, SourceError> {
        if !self.armed.load(Ordering::SeqCst) {
            return self.inner.query(q);
        }
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        self.pre_faults(call)?;
        let rows = self.inner.query(q)?;
        self.post_faults(call, rows)
    }

    fn stall_hint(&self) -> Option<std::time::Duration> {
        // Injected delays are virtual (they advance the clock, not the
        // wall); only the inner wrapper's declared wall stall counts.
        self.inner.stall_hint()
    }

    fn submit(&self, q: &SourceQuery) -> crate::wrapper::Submission {
        use crate::wrapper::Submission;
        if !self.armed.load(Ordering::SeqCst) {
            // Pass-through, like the disarmed `query` path: do not count
            // the call, and defer nothing to `complete`.
            let sub = self.inner.submit(q);
            if matches!(sub, Submission::Parked { .. }) {
                self.pending_call.store(NO_PENDING, Ordering::SeqCst);
            }
            return sub;
        }
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        // A pre-fault failure answers inline: the inner wrapper is never
        // contacted, exactly like the blocking path.
        if let Err(e) = self.pre_faults(call) {
            return Submission::Ready(Err(e));
        }
        match self.inner.submit(q) {
            Submission::Ready(r) => {
                Submission::Ready(r.and_then(|rows| self.post_faults(call, rows)))
            }
            Submission::Parked { stall, ticket } => {
                self.pending_call.store(call, Ordering::SeqCst);
                Submission::Parked { stall, ticket }
            }
        }
    }

    fn complete(
        &self,
        ticket: u64,
        q: &SourceQuery,
    ) -> std::result::Result<Vec<ObjectRow>, SourceError> {
        let r = self.inner.complete(ticket, q);
        // Apply the parked call's post-faults — captured at submit time,
        // so an arm/disarm flip mid-flight cannot desynchronise the
        // draw from its call number.
        match self.pending_call.swap(NO_PENDING, Ordering::SeqCst) {
            NO_PENDING => r,
            call => r.and_then(|rows| self.post_faults(call, rows)),
        }
    }
}

// ---------------------------------------------------------------------
// Answer reports.
// ---------------------------------------------------------------------

/// What ultimately happened to one source over one degradable operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SourceOutcome {
    /// Every fetch succeeded on the first attempt.
    #[default]
    Ok,
    /// Succeeded, but only after `retries` extra attempts.
    Retried {
        /// Attempts beyond the first, summed over the operation.
        retries: u32,
    },
    /// At least one fetch was skipped because the breaker was open.
    SkippedByBreaker,
    /// At least one fetch was abandoned because the query's
    /// [`crate::fault::QueryBudget`] cancellation token fired. The source
    /// was not necessarily at fault; its rows are simply missing.
    Cancelled,
    /// At least one fetch was cut off by the query deadline: the job's
    /// budget slice ran out before (or while) this source answered.
    DeadlineExceeded {
        /// Virtual milliseconds the job had spent when it gave up.
        spent_ms: u64,
        /// The budget slice the job was working against.
        budget_ms: u64,
    },
    /// At least one fetch exhausted its retry budget.
    Failed {
        /// The final error of the first failing fetch.
        error: SourceError,
    },
}

impl SourceOutcome {
    fn rank(&self) -> u8 {
        match self {
            SourceOutcome::Ok => 0,
            SourceOutcome::Retried { .. } => 1,
            SourceOutcome::SkippedByBreaker => 2,
            SourceOutcome::Cancelled => 3,
            SourceOutcome::DeadlineExceeded { .. } => 4,
            SourceOutcome::Failed { .. } => 5,
        }
    }

    /// Folds two outcomes into the worst of the pair (retries summed).
    /// The single merge rule used by both [`AnswerReport::record_fetch`]
    /// and [`AnswerReport::absorb`], so per-fetch and per-report folding
    /// cannot disagree.
    fn merged(old: SourceOutcome, new: SourceOutcome) -> SourceOutcome {
        match (old, new) {
            (SourceOutcome::Retried { retries: a }, SourceOutcome::Retried { retries: b }) => {
                SourceOutcome::Retried { retries: a + b }
            }
            (old, new) => {
                if new.rank() >= old.rank() {
                    new
                } else {
                    old
                }
            }
        }
    }

    /// Whether this outcome means the answer may be missing rows.
    /// A hedged-but-successful fetch is *not* degraded — hedging is
    /// recorded on [`SourceReport::hedged`], not here.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            SourceOutcome::SkippedByBreaker
                | SourceOutcome::Cancelled
                | SourceOutcome::DeadlineExceeded { .. }
                | SourceOutcome::Failed { .. }
        )
    }
}

/// A row dropped by CM validation, with its diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// The shipping source.
    pub source: String,
    /// The queried class.
    pub class: String,
    /// The row's id (possibly empty — that can be the defect).
    pub row_id: String,
    /// Why the row was rejected.
    pub reason: String,
}

/// Per-source bookkeeping inside an [`AnswerReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceReport {
    /// Logical fetch operations issued to the source.
    pub fetches: usize,
    /// Physical wrapper attempts (≥ fetches when retries happened).
    pub attempts: usize,
    /// Rows accepted from the source.
    pub rows: usize,
    /// Rows quarantined by CM validation.
    pub quarantined: usize,
    /// Backup attempts launched against this source because the primary
    /// attempt was slow (see [`crate::SourcePolicy::hedge_after_ms`]).
    pub hedged: usize,
    /// Attempts cancelled before completing: hedge losers plus fetches
    /// abandoned on cancellation or deadline expiry.
    pub cancelled: usize,
    /// The merged outcome (worst over all fetches; retries summed).
    pub outcome: SourceOutcome,
}

/// The degradation record attached to every answer: which sources were
/// contacted, how they fared, what was quarantined, and whether the
/// answer is complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnswerReport {
    /// Per-source outcomes, keyed by source name.
    pub sources: BTreeMap<String, SourceReport>,
    /// Every quarantined row, with diagnostics.
    pub quarantined: Vec<QuarantinedRow>,
    /// Virtual milliseconds the fetch plane spent on this operation: the
    /// critical path (max over concurrent jobs of each job's own spend)
    /// summed across sequential fetch rounds. Scheduling-independent, so
    /// equal seeds produce equal values at every thread count.
    pub elapsed_ms: u64,
    /// The query budget in force when the operation started (0 = none).
    pub budget_ms: u64,
}

impl AnswerReport {
    /// `true` iff the answer is exactly what a fault-free run would have
    /// produced: no source failed, was skipped, was cancelled, or hit the
    /// deadline, and no row was quarantined. Hedging does **not** make an
    /// answer incomplete — a hedged fetch that succeeded delivered the
    /// same rows, just via a backup attempt — but a
    /// [`SourceOutcome::DeadlineExceeded`] or [`SourceOutcome::Cancelled`]
    /// source does, because its rows never landed.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty() && self.sources.values().all(|s| !s.outcome.is_degraded())
    }

    /// `true` iff at least one source was cut off by the query deadline.
    /// The answer still contains every row that landed in time; callers
    /// decide whether a fast partial answer beats a late complete one.
    pub fn deadline_exceeded(&self) -> bool {
        self.sources
            .values()
            .any(|s| matches!(s.outcome, SourceOutcome::DeadlineExceeded { .. }))
    }

    /// The report for one source, if it was contacted.
    pub fn source(&self, name: &str) -> Option<&SourceReport> {
        self.sources.get(name)
    }

    /// Names of sources whose data may be missing from the answer.
    pub fn degraded_sources(&self) -> Vec<&str> {
        self.sources
            .iter()
            .filter(|(_, s)| s.outcome.is_degraded())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Folds one fetch's outcome into the per-source record.
    pub(crate) fn record_fetch(
        &mut self,
        name: &str,
        attempts: usize,
        rows: usize,
        hedged: usize,
        cancelled: usize,
        outcome: SourceOutcome,
    ) {
        let entry = self.sources.entry(name.to_string()).or_default();
        entry.fetches += 1;
        entry.attempts += attempts;
        entry.rows += rows;
        entry.hedged += hedged;
        entry.cancelled += cancelled;
        entry.outcome = SourceOutcome::merged(entry.outcome.clone(), outcome);
    }

    /// Folds a whole (delta) report into this one: per-source counters
    /// are summed, outcomes merged by the [`SourceOutcome::merged`] rule,
    /// and quarantined-row diagnostics appended in `other`'s order. The
    /// parallel fetch plane builds one delta report per operation and
    /// absorbs it into the federation's cumulative report.
    pub fn absorb(&mut self, other: &AnswerReport) {
        for (name, s) in &other.sources {
            let entry = self.sources.entry(name.clone()).or_default();
            entry.fetches += s.fetches;
            entry.attempts += s.attempts;
            entry.rows += s.rows;
            entry.quarantined += s.quarantined;
            entry.hedged += s.hedged;
            entry.cancelled += s.cancelled;
            entry.outcome = SourceOutcome::merged(entry.outcome.clone(), s.outcome.clone());
        }
        self.quarantined.extend(other.quarantined.iter().cloned());
        // Sequential rounds accumulate wall time; the budget is a property
        // of the whole query, so the first armed value wins.
        self.elapsed_ms = self.elapsed_ms.saturating_add(other.elapsed_ms);
        if self.budget_ms == 0 {
            self.budget_ms = other.budget_ms;
        }
    }

    /// Records a quarantined row under its source.
    pub(crate) fn record_quarantine(&mut self, q: QuarantinedRow) {
        self.sources
            .entry(q.source.clone())
            .or_default()
            .quarantined += 1;
        self.quarantined.push(q);
    }

    /// A human-readable one-line-per-source summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, s) in &self.sources {
            let outcome = match &s.outcome {
                SourceOutcome::Ok => "ok".to_string(),
                SourceOutcome::Retried { retries } => format!("ok after {retries} retries"),
                SourceOutcome::SkippedByBreaker => "skipped (breaker open)".to_string(),
                SourceOutcome::Cancelled => "cancelled".to_string(),
                SourceOutcome::DeadlineExceeded {
                    spent_ms,
                    budget_ms,
                } => format!("deadline exceeded ({spent_ms}ms spent of {budget_ms}ms)"),
                SourceOutcome::Failed { error } => format!("failed: {error}"),
            };
            let hedged = if s.hedged > 0 {
                format!(", {} hedged", s.hedged)
            } else {
                String::new()
            };
            let cancelled = if s.cancelled > 0 {
                format!(", {} cancelled", s.cancelled)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{name}: {outcome} ({} rows, {} quarantined, {} attempts{hedged}{cancelled})\n",
                s.rows, s.quarantined, s.attempts
            ));
        }
        out.push_str(if self.is_complete() {
            "answer: complete"
        } else {
            "answer: INCOMPLETE"
        });
        out
    }

    /// The whole report as one line — the `summary()` verdict plus the
    /// aggregate counts, for demos and logs that can't spare a paragraph.
    /// E.g. `complete · 8 sources, 240 rows, 9 attempts, 1 hedged, 142ms`.
    pub fn summary_line(&self) -> String {
        let rows: usize = self.sources.values().map(|s| s.rows).sum();
        let attempts: usize = self.sources.values().map(|s| s.attempts).sum();
        let hedged: usize = self.sources.values().map(|s| s.hedged).sum();
        let cancelled: usize = self.sources.values().map(|s| s.cancelled).sum();
        let verdict = if self.is_complete() {
            "complete".to_string()
        } else if self.deadline_exceeded() {
            format!(
                "DEADLINE EXCEEDED ({} of {} sources)",
                self.degraded_sources().len(),
                self.sources.len()
            )
        } else {
            format!(
                "INCOMPLETE ({} of {} sources degraded)",
                self.degraded_sources().len(),
                self.sources.len()
            )
        };
        let mut line = format!(
            "{verdict} · {} sources, {rows} rows, {attempts} attempts",
            self.sources.len()
        );
        if hedged > 0 {
            line.push_str(&format!(", {hedged} hedged"));
        }
        if cancelled > 0 {
            line.push_str(&format!(", {cancelled} cancelled"));
        }
        if !self.quarantined.is_empty() {
            line.push_str(&format!(", {} quarantined", self.quarantined.len()));
        }
        line.push_str(&format!(", {}ms", self.elapsed_ms));
        if self.budget_ms > 0 {
            line.push_str(&format!(" of {}ms budget", self.budget_ms));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::MemoryWrapper;

    fn lab(n_rows: usize) -> Arc<MemoryWrapper> {
        let mut w = MemoryWrapper::new("LAB");
        for i in 0..n_rows {
            w.add_row("m", &format!("r{i}"), vec![("v", GcmValue::Int(i as i64))]);
        }
        Arc::new(w)
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 100,
            multiplier: 2,
            max_backoff_ms: 500,
        };
        assert_eq!(p.backoff_ms(1), 100);
        assert_eq!(p.backoff_ms(2), 200);
        assert_eq!(p.backoff_ms(3), 400);
        assert_eq!(p.backoff_ms(4), 500); // capped
        assert_eq!(p.backoff_ms(5), 500);
    }

    #[test]
    fn breaker_closed_to_open_at_threshold() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 100,
        });
        assert!(b.allows(0));
        b.record_failure(0);
        b.record_failure(1);
        assert!(matches!(
            b.state(),
            BreakerState::Closed {
                consecutive_failures: 2
            }
        ));
        assert!(b.allows(2)); // still closed below the threshold
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open { opened_at_ms: 2 });
        assert!(!b.allows(50)); // cooldown not elapsed
    }

    #[test]
    fn breaker_success_resets_failure_count() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 100,
        });
        b.record_failure(0);
        b.record_success();
        b.record_failure(1);
        // The success in between reset the count: still closed.
        assert!(matches!(b.state(), BreakerState::Closed { .. }));
    }

    #[test]
    fn breaker_open_to_half_open_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 100,
        });
        b.record_failure(10);
        assert!(!b.allows(109));
        assert!(b.allows(110)); // cooldown elapsed: half-open trial
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn breaker_half_open_success_closes() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 100,
        });
        b.record_failure(0);
        assert!(b.allows(100));
        b.record_success();
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_failures: 0
            }
        );
    }

    #[test]
    fn breaker_half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 100,
        });
        b.record_failure(0);
        assert!(b.allows(100));
        b.record_failure(100);
        assert_eq!(b.state(), BreakerState::Open { opened_at_ms: 100 });
        // And the new cooldown runs from the re-open time.
        assert!(!b.allows(150));
        assert!(b.allows(200));
    }

    #[test]
    fn fail_first_then_recovers() {
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let inj = FaultInjector::new(lab(2), clock).with_fault(Fault::FailFirst(2));
        let q = SourceQuery::scan("m");
        assert!(inj.query(&q).is_err());
        assert!(inj.query(&q).is_err());
        assert_eq!(inj.query(&q).unwrap().len(), 2);
        assert_eq!(inj.calls(), 3);
    }

    #[test]
    fn every_kth_fails_periodically() {
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let inj = FaultInjector::new(lab(1), clock).with_fault(Fault::EveryKth(3));
        let q = SourceQuery::scan("m");
        let outcomes: Vec<bool> = (0..6).map(|_| inj.query(&q).is_ok()).collect();
        assert_eq!(outcomes, vec![true, true, false, true, true, false]);
    }

    #[test]
    fn flaky_schedule_is_deterministic() {
        let q = SourceQuery::scan("m");
        let run = |seed: u64| -> Vec<bool> {
            let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
            let inj = FaultInjector::new(lab(1), clock).with_fault(Fault::Flaky {
                seed,
                fail_per_mille: 400,
            });
            (0..32).map(|_| inj.query(&q).is_ok()).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds give different schedules");
        let failures = run(7).iter().filter(|ok| !**ok).count();
        assert!(failures > 0 && failures < 32, "roughly 40%, got {failures}");
    }

    #[test]
    fn slow_fault_advances_the_virtual_clock() {
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let inj = FaultInjector::new(lab(1), Arc::clone(&clock) as Arc<dyn Clock>)
            .with_fault(Fault::Slow { delay_ms: 250 });
        inj.query(&SourceQuery::scan("m")).unwrap();
        assert_eq!(clock.now_ms(), 250);
        inj.query(&SourceQuery::scan("m")).unwrap();
        assert_eq!(clock.now_ms(), 500);
    }

    #[test]
    fn truncation_reports_shipped_count() {
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let inj = FaultInjector::new(lab(5), clock).with_fault(Fault::TruncateAfter(3));
        assert_eq!(
            inj.query(&SourceQuery::scan("m")),
            Err(SourceError::Truncated { shipped: 3 })
        );
    }

    #[test]
    fn corruption_is_deterministic_and_partial() {
        let q = SourceQuery::scan("m");
        let run = || {
            let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
            let inj = FaultInjector::new(lab(40), clock).with_fault(Fault::CorruptRows {
                seed: 3,
                corrupt_per_mille: 300,
            });
            inj.query(&q).unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same corruption");
        let clean = lab(40).query(&q).unwrap();
        let corrupted = a.iter().zip(&clean).filter(|(x, y)| x != y).count();
        assert!(corrupted > 0 && corrupted < 40, "got {corrupted}");
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let inj = FaultInjector::new(lab(2), clock).with_fault(Fault::FailFirst(100));
        inj.disarm();
        assert_eq!(inj.query(&SourceQuery::scan("m")).unwrap().len(), 2);
        assert_eq!(inj.calls(), 0, "disarmed calls do not consume the schedule");
        inj.arm();
        assert!(inj.query(&SourceQuery::scan("m")).is_err());
    }

    #[test]
    fn report_merges_outcomes_and_tracks_completeness() {
        let mut r = AnswerReport::default();
        r.record_fetch("A", 1, 10, 0, 0, SourceOutcome::Ok);
        assert!(r.is_complete());
        r.record_fetch("A", 3, 4, 0, 0, SourceOutcome::Retried { retries: 2 });
        r.record_fetch(
            "B",
            2,
            0,
            0,
            0,
            SourceOutcome::Failed {
                error: SourceError::Unavailable {
                    reason: "down".into(),
                },
            },
        );
        assert!(!r.is_complete());
        assert_eq!(r.degraded_sources(), vec!["B"]);
        let a = r.source("A").unwrap();
        assert_eq!(a.fetches, 2);
        assert_eq!(a.attempts, 4);
        assert_eq!(a.rows, 14);
        assert_eq!(a.outcome, SourceOutcome::Retried { retries: 2 });
        // A later clean fetch does not mask B's failure.
        r.record_fetch("B", 1, 5, 0, 0, SourceOutcome::Ok);
        assert!(matches!(
            r.source("B").unwrap().outcome,
            SourceOutcome::Failed { .. }
        ));
        r.record_quarantine(QuarantinedRow {
            source: "A".into(),
            class: "m".into(),
            row_id: "r9".into(),
            reason: "missing anchor attribute `loc`".into(),
        });
        assert_eq!(r.source("A").unwrap().quarantined, 1);
        assert!(r.summary().contains("INCOMPLETE"));
    }

    #[test]
    fn xml_errors_become_malformed_rows() {
        let err = kind_xml::parse("<unclosed").unwrap_err();
        let se: SourceError = err.into();
        assert!(matches!(se, SourceError::MalformedRow { .. }));
    }
}
