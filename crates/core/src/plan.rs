//! Query processing: the §5 query plan and the Example 4 integrated view.
//!
//! The paper's running query:
//!
//! > *"What is the distribution of those calcium-binding proteins that are
//! > found in neurons that receive signals from parallel fibers in rat
//! > brains?"*
//!
//! and its four-step plan:
//!
//! 1. **push selections** (`rat`, `parallel_fiber`) to the
//!    neurotransmission source and get bindings for the receiving
//!    neuron/compartment pairs;
//! 2. using the domain map, **select sources** that have data anchored for
//!    those pairs (only NCMIR, in the paper);
//! 3. **push selections** given by the locations to the selected sources
//!    and retrieve only the matching proteins;
//! 4. compute the **lub** of the locations as the distribution root and
//!    evaluate `protein_distribution` by a **downward closure** along
//!    `has_a_star` with recursive aggregation.
//!
//! Every step is recorded in a [`PlanTrace`] so tests and benchmarks can
//! inspect exactly what was pushed, selected, shipped, and aggregated.
//! Source selection can be disabled (`use_semantic_index = false`) for the
//! ablation in DESIGN.md.

use crate::error::Result;
use crate::fault::AnswerReport;
use crate::mediator::{Mediator, MediatorStats};
use crate::wrapper::SourceQuery;
use kind_gcm::GcmValue;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Names binding the plan to a concrete mediated schema. Defaults match
/// the simulated Neuroscience sources of `kind-sources`.
#[derive(Debug, Clone)]
pub struct NeuroSchema {
    /// The neurotransmission class (SENSELAB-like).
    pub neurotransmission_class: String,
    /// Its organism attribute.
    pub nt_organism: String,
    /// Its transmitting-compartment attribute.
    pub nt_transmitting_compartment: String,
    /// Its receiving-neuron attribute (values are DM concept names).
    pub nt_receiving_neuron: String,
    /// Its receiving-compartment attribute (values are DM concept names).
    pub nt_receiving_compartment: String,
    /// The protein-amount class (NCMIR-like).
    pub protein_class: String,
    /// Its protein-name attribute.
    pub pa_protein: String,
    /// Its amount attribute (integer).
    pub pa_amount: String,
    /// Its location attribute (values are DM concept names).
    pub pa_location: String,
    /// Its bound-ion attribute.
    pub pa_ion: String,
    /// The partonomy role in the domain map.
    pub partonomy_role: String,
}

impl Default for NeuroSchema {
    fn default() -> Self {
        NeuroSchema {
            neurotransmission_class: "neurotransmission".into(),
            nt_organism: "organism".into(),
            nt_transmitting_compartment: "transmitting_compartment".into(),
            nt_receiving_neuron: "receiving_neuron".into(),
            nt_receiving_compartment: "receiving_compartment".into(),
            protein_class: "protein_amount".into(),
            pa_protein: "protein_name".into(),
            pa_amount: "amount".into(),
            pa_location: "location".into(),
            pa_ion: "ion_bound".into(),
            partonomy_role: "has_a".into(),
        }
    }
}

/// The §5 user query parameters.
#[derive(Debug, Clone)]
pub struct Section5Query {
    /// Organism selection (paper: `rat`).
    pub organism: String,
    /// Transmitting compartment (paper: `parallel_fiber`).
    pub transmitting_compartment: String,
    /// Bound ion of interest (paper: `calcium`).
    pub ion: String,
}

/// One aggregated distribution entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributionRow {
    /// Protein name.
    pub protein: String,
    /// Anatomical concept.
    pub concept: String,
    /// Total amount over the concept's subtree.
    pub total: i64,
}

/// A full record of one plan execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanTrace {
    /// Step 1: the receiving (neuron, compartment) pairs.
    pub step1_pairs: Vec<(String, String)>,
    /// Step 2: number of sources exporting the protein class at all.
    pub candidate_sources: usize,
    /// Step 2: the sources actually selected.
    pub selected_sources: Vec<String>,
    /// Whether the semantic index was used for step 2.
    pub used_semantic_index: bool,
    /// Step 3: protein rows retrieved (after filters).
    pub step3_rows: usize,
    /// Step 3: the distinct proteins found.
    pub proteins: Vec<String>,
    /// Step 4: the lub chosen as distribution root.
    pub root: Option<String>,
    /// Step 4: the aggregated distribution.
    pub distribution: Vec<DistributionRow>,
    /// Wrapper-traffic statistics accumulated by this plan run.
    pub stats: MediatorStats,
    /// Per-source outcomes, quarantined rows, and the completeness flag
    /// for this run (failed or breaker-skipped sources contribute no
    /// rows; the report says so).
    pub report: AnswerReport,
}

/// Executes the §5 plan.
pub fn run_section5(
    m: &mut Mediator,
    schema: &NeuroSchema,
    q: &Section5Query,
    use_semantic_index: bool,
) -> Result<PlanTrace> {
    m.begin_report();
    let stats_before = m.stats();
    let mut trace = PlanTrace {
        used_semantic_index: use_semantic_index,
        ..Default::default()
    };

    // ---- Step 1: push selections to the neurotransmission sources. ----
    let nt_sources = m.sources_exporting(&schema.neurotransmission_class);
    let mut pairs: Vec<(String, String)> = Vec::new();
    for src in &nt_sources {
        let rows = m.fetch_degraded(
            src,
            &SourceQuery::scan(&schema.neurotransmission_class)
                .with(&schema.nt_organism, GcmValue::Id(q.organism.clone()))
                .with(
                    &schema.nt_transmitting_compartment,
                    GcmValue::Id(q.transmitting_compartment.clone()),
                ),
        )?;
        for row in rows {
            if let (Some(n), Some(c)) = (
                row.get_str(&schema.nt_receiving_neuron),
                row.get_str(&schema.nt_receiving_compartment),
            ) {
                pairs.push((n, c));
            }
        }
    }
    pairs.sort();
    pairs.dedup();
    trace.step1_pairs = pairs.clone();

    // ---- Step 2: select sources via the semantic index. ---------------
    let candidates = m.sources_exporting(&schema.protein_class);
    trace.candidate_sources = candidates.len();
    let selected: Vec<String> = if use_semantic_index {
        let mut chosen: HashSet<String> = HashSet::new();
        for (n, c) in &pairs {
            for s in m.select_sources(&[n.as_str(), c.as_str()])? {
                if candidates.contains(&s) {
                    chosen.insert(s);
                }
            }
        }
        let mut v: Vec<String> = chosen.into_iter().collect();
        v.sort();
        v
    } else {
        candidates.clone()
    };
    trace.selected_sources = selected.clone();

    // ---- Step 3: push location selections, retrieve proteins. ---------
    // The locations of interest: each receiving compartment and neuron.
    let mut locations: Vec<String> = pairs
        .iter()
        .flat_map(|(n, c)| [n.clone(), c.clone()])
        .collect();
    locations.sort();
    locations.dedup();
    // Per protein, per concept: summed raw amounts.
    let mut amounts: HashMap<String, HashMap<String, i64>> = HashMap::new();
    let mut proteins: HashSet<String> = HashSet::new();
    for src in &selected {
        for loc in &locations {
            let rows = m.fetch_degraded(
                src,
                &SourceQuery::scan(&schema.protein_class)
                    .with(&schema.pa_location, GcmValue::Id(loc.clone()))
                    .with(&schema.pa_ion, GcmValue::Id(q.ion.clone())),
            )?;
            for row in rows {
                let (Some(p), Some(a), Some(l)) = (
                    row.get_str(&schema.pa_protein),
                    row.get_int(&schema.pa_amount),
                    row.get_str(&schema.pa_location),
                ) else {
                    continue;
                };
                trace.step3_rows += 1;
                proteins.insert(p.clone());
                *amounts.entry(p).or_default().entry(l).or_insert(0) += a;
            }
        }
    }
    let mut protein_list: Vec<String> = proteins.into_iter().collect();
    protein_list.sort();
    trace.proteins = protein_list.clone();

    // ---- Step 4: lub root + downward-closure aggregation. -------------
    let loc_refs: Vec<&str> = locations.iter().map(String::as_str).collect();
    let root = if loc_refs.is_empty() {
        None
    } else {
        m.partonomy_lub(&schema.partonomy_role, &loc_refs)?
    };
    trace.root = root.clone();
    if let Some(root_name) = &root {
        let root_node = m
            .dm()
            .lookup(root_name)
            .expect("lub returns known concepts");
        for protein in &protein_list {
            let values: HashMap<kind_dm::NodeId, i64> = amounts
                .get(protein)
                .map(|per_loc| {
                    per_loc
                        .iter()
                        .filter_map(|(loc, v)| m.dm().lookup(loc).map(|n| (n, *v)))
                        .collect()
                })
                .unwrap_or_default();
            let totals = m
                .resolved()
                .rollup_sum(&schema.partonomy_role, root_node, &values);
            let mut rows: BTreeMap<String, i64> = BTreeMap::new();
            for (node, total) in totals {
                if total != 0 {
                    if let Some(name) = m.dm().name(node) {
                        rows.insert(name.to_string(), total);
                    }
                }
            }
            for (concept, total) in rows {
                trace.distribution.push(DistributionRow {
                    protein: protein.clone(),
                    concept,
                    total,
                });
            }
        }
    }
    let stats_after = m.stats();
    trace.stats = MediatorStats {
        source_queries: stats_after.source_queries - stats_before.source_queries,
        rows_shipped: stats_after.rows_shipped - stats_before.rows_shipped,
        rows_kept: stats_after.rows_kept - stats_before.rows_kept,
        retries: stats_after.retries - stats_before.retries,
        failures: stats_after.failures - stats_before.failures,
    };
    trace.report = m.report().clone();
    Ok(trace)
}

/// The Example 4 integrated view, as a standalone operation: the
/// distribution of `protein` under `root` for all protein sources
/// relevant below `root` (mediated class `protein_distribution` of the
/// paper).
pub fn protein_distribution(
    m: &mut Mediator,
    schema: &NeuroSchema,
    protein: &str,
    root: &str,
) -> Result<Vec<(String, i64)>> {
    m.begin_report();
    let root_node =
        m.dm()
            .lookup(root)
            .ok_or_else(|| crate::error::MediatorError::UnknownConcept {
                name: root.to_string(),
            })?;
    let sources: Vec<String> = m
        .sources_in_region(&schema.partonomy_role, root)?
        .into_iter()
        .filter(|s| m.sources_exporting(&schema.protein_class).contains(s))
        .collect();
    let mut per_loc: HashMap<String, i64> = HashMap::new();
    for src in sources {
        let rows = m.fetch_degraded(
            &src,
            &SourceQuery::scan(&schema.protein_class)
                .with(&schema.pa_protein, GcmValue::Id(protein.to_string())),
        )?;
        for row in rows {
            if let (Some(l), Some(a)) = (
                row.get_str(&schema.pa_location),
                row.get_int(&schema.pa_amount),
            ) {
                *per_loc.entry(l).or_insert(0) += a;
            }
        }
    }
    let values: HashMap<kind_dm::NodeId, i64> = per_loc
        .iter()
        .filter_map(|(loc, v)| m.dm().lookup(loc).map(|n| (n, *v)))
        .collect();
    let totals = m
        .resolved()
        .rollup_sum(&schema.partonomy_role, root_node, &values);
    let mut out: Vec<(String, i64)> = totals
        .into_iter()
        .filter(|(_, v)| *v != 0)
        .filter_map(|(n, v)| m.dm().name(n).map(|s| (s.to_string(), v)))
        .collect();
    out.sort();
    Ok(out)
}
