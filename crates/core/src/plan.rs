//! Query processing: the §5 query plan and the Example 4 integrated view.
//!
//! The paper's running query:
//!
//! > *"What is the distribution of those calcium-binding proteins that are
//! > found in neurons that receive signals from parallel fibers in rat
//! > brains?"*
//!
//! and its four-step plan:
//!
//! 1. **push selections** (`rat`, `parallel_fiber`) to the
//!    neurotransmission source and get bindings for the receiving
//!    neuron/compartment pairs;
//! 2. using the domain map, **select sources** that have data anchored for
//!    those pairs (only NCMIR, in the paper);
//! 3. **push selections** given by the locations to the selected sources
//!    and retrieve only the matching proteins;
//! 4. compute the **lub** of the locations as the distribution root and
//!    evaluate `protein_distribution` by a **downward closure** along
//!    `has_a_star` with recursive aggregation.
//!
//! Every step is recorded in a [`PlanTrace`] so tests and benchmarks can
//! inspect exactly what was pushed, selected, shipped, and aggregated.
//! Source selection can be disabled (`use_semantic_index = false`) for the
//! ablation in DESIGN.md.
//!
//! ## The two-phase pipeline
//!
//! Each plan is split along the fetch-plane / evaluate-plane boundary
//! (see DESIGN.md):
//!
//! * the **fetch phase** — [`section5_fetch`], [`distribution_fetch`] —
//!   takes `&mut Federation` (it contacts wrappers, concurrently, via
//!   [`Federation::fetch_parallel`]) plus `&Knowledge` (steps 1–3 need
//!   source selection), and returns a self-contained artifact carrying
//!   every fetched row, the degradation report, and traffic statistics;
//! * the **evaluate phase** — [`section5_eval`], [`distribution_eval`] —
//!   is *pure*: it takes a [`DomainView`] and the fetch artifact and
//!   never touches a wrapper, so it runs identically against the live
//!   mediator or a frozen [`crate::QuerySnapshot`]
//!   ([`crate::QuerySnapshot::run_section5`]) from any number of
//!   threads.
//!
//! [`run_section5`] and [`protein_distribution`] remain as the one-call
//! composition of the two phases over a `&mut Mediator`.

use crate::error::Result;
use crate::fault::AnswerReport;
use crate::federation::{Federation, FetchBatch, FetchRequest, FetchSet};
use crate::knowledge::{DomainView, Knowledge};
use crate::mediator::{Mediator, MediatorStats};
use crate::wrapper::SourceQuery;
use kind_gcm::GcmValue;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Names binding the plan to a concrete mediated schema. Defaults match
/// the simulated Neuroscience sources of `kind-sources`.
#[derive(Debug, Clone)]
pub struct NeuroSchema {
    /// The neurotransmission class (SENSELAB-like).
    pub neurotransmission_class: String,
    /// Its organism attribute.
    pub nt_organism: String,
    /// Its transmitting-compartment attribute.
    pub nt_transmitting_compartment: String,
    /// Its receiving-neuron attribute (values are DM concept names).
    pub nt_receiving_neuron: String,
    /// Its receiving-compartment attribute (values are DM concept names).
    pub nt_receiving_compartment: String,
    /// The protein-amount class (NCMIR-like).
    pub protein_class: String,
    /// Its protein-name attribute.
    pub pa_protein: String,
    /// Its amount attribute (integer).
    pub pa_amount: String,
    /// Its location attribute (values are DM concept names).
    pub pa_location: String,
    /// Its bound-ion attribute.
    pub pa_ion: String,
    /// The partonomy role in the domain map.
    pub partonomy_role: String,
}

impl Default for NeuroSchema {
    fn default() -> Self {
        NeuroSchema {
            neurotransmission_class: "neurotransmission".into(),
            nt_organism: "organism".into(),
            nt_transmitting_compartment: "transmitting_compartment".into(),
            nt_receiving_neuron: "receiving_neuron".into(),
            nt_receiving_compartment: "receiving_compartment".into(),
            protein_class: "protein_amount".into(),
            pa_protein: "protein_name".into(),
            pa_amount: "amount".into(),
            pa_location: "location".into(),
            pa_ion: "ion_bound".into(),
            partonomy_role: "has_a".into(),
        }
    }
}

/// The §5 user query parameters.
#[derive(Debug, Clone)]
pub struct Section5Query {
    /// Organism selection (paper: `rat`).
    pub organism: String,
    /// Transmitting compartment (paper: `parallel_fiber`).
    pub transmitting_compartment: String,
    /// Bound ion of interest (paper: `calcium`).
    pub ion: String,
}

/// One aggregated distribution entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributionRow {
    /// Protein name.
    pub protein: String,
    /// Anatomical concept.
    pub concept: String,
    /// Total amount over the concept's subtree.
    pub total: i64,
}

/// A full record of one plan execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanTrace {
    /// Step 1: the receiving (neuron, compartment) pairs.
    pub step1_pairs: Vec<(String, String)>,
    /// Step 2: number of sources exporting the protein class at all.
    pub candidate_sources: usize,
    /// Step 2: the sources actually selected.
    pub selected_sources: Vec<String>,
    /// Whether the semantic index was used for step 2.
    pub used_semantic_index: bool,
    /// Step 3: protein rows retrieved (after filters).
    pub step3_rows: usize,
    /// Step 3: the distinct proteins found.
    pub proteins: Vec<String>,
    /// Step 4: the lub chosen as distribution root.
    pub root: Option<String>,
    /// Step 4: the aggregated distribution.
    pub distribution: Vec<DistributionRow>,
    /// Wrapper-traffic statistics accumulated by this plan run.
    pub stats: MediatorStats,
    /// Per-source outcomes, quarantined rows, and the completeness flag
    /// for this run (failed or breaker-skipped sources contribute no
    /// rows; the report says so).
    pub report: AnswerReport,
}

/// Everything the §5 plan's fetch phase produced — steps 1–3, which are
/// the only steps that contact sources. Self-contained: the evaluate
/// phase ([`section5_eval`]) needs nothing but this, a schema, and a
/// [`DomainView`], so a warm plan replays read-only against a
/// [`crate::QuerySnapshot`] with no federation in sight.
#[derive(Debug, Clone)]
pub struct Section5Fetch {
    /// The query parameters the fetch ran with.
    pub query: Section5Query,
    /// Step 1 output: the receiving (neuron, compartment) pairs.
    pub pairs: Vec<(String, String)>,
    /// Step 2: number of sources exporting the protein class at all.
    pub candidate_sources: usize,
    /// Step 2: the sources actually selected.
    pub selected_sources: Vec<String>,
    /// Whether the semantic index was used for step 2.
    pub used_semantic_index: bool,
    /// Step 3 output: one batch per (selected source, location) scan.
    pub protein_batches: Vec<FetchBatch>,
    /// Wrapper traffic of both fetch rounds (steps 1 and 3).
    pub stats: MediatorStats,
    /// Degradation record of both fetch rounds.
    pub report: AnswerReport,
}

/// The **fetch phase** of the §5 plan: steps 1–3. Pushes the organism /
/// transmitting-compartment selections to the neurotransmission sources
/// (concurrently), selects protein sources through the semantic index,
/// then pushes the location/ion selections to the selected sources
/// (concurrently again). Pure computation — the lub root and the
/// recursive roll-up — is deferred to [`section5_eval`].
pub fn section5_fetch(
    federation: &mut Federation,
    knowledge: &Knowledge,
    schema: &NeuroSchema,
    q: &Section5Query,
    use_semantic_index: bool,
) -> Result<Section5Fetch> {
    // ---- Step 1: push selections to the neurotransmission sources. ----
    let nt_requests: Vec<FetchRequest> = federation
        .sources_exporting(&schema.neurotransmission_class)
        .into_iter()
        .map(|src| {
            FetchRequest::new(
                src,
                SourceQuery::scan(&schema.neurotransmission_class)
                    .with(&schema.nt_organism, GcmValue::Id(q.organism.clone()))
                    .with(
                        &schema.nt_transmitting_compartment,
                        GcmValue::Id(q.transmitting_compartment.clone()),
                    ),
            )
        })
        .collect();
    let step1 = federation.fetch_parallel(&nt_requests)?;
    let mut pairs: Vec<(String, String)> = Vec::new();
    for batch in &step1.batches {
        for row in &batch.rows {
            if let (Some(n), Some(c)) = (
                row.get_str(&schema.nt_receiving_neuron),
                row.get_str(&schema.nt_receiving_compartment),
            ) {
                pairs.push((n, c));
            }
        }
    }
    pairs.sort();
    pairs.dedup();

    // ---- Step 2: select sources via the semantic index. ---------------
    let candidates = federation.sources_exporting(&schema.protein_class);
    let selected: Vec<String> = if use_semantic_index {
        let mut chosen: HashSet<String> = HashSet::new();
        for (n, c) in &pairs {
            let ids = knowledge.select_sources(&[n.as_str(), c.as_str()])?;
            for s in federation.names_of(&ids) {
                if candidates.contains(&s) {
                    chosen.insert(s);
                }
            }
        }
        let mut v: Vec<String> = chosen.into_iter().collect();
        v.sort();
        v
    } else {
        candidates.clone()
    };

    // ---- Step 3: push location selections, retrieve proteins. ---------
    // The locations of interest: each receiving compartment and neuron.
    let locations = step3_locations(&pairs);
    let protein_requests: Vec<FetchRequest> = selected
        .iter()
        .flat_map(|src| {
            locations.iter().map(|loc| {
                FetchRequest::new(
                    src.clone(),
                    SourceQuery::scan(&schema.protein_class)
                        .with(&schema.pa_location, GcmValue::Id(loc.clone()))
                        .with(&schema.pa_ion, GcmValue::Id(q.ion.clone())),
                )
            })
        })
        .collect();
    let step3 = federation.fetch_parallel(&protein_requests)?;

    let mut combined = FetchSet {
        batches: Vec::new(),
        report: step1.report,
        stats: step1.stats,
    };
    combined.report.absorb(&step3.report);
    combined.stats.merge(&step3.stats);
    Ok(Section5Fetch {
        query: q.clone(),
        pairs,
        candidate_sources: candidates.len(),
        selected_sources: selected,
        used_semantic_index: use_semantic_index,
        protein_batches: step3.batches,
        stats: combined.stats,
        report: combined.report,
    })
}

/// The step-3 location list implied by the step-1 pairs (each receiving
/// neuron and compartment, sorted, deduped).
fn step3_locations(pairs: &[(String, String)]) -> Vec<String> {
    let mut locations: Vec<String> = pairs
        .iter()
        .flat_map(|(n, c)| [n.clone(), c.clone()])
        .collect();
    locations.sort();
    locations.dedup();
    locations
}

/// The **evaluate phase** of the §5 plan: step 4, plus trace assembly.
/// Pure — consumes only the fetch artifact and a read-only
/// [`DomainView`], never a wrapper — so it runs against the live
/// mediator and against a [`crate::QuerySnapshot`] with identical
/// results, from any number of threads.
pub fn section5_eval(
    view: &DomainView<'_>,
    schema: &NeuroSchema,
    fetched: &Section5Fetch,
) -> Result<PlanTrace> {
    let mut trace = PlanTrace {
        step1_pairs: fetched.pairs.clone(),
        candidate_sources: fetched.candidate_sources,
        selected_sources: fetched.selected_sources.clone(),
        used_semantic_index: fetched.used_semantic_index,
        stats: fetched.stats,
        report: fetched.report.clone(),
        ..Default::default()
    };

    // Per protein, per concept: summed raw amounts.
    let mut amounts: HashMap<String, HashMap<String, i64>> = HashMap::new();
    let mut proteins: HashSet<String> = HashSet::new();
    for batch in &fetched.protein_batches {
        for row in &batch.rows {
            let (Some(p), Some(a), Some(l)) = (
                row.get_str(&schema.pa_protein),
                row.get_int(&schema.pa_amount),
                row.get_str(&schema.pa_location),
            ) else {
                continue;
            };
            trace.step3_rows += 1;
            proteins.insert(p.clone());
            *amounts.entry(p).or_default().entry(l).or_insert(0) += a;
        }
    }
    let mut protein_list: Vec<String> = proteins.into_iter().collect();
    protein_list.sort();
    trace.proteins = protein_list.clone();

    // ---- Step 4: lub root + downward-closure aggregation. -------------
    let locations = step3_locations(&fetched.pairs);
    let loc_refs: Vec<&str> = locations.iter().map(String::as_str).collect();
    let root = if loc_refs.is_empty() {
        None
    } else {
        view.partonomy_lub(&schema.partonomy_role, &loc_refs)?
    };
    trace.root = root.clone();
    if let Some(root_name) = &root {
        let root_node = view
            .dm()
            .lookup(root_name)
            .expect("lub returns known concepts");
        for protein in &protein_list {
            let values: HashMap<kind_dm::NodeId, i64> = amounts
                .get(protein)
                .map(|per_loc| {
                    per_loc
                        .iter()
                        .filter_map(|(loc, v)| view.dm().lookup(loc).map(|n| (n, *v)))
                        .collect()
                })
                .unwrap_or_default();
            let totals = view
                .resolved()
                .rollup_sum(&schema.partonomy_role, root_node, &values);
            let mut rows: BTreeMap<String, i64> = BTreeMap::new();
            for (node, total) in totals {
                if total != 0 {
                    if let Some(name) = view.dm().name(node) {
                        rows.insert(name.to_string(), total);
                    }
                }
            }
            for (concept, total) in rows {
                trace.distribution.push(DistributionRow {
                    protein: protein.clone(),
                    concept,
                    total,
                });
            }
        }
    }
    Ok(trace)
}

/// Executes the §5 plan: the fetch phase ([`section5_fetch`]) followed by
/// the pure evaluate phase ([`section5_eval`]) over the live layers.
pub fn run_section5(
    m: &mut Mediator,
    schema: &NeuroSchema,
    q: &Section5Query,
    use_semantic_index: bool,
) -> Result<PlanTrace> {
    m.begin_report();
    let (federation, knowledge) = m.fetch_eval_planes();
    let fetched = section5_fetch(federation, knowledge, schema, q, use_semantic_index)?;
    section5_eval(&knowledge.domain_view(), schema, &fetched)
}

/// The fetch artifact of the Example 4 `protein_distribution` view —
/// everything [`distribution_eval`] needs besides a [`DomainView`].
#[derive(Debug, Clone)]
pub struct DistributionFetch {
    /// The protein the fetch selected on.
    pub protein: String,
    /// The distribution root the sources were selected under.
    pub root: String,
    /// The selected sources (in-region ∩ exporting the protein class).
    pub sources: Vec<String>,
    /// One batch per selected source.
    pub batches: Vec<FetchBatch>,
    /// Wrapper traffic of this fetch.
    pub stats: MediatorStats,
    /// Degradation record of this fetch.
    pub report: AnswerReport,
}

/// The **fetch phase** of the Example 4 view: selects the sources with
/// protein data anchored in the region under `root` and scans them
/// (concurrently) with the protein selection pushed down.
pub fn distribution_fetch(
    federation: &mut Federation,
    knowledge: &Knowledge,
    schema: &NeuroSchema,
    protein: &str,
    root: &str,
) -> Result<DistributionFetch> {
    // Validate the root up front (a typed error, like the serial path).
    knowledge.domain_view().lookup(root)?;
    let in_region =
        federation.names_of(&knowledge.sources_in_region(&schema.partonomy_role, root)?);
    let exporting = federation.sources_exporting(&schema.protein_class);
    let sources: Vec<String> = in_region
        .into_iter()
        .filter(|s| exporting.contains(s))
        .collect();
    let requests: Vec<FetchRequest> = sources
        .iter()
        .map(|src| {
            FetchRequest::new(
                src.clone(),
                SourceQuery::scan(&schema.protein_class)
                    .with(&schema.pa_protein, GcmValue::Id(protein.to_string())),
            )
        })
        .collect();
    let fetched = federation.fetch_parallel(&requests)?;
    Ok(DistributionFetch {
        protein: protein.to_string(),
        root: root.to_string(),
        sources,
        batches: fetched.batches,
        stats: fetched.stats,
        report: fetched.report,
    })
}

/// The **evaluate phase** of the Example 4 view: the recursive roll-up
/// under the fetch's root. Pure — runs identically against the live
/// layers or a [`crate::QuerySnapshot`].
pub fn distribution_eval(
    view: &DomainView<'_>,
    schema: &NeuroSchema,
    fetched: &DistributionFetch,
) -> Result<Vec<(String, i64)>> {
    let root_node = view.lookup(&fetched.root)?;
    let mut per_loc: HashMap<String, i64> = HashMap::new();
    for batch in &fetched.batches {
        for row in &batch.rows {
            if let (Some(l), Some(a)) = (
                row.get_str(&schema.pa_location),
                row.get_int(&schema.pa_amount),
            ) {
                *per_loc.entry(l).or_insert(0) += a;
            }
        }
    }
    let values: HashMap<kind_dm::NodeId, i64> = per_loc
        .iter()
        .filter_map(|(loc, v)| view.dm().lookup(loc).map(|n| (n, *v)))
        .collect();
    let totals = view
        .resolved()
        .rollup_sum(&schema.partonomy_role, root_node, &values);
    let mut out: Vec<(String, i64)> = totals
        .into_iter()
        .filter(|(_, v)| *v != 0)
        .filter_map(|(n, v)| view.dm().name(n).map(|s| (s.to_string(), v)))
        .collect();
    out.sort();
    Ok(out)
}

/// The Example 4 integrated view, as a standalone operation: the
/// distribution of `protein` under `root` for all protein sources
/// relevant below `root` (mediated class `protein_distribution` of the
/// paper). Composes [`distribution_fetch`] and [`distribution_eval`].
pub fn protein_distribution(
    m: &mut Mediator,
    schema: &NeuroSchema,
    protein: &str,
    root: &str,
) -> Result<Vec<(String, i64)>> {
    m.begin_report();
    let (federation, knowledge) = m.fetch_eval_planes();
    let fetched = distribution_fetch(federation, knowledge, schema, protein, root)?;
    distribution_eval(&knowledge.domain_view(), schema, &fetched)
}
