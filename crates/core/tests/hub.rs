//! `SnapshotHub` contracts under concurrency: loads are never torn or
//! stale-after-load, pinned epochs serve bit-identical answers through
//! any number of publishes, and old epochs live exactly as long as
//! their last reader.

use kind_core::{Anchor, Capability, Mediator, MemoryWrapper, ObjectRow, SnapshotHub};
use kind_dm::{figures, ExecMode};
use kind_gcm::GcmValue;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread;

fn spine_wrapper(name: &str, n: usize) -> Arc<MemoryWrapper> {
    let mut w = MemoryWrapper::new(name);
    w.caps.push(Capability {
        class: "spines".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(Anchor::Fixed {
        class: "spines".into(),
        concept: "Spine".into(),
    });
    for i in 0..n {
        w.add_row(
            "spines",
            &format!("{name}r{i}"),
            vec![("len", GcmValue::Int(i as i64))],
        );
    }
    Arc::new(w)
}

fn row(id: &str) -> ObjectRow {
    ObjectRow {
        id: id.into(),
        attrs: vec![("len".into(), GcmValue::Int(99))],
    }
}

/// Readers hammering `load()` while the writer publishes a growing base:
/// every loaded snapshot must be internally consistent — the row count
/// it serves equals the row count its epoch was published with — and
/// epochs observed per reader are monotone (no stale-after-load: once a
/// reader saw epoch N, it never loads < N).
#[test]
fn concurrent_readers_never_observe_torn_or_stale_snapshots() {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.register(spine_wrapper("A", 3)).unwrap();
    m.materialize_all().unwrap();
    let hub = m.hub();
    m.publish_snapshot().unwrap();

    const PUBLISHES: usize = 12;
    let done = AtomicBool::new(false);
    thread::scope(|s| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (hub, done) = (&hub, &done);
                s.spawn(move || {
                    let mut last_epoch = 0;
                    let mut loads = 0_usize;
                    while !done.load(Ordering::Relaxed) {
                        let pinned = hub.load().expect("seeded before spawn");
                        let epoch = pinned.epoch();
                        assert!(
                            epoch >= last_epoch,
                            "stale after load: saw {last_epoch}, then {epoch}"
                        );
                        last_epoch = epoch;
                        // Consistency: epoch k was published with 3 + (k-1)
                        // rows. A torn slot would break this equation.
                        let rows = pinned.query_fl("X : spines").unwrap().len();
                        assert_eq!(
                            rows as u64,
                            3 + (epoch - 1),
                            "epoch {epoch} serving a foreign row count"
                        );
                        loads += 1;
                    }
                    loads
                })
            })
            .collect();
        for i in 0..PUBLISHES {
            m.load_row("A", "spines", &row(&format!("w{i}"))).unwrap();
            m.publish().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never loaded");
        }
    });
    assert_eq!(hub.epoch(), 1 + PUBLISHES as u64);
}

/// A request pinned before a publish keeps serving answers bit-identical
/// to its own epoch — in-flight work is isolated from the writer.
#[test]
fn publish_during_inflight_requests_leaves_pinned_answers_bit_identical() {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.register(spine_wrapper("A", 4)).unwrap();
    m.materialize_all().unwrap();
    let hub = m.hub();
    m.publish_snapshot().unwrap();

    let pinned = hub.load().unwrap();
    let rule = "long_spines(X, L) :- X : spines, X[len -> L], L >= 2.";
    let before_rows = pinned.answer(rule).unwrap();
    let before_fl = pinned.query_fl_rendered("X : spines").unwrap();

    // The writer publishes twice while the request is "in flight".
    m.load_row("A", "spines", &row("mid1")).unwrap();
    m.publish().unwrap();
    m.load_row("A", "spines", &row("mid2")).unwrap();
    m.publish().unwrap();
    assert_eq!(hub.epoch(), 3);

    // The pinned snapshot answers exactly as before the publishes ...
    assert_eq!(pinned.answer(rule).unwrap(), before_rows);
    assert_eq!(pinned.query_fl_rendered("X : spines").unwrap(), before_fl);
    assert_eq!(pinned.epoch(), 1);
    // ... while a fresh load sees both new rows (len 99 >= 2).
    let fresh = hub.load().unwrap();
    assert_eq!(fresh.epoch(), 3);
    assert_eq!(fresh.answer(rule).unwrap().len(), before_rows.len() + 2);
}

/// Superseded epochs stay alive while any reader pins them and are
/// reclaimed when the last pin drops (plain `Arc` reclamation — pin
/// lifetime IS epoch lifetime).
#[test]
fn old_epochs_live_until_their_last_reader_drops() {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.register(spine_wrapper("A", 2)).unwrap();
    m.materialize_all().unwrap();
    let hub = m.hub();
    m.publish_snapshot().unwrap();

    let pin_a = hub.load().unwrap();
    let pin_b = pin_a.clone();
    let weak: Weak<_> = Arc::downgrade(pin_a.shared());

    // Supersede the epoch twice over.
    m.load_row("A", "spines", &row("x")).unwrap();
    m.publish().unwrap();
    m.load_row("A", "spines", &row("y")).unwrap();
    m.publish().unwrap();

    assert!(weak.upgrade().is_some(), "pinned epoch reclaimed too early");
    drop(pin_a);
    assert!(weak.upgrade().is_some(), "one pin still outstanding");
    assert_eq!(pin_b.query_fl("X : spines").unwrap().len(), 2);
    drop(pin_b);
    assert!(
        weak.upgrade().is_none(),
        "superseded epoch must be reclaimed with its last pin"
    );
}

/// The hub used the way the server uses it: worker threads pinning per
/// "request" while another thread publishes — all served answers must
/// match the row count of the epoch they report.
#[test]
fn server_shaped_usage_pins_each_request_to_one_epoch() {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.register(spine_wrapper("A", 5)).unwrap();
    m.materialize_all().unwrap();
    let hub = m.hub();
    m.publish_snapshot().unwrap();

    let done = AtomicBool::new(false);
    thread::scope(|s| {
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let (hub, done) = (&hub, &done);
                s.spawn(move || {
                    let mut served = 0_usize;
                    while !done.load(Ordering::Relaxed) {
                        // One "request": pin, evaluate, respond.
                        let pinned = hub.load().unwrap();
                        let epoch = pinned.epoch();
                        let rows = pinned.query_fl_rendered("X : spines").unwrap();
                        assert_eq!(rows.len() as u64, 5 + (epoch - 1));
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        for i in 0..8 {
            m.load_row("A", "spines", &row(&format!("srv{i}"))).unwrap();
            m.publish().unwrap();
            thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
        for w in workers {
            assert!(w.join().unwrap() > 0);
        }
    });
}

/// A standalone hub (no mediator) is just an epoch-counted slot: install
/// and load compose from any thread.
#[test]
fn standalone_hub_is_send_sync_and_epoch_monotone() {
    let hub = Arc::new(SnapshotHub::new());
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.register(spine_wrapper("A", 1)).unwrap();
    m.materialize_all().unwrap();
    let snap = m.snapshot().unwrap();
    let hub2 = Arc::clone(&hub);
    let t = thread::spawn(move || hub2.install(snap));
    assert_eq!(t.join().unwrap(), 1);
    assert_eq!(hub.load().unwrap().epoch(), 1);
}
