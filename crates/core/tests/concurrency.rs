//! Thread-safety coverage for the layered mediator: compile-time
//! `Send + Sync` enforcement for the pieces that cross thread boundaries,
//! and a stress test where 8 threads hammer one [`QuerySnapshot`] with
//! mixed `query_fl`/`answer` calls whose results must be identical to the
//! single-threaded run.

use kind_core::{
    run_section5, section5_fetch, Anchor, Capability, Federation, Knowledge, Mediator,
    MemoryWrapper, NeuroSchema, QuerySnapshot, Section5Query,
};
use kind_dm::{figures, ExecMode};
use kind_gcm::GcmValue;
use std::sync::Arc;
use std::thread;

const fn assert_send_sync<T: Send + Sync>() {}

/// CI runs this suite at several evaluate-plane thread budgets
/// (`KIND_EVAL_THREADS=1` and `=8`); results are bit-identical across
/// settings, so every assertion below holds unchanged.
fn eval_threads_from_env() -> usize {
    std::env::var("KIND_EVAL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

// The snapshot is the type handed to worker threads; the layers must be
// transferable too (e.g. a mediator built on one thread, served from
// another).
const _: () = assert_send_sync::<QuerySnapshot>();
const _: () = assert_send_sync::<Federation>();
const _: () = assert_send_sync::<Knowledge>();
const _: () = assert_send_sync::<Mediator>();

fn spine_wrapper(name: &str, concept: &str, n: usize) -> Arc<MemoryWrapper> {
    let mut w = MemoryWrapper::new(name);
    w.caps.push(Capability {
        class: "spines".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(Anchor::Fixed {
        class: "spines".into(),
        concept: concept.into(),
    });
    for i in 0..n {
        w.add_row(
            "spines",
            &format!("s{i}"),
            vec![
                ("len", GcmValue::Int(i as i64 * 10)),
                ("loc", GcmValue::Id(concept.into())),
            ],
        );
    }
    Arc::new(w)
}

fn snapshot_fixture() -> QuerySnapshot {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.set_eval_threads(eval_threads_from_env());
    m.register(spine_wrapper("A", "Spine", 6)).unwrap();
    m.register(spine_wrapper("B", "Shaft", 4)).unwrap();
    m.define_view("long_spine(X, L) :- X : spines, X[len -> L], L >= 30.")
        .unwrap();
    m.materialize_all().unwrap();
    m.snapshot().unwrap()
}

/// The mixed workload: FL patterns served lock-free off the frozen
/// model, and one-off rules evaluated on per-call scratch clones.
const PATTERNS: &[&str] = &[
    "X : spines",
    "long_spine(X, L)",
    r#"anchored(S, C)"#,
    r#"isa_star(C, "Neuron_Compartment")"#,
    "nonexistent_predicate(X)",
];

const RULES: &[&str] = &[
    "q0(X, L) :- X : spines, X[len -> L], L >= 20.",
    r#"q1(X) :- X : spines, X[loc -> "Spine"]."#,
    "q2(C) :- anchored(S, C).",
];

fn run_workload(snap: &QuerySnapshot, salt: usize) -> Vec<Vec<Vec<String>>> {
    let mut out = Vec::new();
    for round in 0..8 {
        let i = (round + salt) % PATTERNS.len();
        out.push(snap.query_fl_rendered(PATTERNS[i]).unwrap());
        let j = (round + salt) % RULES.len();
        out.push(snap.answer(RULES[j]).unwrap());
    }
    out
}

#[test]
fn eight_threads_match_single_threaded_results() {
    let snap = snapshot_fixture();
    // Single-threaded ground truth, one workload per salt.
    let expected: Vec<Vec<Vec<Vec<String>>>> =
        (0..8).map(|salt| run_workload(&snap, salt)).collect();
    // Sanity: the workload actually produces data.
    assert!(expected[0].iter().any(|rows| !rows.is_empty()));
    // 8 threads, each running its salted workload several times against
    // the one shared snapshot.
    thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|salt| {
                let snap = &snap;
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..4 {
                        let got = run_workload(snap, salt);
                        assert_eq!(got, expected[salt], "thread {salt} diverged");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn snapshot_survives_mediator_mutation() {
    // Snapshot isolation: the mediator keeps evolving after the snapshot
    // is taken; the snapshot keeps answering from the frozen state.
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.set_eval_threads(eval_threads_from_env());
    m.register(spine_wrapper("A", "Spine", 3)).unwrap();
    m.materialize_all().unwrap();
    let snap = m.snapshot().unwrap();
    let before = snap.query_fl_rendered("X : spines").unwrap();
    assert_eq!(before.len(), 3);
    // Mutate the mediator: register another source and re-materialize.
    m.register(spine_wrapper("B", "Shaft", 5)).unwrap();
    m.materialize_all().unwrap();
    assert_eq!(m.query_fl("X : spines").unwrap().len(), 8);
    // The old snapshot still sees exactly the old world...
    assert_eq!(snap.query_fl_rendered("X : spines").unwrap(), before);
    // ...and a fresh snapshot sees the new one.
    let snap2 = m.snapshot().unwrap();
    assert_eq!(snap2.query_fl_rendered("X : spines").unwrap().len(), 8);
}

#[test]
fn snapshot_answer_matches_mediator_answer() {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.set_eval_threads(eval_threads_from_env());
    m.register(spine_wrapper("A", "Spine", 6)).unwrap();
    m.materialize_all().unwrap();
    let snap = m.snapshot().unwrap();
    let q = "big(X, L) :- X : spines, X[len -> L], L >= 30.";
    let mut from_mediator: Vec<Vec<String>> = m
        .answer(q)
        .unwrap()
        .rows
        .iter()
        .map(|r| r.iter().map(|t| m.show(t)).collect())
        .collect();
    from_mediator.sort();
    let from_snapshot = snap.answer(q).unwrap();
    assert_eq!(from_snapshot, from_mediator);
    assert_eq!(from_snapshot.len(), 3);
}

// ---------- Warm §5 plans replayed on a snapshot ------------------------

/// A miniature §5 scenario over Figure 1: one neurotransmission source
/// whose rows land on Purkinje structures, one protein source anchored
/// at those structures.
fn section5_fixture() -> (Mediator, NeuroSchema, Section5Query) {
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    m.set_eval_threads(eval_threads_from_env());
    let mut nt = MemoryWrapper::new("NT");
    nt.caps.push(Capability {
        class: "neurotransmission".into(),
        pushable: vec!["organism".into(), "transmitting_compartment".into()],
    });
    nt.anchor_decls.push(Anchor::Fixed {
        class: "neurotransmission".into(),
        concept: "Neurotransmission".into(),
    });
    for (i, (neuron, comp)) in [
        ("Purkinje_Cell", "Dendrite"),
        ("Purkinje_Cell", "Spine"),
        ("Pyramidal_Cell", "Soma"), // filtered out: wrong transmitter
    ]
    .iter()
    .enumerate()
    {
        let tc = if i < 2 {
            "Parallel_Fiber"
        } else {
            "Mossy_Fiber"
        };
        nt.add_row(
            "neurotransmission",
            &format!("n{i}"),
            vec![
                ("organism", GcmValue::Id("rat".into())),
                ("transmitting_compartment", GcmValue::Id(tc.into())),
                ("receiving_neuron", GcmValue::Id((*neuron).into())),
                ("receiving_compartment", GcmValue::Id((*comp).into())),
            ],
        );
    }
    m.register(Arc::new(nt)).unwrap();
    let mut prot = MemoryWrapper::new("PROT");
    prot.caps.push(Capability {
        class: "protein_amount".into(),
        pushable: vec!["location".into(), "ion_bound".into()],
    });
    prot.anchor_decls.push(Anchor::ByAttr {
        class: "protein_amount".into(),
        attr: "location".into(),
    });
    for (i, (name, amount, loc)) in [
        ("Calbindin", 7, "Dendrite"),
        ("Calbindin", 4, "Spine"),
        ("CaMKII", 9, "Purkinje_Cell"),
        ("CaMKII", 2, "Spine"),
    ]
    .iter()
    .enumerate()
    {
        prot.add_row(
            "protein_amount",
            &format!("p{i}"),
            vec![
                ("protein_name", GcmValue::Id((*name).into())),
                ("amount", GcmValue::Int(*amount)),
                ("location", GcmValue::Id((*loc).into())),
                ("ion_bound", GcmValue::Id("calcium".into())),
            ],
        );
    }
    m.register(Arc::new(prot)).unwrap();
    let schema = NeuroSchema {
        partonomy_role: "has".into(), // Figure 1's partonomy role
        ..Default::default()
    };
    let q = Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    };
    (m, schema, q)
}

#[test]
fn eight_threads_replay_warm_section5_plan_identically() {
    let (mut m, schema, q) = section5_fixture();
    // Ground truth: the single-owner `&mut Mediator` path.
    let expected = run_section5(&mut m, &schema, &q, true).unwrap();
    assert!(
        !expected.step1_pairs.is_empty(),
        "plan found receiving pairs"
    );
    assert!(!expected.proteins.is_empty(), "plan found proteins");
    // Warm path: fetch once, snapshot once, then the evaluate phase
    // replays read-only from 8 threads — no wrapper is contacted again.
    let (federation, knowledge) = m.fetch_eval_planes();
    let fetched = section5_fetch(federation, knowledge, &schema, &q, true).unwrap();
    let hub = m.hub();
    m.publish_snapshot().unwrap();
    thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (hub, schema, fetched, expected) = (&hub, &schema, &fetched, &expected);
                s.spawn(move || {
                    let snap = hub.load().expect("hub seeded");
                    for _ in 0..4 {
                        let got = snap.run_section5(schema, fetched).unwrap();
                        assert_eq!(&got, expected, "snapshot replay diverged");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

// ---------- Magic sets × thread budgets ---------------------------------

/// Goal-directed answers must be identical with the magic-sets rewrite
/// on and off, at whatever thread budget CI sets (`KIND_EVAL_THREADS=1`
/// and `=8`), from both the mediator and concurrent snapshot callers.
#[test]
fn magic_sets_toggle_preserves_answers_across_thread_budgets() {
    let rendered = |m: &Mediator, rows: &[Vec<kind_datalog::Term>]| {
        let mut v: Vec<String> = rows
            .iter()
            .map(|r| r.iter().map(|t| m.show(t)).collect::<Vec<_>>().join(","))
            .collect();
        v.sort();
        v
    };
    let build = |magic: bool| {
        let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
        m.set_eval_threads(eval_threads_from_env());
        m.set_magic_sets(magic);
        m.register(spine_wrapper("A", "Spine", 6)).unwrap();
        m.register(spine_wrapper("B", "Shaft", 4)).unwrap();
        m.materialize_all().unwrap();
        m
    };
    let mut on = build(true);
    let mut off = build(false);
    // A bound-goal query (constant in the body) and a wide one; repeats
    // take the seeded warm path on top of the base cache.
    let queries = [
        r#"at_spine(X) :- X : spines, X[loc -> "Spine"]."#,
        "all_len(X, L) :- X : spines, X[len -> L].",
        r#"at_spine(X) :- X : spines, X[loc -> "Spine"]."#,
    ];
    for q in queries {
        let a = on.answer(q).unwrap();
        let b = off.answer(q).unwrap();
        assert_eq!(rendered(&on, &a.rows), rendered(&off, &b.rows), "{q}");
        assert!(!b.magic_fired);
    }
    // Snapshots inherit the toggle; 8 threads on each must agree with
    // each other and across the toggle.
    let snap_on = on.snapshot().unwrap();
    let snap_off = off.snapshot().unwrap();
    let q = r#"at_spine(X) :- X : spines, X[loc -> "Spine"]."#;
    let expected = snap_on.answer(q).unwrap();
    assert_eq!(expected, snap_off.answer(q).unwrap());
    thread::scope(|s| {
        for snap in [&snap_on, &snap_off] {
            for _ in 0..4 {
                let (snap, expected) = (snap, &expected);
                s.spawn(move || {
                    assert_eq!(&snap.answer(q).unwrap(), expected);
                });
            }
        }
    });
}
