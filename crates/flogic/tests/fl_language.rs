//! Language-level tests for the F-logic layer: parser diagnostics,
//! interaction of inheritance with the well-founded semantics, and the
//! display round trip.

use kind_datalog::DatalogError;
use kind_flogic::{parse_fl_molecule, parse_fl_program, FLogic, Molecule};

#[test]
fn parser_rejects_malformed_clauses() {
    let mut syms = kind_datalog::Interner::new();
    for bad in [
        "X :",        // dangling isa
        "a[",         // unterminated frame
        "a[m]",       // frame without arrow
        "a[m -> ].",  // missing value
        "p(X) :- .",  // empty body
        "p(X) q(X).", // missing separator
        ": c.",       // missing subject
    ] {
        assert!(
            parse_fl_program(bad, &mut syms).is_err(),
            "should reject: {bad:?}"
        );
    }
}

#[test]
fn parser_accepts_paper_notations() {
    let mut syms = kind_datalog::Interner::new();
    // The paper writes method values with ->, ->> and signatures with =>.
    let cs = parse_fl_program("o[m1 -> a; m2 ->> b]. c[m3 => d].", &mut syms).unwrap();
    assert_eq!(cs.len(), 2);
}

#[test]
fn molecule_display_roundtrips() {
    let mut syms = kind_datalog::Interner::new();
    for src in ["n1 : neuron", "a :: b", "n1[size -> 42]", "p(a, b)"] {
        let (m, _) = parse_fl_molecule(src, &mut syms).unwrap();
        let printed = m.display(&syms).to_string();
        let (m2, _) = parse_fl_molecule(&printed, &mut syms).unwrap();
        assert_eq!(m, m2, "roundtrip failed for {src:?}");
    }
}

#[test]
fn deep_hierarchy_instance_count() {
    // 100-deep chain: the closure axioms must reach all the way.
    let mut fl = FLogic::new();
    let mut text = String::new();
    for i in 0..100 {
        text.push_str(&format!("k{} :: k{}.\n", i, i + 1));
    }
    text.push_str("x : k0.\n");
    fl.load(&text).unwrap();
    let m = fl.run().unwrap();
    assert!(fl.is_instance(&m, "x", "k100"));
    // x is an instance of all 101 classes.
    let mut e = fl.engine().clone();
    let sols = e.query_model(&m, "inst(x, C)").unwrap();
    assert_eq!(sols.len(), 101);
}

#[test]
fn diamond_inheritance_multiple_superclasses() {
    // The "multiple inheritance problem" the paper footnotes: a class
    // with several direct superclasses. Monotonic propagation is simply
    // the union.
    let mut fl = FLogic::new();
    fl.load(
        "bottom :: left. bottom :: right.
         left :: top. right :: top.
         left[m => from_left]. right[m => from_right].
         o : bottom.",
    )
    .unwrap();
    let m = fl.run().unwrap();
    assert!(fl.is_instance(&m, "o", "top"));
    // Signatures from both parents are inherited.
    let mut e = fl.engine().clone();
    assert_eq!(e.query_model(&m, "meth(bottom, m, R)").unwrap().len(), 2);
}

#[test]
fn default_inheritance_diamond_conflict_yields_both() {
    // Two incomparable classes both carry defaults: neither shadows the
    // other, so the instance sees both candidate values (F-logic's
    // multiple-inheritance ambiguity surfaced honestly).
    let mut fl = FLogic::with_inheritance();
    fl.load("o : left. o : right.").unwrap();
    fl.load_datalog(
        "default(left, color, red).
         default(right, color, blue).",
    )
    .unwrap();
    let m = fl.run().unwrap();
    let mut e = fl.engine().clone();
    let vals = e.query_model(&m, "val(o, color, V)").unwrap();
    assert_eq!(vals.len(), 2);
}

#[test]
fn inheritance_with_recursive_negation_uses_wfs() {
    // A default whose applicability depends (through negation) on a
    // derived class: exercises the WFS dispatch end to end.
    let mut fl = FLogic::with_inheritance();
    fl.load(
        "o1 : neuron. o2 : neuron.
         o2[kind -> special].
         X : plain_neuron :- X : neuron, not X[kind -> special].",
    )
    .unwrap();
    fl.load_datalog("default(plain_neuron, rank, 1).").unwrap();
    let m = fl.run().unwrap();
    let mut e = fl.engine().clone();
    assert_eq!(e.query_model(&m, "val(o1, rank, 1)").unwrap().len(), 1);
    assert!(e.query_model(&m, "val(o2, rank, 1)").unwrap().is_empty());
}

#[test]
fn queries_on_reserved_predicates() {
    let mut fl = FLogic::new();
    fl.load("a :: b. x : a.").unwrap();
    let m = fl.run().unwrap();
    // Molecule queries with variables in both positions.
    let pairs = fl.query(&m, "X : C").unwrap();
    // x : a, x : b (plus meta entries none — FLogic alone has no
    // class-meta reflection; that's GcmBase).
    assert_eq!(pairs.len(), 2);
    let subs = fl.query(&m, "S :: T").unwrap();
    // a::b plus reflexive a::a, b::b.
    assert_eq!(subs.len(), 3);
}

#[test]
fn error_message_names_the_unsafe_variable() {
    let mut syms = kind_datalog::Interner::new();
    let err = parse_fl_program("p(Y) :- q(X).", &mut syms)
        .and_then(|cs| {
            let preds = kind_flogic::Preds::intern(&mut syms);
            kind_flogic::lower_clause(&cs[0], &preds).map(|_| ())
        })
        .unwrap_err();
    match err {
        DatalogError::UnsafeRule { var, .. } => assert_eq!(var, "Y"),
        other => panic!("expected UnsafeRule, got {other:?}"),
    }
}

#[test]
fn plain_atoms_pass_through_untouched() {
    let mut syms = kind_datalog::Interner::new();
    let (m, _) = parse_fl_molecule("edge(a, b)", &mut syms).unwrap();
    let Molecule::Plain(atom) = m else { panic!() };
    assert_eq!(atom.args.len(), 2);
}
