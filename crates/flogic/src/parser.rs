//! Parser for the F-logic surface syntax used throughout the paper:
//!
//! ```text
//! % schema level
//! neuron :: cell.
//! neuron[has => compartment].
//! % instance level
//! n1 : neuron.
//! n1[size -> 42; species -> "rat"].
//! % rules mixing molecules, plain atoms, negation, and aggregates
//! big(X) :- X : neuron, X[size -> S], S > 10.
//! w(VB, N) : ic :- N = count{ VA [VB] ; r(VA, VB) }, N != 1.
//! ```
//!
//! The `W : ic` head form (a witness object inserted into the
//! distinguished inconsistency class, paper §3 IC / Example 2) is ordinary
//! `IsA` syntax and needs no special casing.

use crate::ast::{ArrowKind, MethodSpec, Molecule};
use kind_datalog::{AggFunc, Atom, DatalogError, Interner, Term, Var};
use std::collections::HashMap;

/// A body item at the FL level.
#[derive(Debug, Clone)]
pub enum FlBodyItem {
    /// A positive molecule.
    Pos(Molecule),
    /// A negated molecule (must translate to a single atom).
    Neg(Molecule),
    /// Comparison between expressions.
    Cmp(kind_datalog::CmpOp, kind_datalog::Expr, kind_datalog::Expr),
    /// Assignment `T = expr`.
    Assign(Term, kind_datalog::Expr),
    /// Aggregate `R = func{ value [groups] : body }` with an FL body.
    Agg {
        /// Fold function.
        func: AggFunc,
        /// Collected term.
        value: Term,
        /// Grouping variables.
        group_by: Vec<Var>,
        /// FL subquery.
        body: Vec<FlBodyItem>,
        /// Result variable.
        result: Var,
    },
}

/// A parsed FL clause: a head molecule (frames may carry several specs and
/// expand to several Datalog rules) and a body (empty for facts).
#[derive(Debug, Clone)]
pub struct FlClause {
    /// Head molecule.
    pub head: Molecule,
    /// Body items (empty = fact).
    pub body: Vec<FlBodyItem>,
    /// Number of variables in the clause.
    pub nvars: u32,
    /// Variable names by id.
    pub var_names: Vec<String>,
}

/// Parses an FL program.
pub fn parse_fl_program(src: &str, syms: &mut Interner) -> Result<Vec<FlClause>, DatalogError> {
    let mut p = FlParser::new(src, syms);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.clause()?);
    }
}

/// Parses a single FL molecule (for queries), returning the molecule and
/// the variable-name table.
pub fn parse_fl_molecule(
    src: &str,
    syms: &mut Interner,
) -> Result<(Molecule, Vec<String>), DatalogError> {
    let mut p = FlParser::new(src, syms);
    p.skip_ws();
    let m = p.molecule()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after molecule"));
    }
    Ok((m, p.var_names))
}

struct FlParser<'a> {
    src: &'a [u8],
    pos: usize,
    syms: &'a mut Interner,
    vars: HashMap<String, Var>,
    var_names: Vec<String>,
}

impl<'a> FlParser<'a> {
    fn new(src: &'a str, syms: &'a mut Interner) -> Self {
        FlParser {
            src: src.as_bytes(),
            pos: 0,
            syms,
            vars: HashMap::new(),
            var_names: Vec::new(),
        }
    }

    fn err(&self, msg: &str) -> DatalogError {
        let line = 1 + self.src[..self.pos.min(self.src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        DatalogError::Parse {
            offset: self.pos,
            line,
            message: msg.to_string(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, off: usize) -> u8 {
        self.src.get(self.pos + off).copied().unwrap_or(0)
    }

    fn skip_ws(&mut self) {
        loop {
            while !self.at_end() && self.peek().is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.peek() == b'%' || (self.peek() == b'/' && self.peek_at(1) == b'/') {
                while !self.at_end() && self.peek() != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Eats `s` only if it is not followed by any byte in `not_followed`.
    fn eat_unless(&mut self, s: &str, not_followed: &[u8]) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes())
            && !not_followed.contains(&self.src.get(self.pos + s.len()).copied().unwrap_or(0))
        {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), DatalogError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        if !(self.peek().is_ascii_alphabetic() || self.peek() == b'_') {
            return None;
        }
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.pos += 1;
        }
        Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn var(&mut self, name: String) -> Var {
        if name == "_" {
            let v = Var(self.var_names.len() as u32);
            self.var_names.push(format!("_{}", v.0));
            return v;
        }
        if let Some(&v) = self.vars.get(&name) {
            return v;
        }
        let v = Var(self.var_names.len() as u32);
        self.vars.insert(name.clone(), v);
        self.var_names.push(name);
        v
    }

    fn string_lit(&mut self) -> Result<String, DatalogError> {
        let mut s = String::new();
        loop {
            if self.at_end() {
                return Err(self.err("unterminated string"));
            }
            let b = self.src[self.pos];
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.src.get(self.pos).copied().unwrap_or(0);
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c => s.push(c as char),
            }
        }
    }

    fn term(&mut self) -> Result<Term, DatalogError> {
        self.skip_ws();
        if self.peek() == b'"' {
            self.pos += 1;
            let s = self.string_lit()?;
            return Ok(Term::Const(self.syms.intern(&s)));
        }
        if self.peek().is_ascii_digit() || (self.peek() == b'-' && self.peek_at(1).is_ascii_digit())
        {
            let start = self.pos;
            if self.peek() == b'-' {
                self.pos += 1;
            }
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
            let n: i64 = std::str::from_utf8(&self.src[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| self.err("integer out of range"))?;
            return Ok(Term::Int(n));
        }
        let Some(name) = self.ident() else {
            return Err(self.err("expected term"));
        };
        if name.starts_with(|c: char| c.is_ascii_uppercase()) || name.starts_with('_') {
            return Ok(Term::Var(self.var(name)));
        }
        if self.eat("(") {
            let mut args = vec![self.term()?];
            while self.eat(",") {
                args.push(self.term()?);
            }
            self.expect(")")?;
            Ok(Term::func(self.syms.intern(&name), args))
        } else {
            Ok(Term::Const(self.syms.intern(&name)))
        }
    }

    /// molecule := term ( ':' term | '::' term | '[' specs ']' )?
    fn molecule(&mut self) -> Result<Molecule, DatalogError> {
        let t = self.term()?;
        self.skip_ws();
        if self.eat("::") {
            let sup = self.term()?;
            return Ok(Molecule::SubClass { sub: t, sup });
        }
        // `:` but not `:-` or `::`.
        if self.eat_unless(":", b"-:") {
            let class = self.term()?;
            return Ok(Molecule::IsA { obj: t, class });
        }
        if self.eat("[") {
            let mut specs = vec![self.method_spec()?];
            while self.eat(";") {
                specs.push(self.method_spec()?);
            }
            self.expect("]")?;
            return Ok(Molecule::Frame { obj: t, specs });
        }
        // A plain atom: constant (0-ary) or function-shaped call.
        match t {
            Term::Const(p) => Ok(Molecule::Plain(Atom::new(p, Vec::new()))),
            Term::Func(p, args) => Ok(Molecule::Plain(Atom::new(p, args.to_vec()))),
            _ => Err(self.err("expected molecule")),
        }
    }

    /// spec := term ('->' | '->>' | '!!'-free '=>' ) term
    fn method_spec(&mut self) -> Result<MethodSpec, DatalogError> {
        let method = self.term()?;
        self.skip_ws();
        let arrow = if self.eat("->>") || self.eat("!!") || self.eat("->") {
            ArrowKind::Value
        } else if self.eat("=>") || self.eat("))") {
            ArrowKind::Signature
        } else if self.eat("!") {
            // paper alternative notation `M!V`
            ArrowKind::Value
        } else {
            return Err(self.err("expected `->`, `->>`, or `=>` in frame"));
        };
        let value = self.term()?;
        Ok(MethodSpec {
            method,
            arrow,
            value,
        })
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn cmp_op(&mut self) -> Option<kind_datalog::CmpOp> {
        use kind_datalog::CmpOp;
        self.skip_ws();
        for (tok, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
            ("=", CmpOp::Eq),
        ] {
            if tok == "=" {
                // `=` but not `=>`.
                if self.src[self.pos..].starts_with(b"=")
                    && self.src.get(self.pos + 1).copied() != Some(b'>')
                {
                    self.pos += 1;
                    return Some(op);
                }
                continue;
            }
            if self.src[self.pos..].starts_with(tok.as_bytes()) {
                self.pos += tok.len();
                return Some(op);
            }
        }
        None
    }

    fn expr(&mut self) -> Result<kind_datalog::Expr, DatalogError> {
        use kind_datalog::Expr;
        let mut lhs = self.expr_mul()?;
        loop {
            self.skip_ws();
            if self.eat("+") {
                lhs = Expr::Add(Box::new(lhs), Box::new(self.expr_mul()?));
            } else if self.peek() == b'-' {
                self.pos += 1;
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.expr_mul()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_mul(&mut self) -> Result<kind_datalog::Expr, DatalogError> {
        use kind_datalog::Expr;
        let mut lhs = self.expr_prim()?;
        loop {
            self.skip_ws();
            if self.eat("*") {
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.expr_prim()?));
            } else if self.peek() == b'/' && self.peek_at(1) != b'/' {
                self.pos += 1;
                lhs = Expr::Div(Box::new(lhs), Box::new(self.expr_prim()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_prim(&mut self) -> Result<kind_datalog::Expr, DatalogError> {
        use kind_datalog::Expr;
        self.skip_ws();
        if self.eat("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        self.term().map(Expr::Term)
    }

    fn body_item(&mut self) -> Result<FlBodyItem, DatalogError> {
        self.skip_ws();
        let save = self.pos;
        if let Some(word) = self.ident() {
            if word == "not" {
                return Ok(FlBodyItem::Neg(self.molecule()?));
            }
            self.pos = save;
        }
        // Try: Var = aggregate / assignment / comparison — these start
        // with a term followed by an operator that a molecule can't have.
        let save = self.pos;
        let saved_varcount = self.var_names.len();
        if let Ok(t) = self.term() {
            if let Some(op) = self.cmp_op() {
                if op == kind_datalog::CmpOp::Eq {
                    // Aggregate?
                    let save2 = self.pos;
                    if let Some(word) = self.ident() {
                        if let Some(func) = Self::agg_func(&word) {
                            self.skip_ws();
                            if self.peek() == b'{' {
                                let Term::Var(result) = t else {
                                    return Err(self.err("aggregate result must be a variable"));
                                };
                                return self.aggregate(func, result);
                            }
                        }
                        self.pos = save2;
                    }
                    let rhs = self.expr()?;
                    return Ok(FlBodyItem::Assign(t, rhs));
                }
                let rhs = self.expr()?;
                return Ok(FlBodyItem::Cmp(op, kind_datalog::Expr::Term(t), rhs));
            }
            // Arithmetic comparison with compound lhs, e.g. `X + 1 < Y`?
            self.skip_ws();
            if matches!(self.peek(), b'+' | b'*')
                || (self.peek() == b'-' && self.peek_at(1) != b'>')
                || (self.peek() == b'/' && self.peek_at(1) != b'/')
            {
                self.pos = save;
                self.var_names.truncate(saved_varcount);
                self.vars.retain(|_, v| v.index() < saved_varcount);
                let lhs = self.expr()?;
                let Some(op) = self.cmp_op() else {
                    return Err(self.err("expected comparison after expression"));
                };
                let rhs = self.expr()?;
                return Ok(FlBodyItem::Cmp(op, lhs, rhs));
            }
        }
        self.pos = save;
        self.var_names.truncate(saved_varcount);
        self.vars.retain(|_, v| v.index() < saved_varcount);
        Ok(FlBodyItem::Pos(self.molecule()?))
    }

    fn aggregate(&mut self, func: AggFunc, result: Var) -> Result<FlBodyItem, DatalogError> {
        self.expect("{")?;
        let value = self.term()?;
        let mut group_by = Vec::new();
        if self.eat("[") {
            loop {
                let Some(name) = self.ident() else {
                    return Err(self.err("expected grouping variable"));
                };
                group_by.push(self.var(name));
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("]")?;
        }
        self.skip_ws();
        if !self.eat(":") && !self.eat(";") {
            return Err(self.err("expected `:` or `;` in aggregate"));
        }
        let mut body = vec![self.body_item()?];
        while self.eat(",") {
            body.push(self.body_item()?);
        }
        self.expect("}")?;
        Ok(FlBodyItem::Agg {
            func,
            value,
            group_by,
            body,
            result,
        })
    }

    fn clause(&mut self) -> Result<FlClause, DatalogError> {
        self.vars.clear();
        self.var_names.clear();
        let head = self.molecule()?;
        self.skip_ws();
        if self.eat(".") {
            return Ok(FlClause {
                head,
                body: Vec::new(),
                nvars: self.var_names.len() as u32,
                var_names: std::mem::take(&mut self.var_names),
            });
        }
        self.expect(":-")?;
        let mut body = vec![self.body_item()?];
        while self.eat(",") {
            body.push(self.body_item()?);
        }
        self.expect(".")?;
        Ok(FlClause {
            head,
            body,
            nvars: self.var_names.len() as u32,
            var_names: std::mem::take(&mut self.var_names),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> (Vec<FlClause>, Interner) {
        let mut syms = Interner::new();
        let cs = parse_fl_program(src, &mut syms).unwrap();
        (cs, syms)
    }

    #[test]
    fn parses_isa_and_subclass_facts() {
        let (cs, _) = parse_ok("n1 : neuron. neuron :: cell.");
        assert_eq!(cs.len(), 2);
        assert!(matches!(cs[0].head, Molecule::IsA { .. }));
        assert!(matches!(cs[1].head, Molecule::SubClass { .. }));
    }

    #[test]
    fn parses_frames_with_multiple_specs() {
        let (cs, _) = parse_ok(r#"n1[size -> 42; species -> "rat"]."#);
        let Molecule::Frame { specs, .. } = &cs[0].head else {
            panic!()
        };
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.arrow == ArrowKind::Value));
    }

    #[test]
    fn parses_signatures() {
        let (cs, _) = parse_ok("neuron[has => compartment].");
        let Molecule::Frame { specs, .. } = &cs[0].head else {
            panic!()
        };
        assert_eq!(specs[0].arrow, ArrowKind::Signature);
    }

    #[test]
    fn parses_rule_with_molecule_body() {
        let (cs, _) = parse_ok("big(X) :- X : neuron, X[size -> S], S > 10.");
        assert_eq!(cs[0].body.len(), 3);
        assert!(matches!(
            cs[0].body[0],
            FlBodyItem::Pos(Molecule::IsA { .. })
        ));
        assert!(matches!(
            cs[0].body[1],
            FlBodyItem::Pos(Molecule::Frame { .. })
        ));
        assert!(matches!(cs[0].body[2], FlBodyItem::Cmp(..)));
    }

    #[test]
    fn parses_ic_witness_head() {
        // Example 2's first denial: wrc(C,R,X) : ic :- ...
        let (cs, _) = parse_ok("wrc(C, R, X) : ic :- X : C, not r(X, X), rel(R).");
        let Molecule::IsA { obj, .. } = &cs[0].head else {
            panic!("head was {:?}", cs[0].head)
        };
        assert!(matches!(obj, Term::Func(..)));
        assert!(matches!(cs[0].body[1], FlBodyItem::Neg(_)));
    }

    #[test]
    fn parses_paper_cardinality_rule() {
        // Example 3 (adapted): w(R,VB,N) : ic :- N = count{VA[VB]; r(VA,VB)}, N != 1.
        let (cs, _) =
            parse_ok("w(R, VB, N) : ic :- rel(R), N = count{ VA [VB] ; r(VA, VB) }, N != 1.");
        assert!(cs[0]
            .body
            .iter()
            .any(|b| matches!(b, FlBodyItem::Agg { .. })));
    }

    #[test]
    fn parses_negated_molecule() {
        let (cs, _) = parse_ok("lonely(X) :- X : neuron, not X[has -> _].");
        assert!(matches!(
            cs[0].body[1],
            FlBodyItem::Neg(Molecule::Frame { .. })
        ));
    }

    #[test]
    fn parses_variable_class_positions() {
        // Schema reasoning: class and method positions may be variables
        // ("the power of schema reasoning in FL", Example 2).
        let (cs, _) = parse_ok("r(X, C) :- X : C, C :: spiny_neuron.");
        assert!(matches!(
            &cs[0].body[0],
            FlBodyItem::Pos(Molecule::IsA {
                obj: Term::Var(_),
                class: Term::Var(_)
            })
        ));
    }

    #[test]
    fn parses_assignment_and_arith() {
        let (cs, _) = parse_ok("p(X, Y) :- n(X), Y = X * 2 + 1.");
        assert!(matches!(cs[0].body[1], FlBodyItem::Assign(..)));
    }

    #[test]
    fn molecule_helper_parses_queries() {
        let mut syms = Interner::new();
        let (m, names) = parse_fl_molecule("X : purkinje_cell", &mut syms).unwrap();
        assert!(matches!(m, Molecule::IsA { .. }));
        assert_eq!(names, vec!["X"]);
    }

    #[test]
    fn strings_as_classes() {
        let (cs, syms) = parse_ok(r#"c1[location -> "Purkinje Cell"]."#);
        let Molecule::Frame { specs, .. } = &cs[0].head else {
            panic!()
        };
        assert_eq!(
            specs[0].value,
            Term::Const(syms.get("Purkinje Cell").unwrap())
        );
    }
}
