//! Lowering of F-logic molecules to Datalog atoms — the left-to-middle
//! column move of Table 1.
//!
//! Reserved predicates (documented; user programs must not redefine them
//! with different meanings):
//!
//! | FL form        | Datalog predicate |
//! |----------------|-------------------|
//! | `X : C`        | `inst(X, C)`      |
//! | `C1 :: C2`     | `sub(C1, C2)`     |
//! | `X[M -> Y]`    | `mi(X, M, Y)`     |
//! | `C[M => CM]`   | `meth(C, M, CM)`  |
//! | classes        | `class(C)`        |

use crate::ast::{ArrowKind, Molecule};
use crate::parser::{FlBodyItem, FlClause};
use kind_datalog::{Aggregate, Atom, BodyItem, DatalogError, Interner, Rule, Sym, Term};

/// The interned reserved predicate symbols.
#[derive(Debug, Clone, Copy)]
pub struct Preds {
    /// `inst/2` — instance-of.
    pub inst: Sym,
    /// `sub/2` — subclass-of.
    pub sub: Sym,
    /// `mi/3` — method instance (object, method, value).
    pub mi: Sym,
    /// `meth/3` — method signature (class, method, result class).
    pub meth: Sym,
    /// `class/1` — class registry.
    pub class: Sym,
    /// `ic` — the distinguished inconsistency class (§3 IC).
    pub ic: Sym,
    /// `icw/1` — the internal predicate holding `ic`'s members.
    ///
    /// `W : ic` is translated to `icw(W)` rather than `inst(W, ic)`:
    /// witness objects must not enter the ordinary class lattice, or the
    /// constraint rules (which aggregate over reified relations derived
    /// from that lattice) would recurse through their own aggregates.
    pub icw: Sym,
}

impl Preds {
    /// Interns the reserved names.
    pub fn intern(syms: &mut Interner) -> Self {
        Preds {
            inst: syms.intern("inst"),
            sub: syms.intern("sub"),
            mi: syms.intern("mi"),
            meth: syms.intern("meth"),
            class: syms.intern("class"),
            ic: syms.intern("ic"),
            icw: syms.intern("icw"),
        }
    }
}

/// Translates a molecule into its Datalog atoms (a frame with `n` specs
/// yields `n` atoms).
pub fn molecule_atoms(mol: &Molecule, preds: &Preds) -> Vec<Atom> {
    match mol {
        Molecule::IsA { obj, class } => {
            if *class == Term::Const(preds.ic) {
                vec![Atom::new(preds.icw, vec![obj.clone()])]
            } else {
                vec![Atom::new(preds.inst, vec![obj.clone(), class.clone()])]
            }
        }
        Molecule::SubClass { sub, sup } => {
            vec![Atom::new(preds.sub, vec![sub.clone(), sup.clone()])]
        }
        Molecule::Frame { obj, specs } => specs
            .iter()
            .map(|s| {
                let pred = match s.arrow {
                    ArrowKind::Value => preds.mi,
                    ArrowKind::Signature => preds.meth,
                };
                Atom::new(pred, vec![obj.clone(), s.method.clone(), s.value.clone()])
            })
            .collect(),
        Molecule::Plain(a) => vec![a.clone()],
    }
}

fn lower_body(items: &[FlBodyItem], preds: &Preds) -> Result<Vec<BodyItem>, DatalogError> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            FlBodyItem::Pos(m) => {
                out.extend(molecule_atoms(m, preds).into_iter().map(BodyItem::Pos));
            }
            FlBodyItem::Neg(m) => {
                let atoms = molecule_atoms(m, preds);
                if atoms.len() != 1 {
                    return Err(DatalogError::Parse {
                        offset: 0,
                        line: 0,
                        message: "negated frame must contain exactly one method spec".to_string(),
                    });
                }
                out.push(BodyItem::Neg(atoms.into_iter().next().expect("one atom")));
            }
            FlBodyItem::Cmp(op, l, r) => out.push(BodyItem::Cmp(*op, l.clone(), r.clone())),
            FlBodyItem::Assign(t, e) => out.push(BodyItem::Assign(t.clone(), e.clone())),
            FlBodyItem::Agg {
                func,
                value,
                group_by,
                body,
                result,
            } => out.push(BodyItem::Agg(Aggregate {
                func: *func,
                value: value.clone(),
                group_by: group_by.clone(),
                body: lower_body(body, preds)?,
                result: *result,
            })),
        }
    }
    Ok(out)
}

/// Lowers an FL clause to Datalog. A fact whose head frame has several
/// specs yields several facts; a rule likewise yields one rule per head
/// atom (same body). Returns `(facts, rules)`.
pub fn lower_clause(
    clause: &FlClause,
    preds: &Preds,
) -> Result<(Vec<Atom>, Vec<Rule>), DatalogError> {
    lower_clause_inner(clause, preds, None)
}

/// Like [`lower_clause`], but renders predicate names through `syms` in
/// error messages (instead of opaque `#{n}` handles). Prefer this when an
/// interner is in scope.
pub fn lower_clause_named(
    clause: &FlClause,
    preds: &Preds,
    syms: &Interner,
) -> Result<(Vec<Atom>, Vec<Rule>), DatalogError> {
    lower_clause_inner(clause, preds, Some(syms))
}

fn lower_clause_inner(
    clause: &FlClause,
    preds: &Preds,
    syms: Option<&Interner>,
) -> Result<(Vec<Atom>, Vec<Rule>), DatalogError> {
    let name = |s: Sym| -> String {
        syms.and_then(|i| i.name_of(s))
            .map(str::to_string)
            .unwrap_or_else(|| format!("{s}"))
    };
    let heads = molecule_atoms(&clause.head, preds);
    if clause.body.is_empty() {
        for h in &heads {
            if !h.is_ground() {
                return Err(DatalogError::Parse {
                    offset: 0,
                    line: 0,
                    message: format!("FL fact with variables (predicate {})", name(h.pred)),
                });
            }
        }
        return Ok((heads, Vec::new()));
    }
    let body = lower_body(&clause.body, preds)?;
    let rules = heads
        .into_iter()
        .map(|h| match syms {
            Some(i) => {
                Rule::compile_named(h, body.clone(), clause.nvars, clause.var_names.clone(), i)
            }
            None => Rule::compile(h, body.clone(), clause.nvars, clause.var_names.clone()),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((Vec::new(), rules))
}

/// Derives class-registration facts implied by a ground molecule: the
/// classes mentioned in `X : C`, `C1 :: C2`, and `C[M => CM]` positions.
pub fn implied_classes(mol: &Molecule) -> Vec<Term> {
    match mol {
        Molecule::IsA { class, .. } => vec![class.clone()],
        Molecule::SubClass { sub, sup } => vec![sub.clone(), sup.clone()],
        Molecule::Frame { obj, specs } => {
            let mut out = Vec::new();
            for s in specs {
                if s.arrow == ArrowKind::Signature {
                    out.push(obj.clone());
                    out.push(s.value.clone());
                }
            }
            out
        }
        Molecule::Plain(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_fl_program;
    use kind_datalog::Interner;

    #[test]
    fn isa_lowers_to_inst() {
        let mut syms = Interner::new();
        let preds = Preds::intern(&mut syms);
        let cs = parse_fl_program("n1 : neuron.", &mut syms).unwrap();
        let (facts, rules) = lower_clause(&cs[0], &preds).unwrap();
        assert_eq!(facts.len(), 1);
        assert!(rules.is_empty());
        assert_eq!(facts[0].pred, preds.inst);
    }

    #[test]
    fn frame_fact_expands() {
        let mut syms = Interner::new();
        let preds = Preds::intern(&mut syms);
        let cs = parse_fl_program("n1[a -> 1; b -> 2].", &mut syms).unwrap();
        let (facts, _) = lower_clause(&cs[0], &preds).unwrap();
        assert_eq!(facts.len(), 2);
        assert!(facts.iter().all(|f| f.pred == preds.mi));
    }

    #[test]
    fn rule_head_frame_expands_to_rules() {
        let mut syms = Interner::new();
        let preds = Preds::intern(&mut syms);
        let cs = parse_fl_program("X[a -> 1; b -> 2] :- X : neuron.", &mut syms).unwrap();
        let (_, rules) = lower_clause(&cs[0], &preds).unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn signature_lowers_to_meth() {
        let mut syms = Interner::new();
        let preds = Preds::intern(&mut syms);
        let cs = parse_fl_program("neuron[has => compartment].", &mut syms).unwrap();
        let (facts, _) = lower_clause(&cs[0], &preds).unwrap();
        assert_eq!(facts[0].pred, preds.meth);
    }

    #[test]
    fn nonground_fl_fact_rejected() {
        let mut syms = Interner::new();
        let preds = Preds::intern(&mut syms);
        let cs = parse_fl_program("X : neuron :- q(X).", &mut syms).unwrap();
        // That's a rule, fine. A genuine non-ground fact:
        let cs2 = crate::parser::parse_fl_program("n1[a -> 1].", &mut syms).unwrap();
        assert!(lower_clause(&cs[0], &preds).is_ok());
        assert!(lower_clause(&cs2[0], &preds).is_ok());
    }

    #[test]
    fn negated_multi_spec_frame_rejected() {
        let mut syms = Interner::new();
        let preds = Preds::intern(&mut syms);
        let cs = parse_fl_program("p(X) :- q(X), not X[a -> 1; b -> 2].", &mut syms).unwrap();
        assert!(lower_clause(&cs[0], &preds).is_err());
    }

    #[test]
    fn implied_classes_from_molecules() {
        let mut syms = Interner::new();
        let cs = parse_fl_program("neuron :: cell. n1 : neuron.", &mut syms).unwrap();
        assert_eq!(implied_classes(&cs[0].head).len(), 2);
        assert_eq!(implied_classes(&cs[1].head).len(), 1);
    }
}
