//! # kind-flogic — the F-logic fragment hosting the GCM
//!
//! The paper picks F-logic (FL) as the concrete Generic Conceptual Model:
//! *"with FL we get a GCM formalism 'for free' … FL natively contains all
//! of the above-mentioned GCM concepts"* (§3). This crate implements the
//! FL fragment of **Table 1**: molecules `X : C`, `C1 :: C2`,
//! `X[M -> Y]`, `C[M => CM]`, a parser for the FL surface syntax the paper
//! writes its rules in, lowering to `kind-datalog`, and the core FL
//! axioms:
//!
//! ```text
//! C :: C            :- C : class.          (reflexivity of ::)
//! C1 :: C2          :- C1 :: C3, C3 :: C2. (transitivity of ::)
//! X : C2            :- X : C1, C1 :: C2.   (upward propagation of :)
//! C1[M => R]        :- C1 :: C2, C2[M => R]. (signature inheritance)
//! ```
//!
//! plus an optional **nonmonotonic value inheritance** module (defaults
//! overridden by more specific classes or explicit values — the paper's
//! "nonmonotonic inheritance, e.g. using FL with well-founded semantics",
//! §4).
//!
//! ```
//! use kind_flogic::FLogic;
//!
//! let mut fl = FLogic::new();
//! fl.load(
//!     "spiny_neuron :: neuron.
//!      purkinje_cell :: spiny_neuron.
//!      p1 : purkinje_cell.
//!      p1[size -> 42].
//!      big(X) :- X : neuron, X[size -> S], S > 10.",
//! ).unwrap();
//! let m = fl.run().unwrap();
//! // p1 is a neuron by upward propagation along ::
//! assert!(fl.instances_of(&m, "neuron").contains(&"p1".to_string()));
//! assert_eq!(fl.query(&m, "big(X)").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod parser;
pub mod translate;

pub use ast::{ArrowKind, MethodSpec, Molecule};
pub use parser::{parse_fl_molecule, parse_fl_program, FlBodyItem, FlClause};
pub use translate::{implied_classes, lower_clause, lower_clause_named, molecule_atoms, Preds};

use kind_datalog::{Atom, DatalogError, Engine, EvalOptions, Interner, Model, Term};

/// Core FL axioms of Table 1 (right column), in Datalog syntax over the
/// reserved predicates.
///
/// The `class/1` registry is **extensional**: every entry point that can
/// mention a class — molecule lowering ([`translate::implied_classes`],
/// applied to facts *and* ground rule-head classes), [`FLogic::declare_subclass`],
/// [`FLogic::assert_instance`] — registers it eagerly, so no axiom
/// derives `class` from `sub`/`inst`. This keeps `class`, `sub`, and
/// `inst` in *separate strata* (class ≺ sub ≺ inst) instead of one big
/// mutually recursive component, which matters for goal-directed
/// evaluation: the magic-sets rewrite can then propagate demand
/// directionally (e.g. downward through `sub` for an anchored instance
/// query) instead of having a bound `class` subgoal drag in the reversed
/// closure of the whole hierarchy.
pub const CORE_AXIOMS: &str = "
    % reflexivity of :: over registered classes
    sub(C, C) :- class(C).
    % transitivity of ::
    sub(C1, C2) :- sub(C1, C3), sub(C3, C2).
    % upward propagation of : along ::
    inst(X, C2) :- inst(X, C1), sub(C1, C2).
    % structural (signature) inheritance down the hierarchy
    meth(C1, M, R) :- sub(C1, C2), meth(C2, M, R).
";

/// Nonmonotonic value-inheritance axioms: `val(X, M, V)` is the effective
/// method value — explicit `mi` if present, otherwise the default of the
/// most specific class carrying one.
pub const INHERITANCE_AXIOMS: &str = "
    val(X, M, V) :- mi(X, M, V).
    val(X, M, V) :- inst(X, C), default(C, M, V),
                    not has_mi(X, M), not shadowed(X, C, M).
    has_mi(X, M) :- mi(X, M, _).
    % a default at C is shadowed for X if a strictly more specific class
    % of X also declares a default for M
    shadowed(X, C, M) :- inst(X, C1), default(C1, M, _),
                         strict_sub(C1, C), inst(X, C).
    strict_sub(C1, C2) :- sub(C1, C2), C1 != C2, not sub(C2, C1).
";

/// An F-logic knowledge base: an [`Engine`] plus the reserved-predicate
/// table and the core axioms.
#[derive(Debug, Clone)]
pub struct FLogic {
    engine: Engine,
    preds: Preds,
}

impl Default for FLogic {
    fn default() -> Self {
        Self::new()
    }
}

impl FLogic {
    /// Creates a knowledge base with the core axioms installed.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        let preds = Preds::intern(engine.symbols_mut());
        engine
            .load(CORE_AXIOMS)
            .expect("core axioms are well-formed");
        FLogic { engine, preds }
    }

    /// Additionally installs the nonmonotonic value-inheritance module.
    pub fn with_inheritance() -> Self {
        let mut fl = Self::new();
        fl.engine
            .load(INHERITANCE_AXIOMS)
            .expect("inheritance axioms are well-formed");
        fl
    }

    /// The reserved predicate symbols.
    pub fn preds(&self) -> &Preds {
        &self.preds
    }

    /// Escape hatch to the underlying Datalog engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable escape hatch.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Loads FL program text (facts and rules in FL syntax).
    pub fn load(&mut self, src: &str) -> Result<(), DatalogError> {
        let clauses = parser::parse_fl_program(src, self.engine.symbols_mut())?;
        for clause in clauses {
            self.add_clause(&clause)?;
        }
        Ok(())
    }

    /// Adds one parsed FL clause.
    pub fn add_clause(&mut self, clause: &FlClause) -> Result<(), DatalogError> {
        let (facts, rules) =
            translate::lower_clause_named(clause, &self.preds, self.engine.symbols())?;
        for f in facts {
            self.engine.add_fact(f.pred, f.args)?;
        }
        for r in rules {
            self.engine.add_rule(r)?;
        }
        // Register implied classes so `::` reflexivity covers them. Rule
        // heads count too: a rule `sk(X) : c :- ...` mentions `c` as a
        // class even though the fact is derived (the registry is
        // extensional — see [`CORE_AXIOMS`]). Only ground class terms
        // register; a variable class position contributes nothing here.
        for c in translate::implied_classes(&clause.head) {
            if c.is_ground() {
                self.engine.add_fact(self.preds.class, vec![c])?;
            }
        }
        Ok(())
    }

    /// Loads plain Datalog text (for constraint rules written directly
    /// against the reserved predicates).
    pub fn load_datalog(&mut self, src: &str) -> Result<(), DatalogError> {
        self.engine.load(src)
    }

    /// Declares a class.
    pub fn declare_class(&mut self, name: &str) -> Result<(), DatalogError> {
        let c = self.engine.constant(name);
        self.engine.add_fact(self.preds.class, vec![c]).map(|_| ())
    }

    /// Declares `sub :: sup` (both sides register as classes).
    pub fn declare_subclass(&mut self, sub: &str, sup: &str) -> Result<(), DatalogError> {
        let s = self.engine.constant(sub);
        let p = self.engine.constant(sup);
        self.engine.add_fact(self.preds.class, vec![s.clone()])?;
        self.engine.add_fact(self.preds.class, vec![p.clone()])?;
        self.engine.add_fact(self.preds.sub, vec![s, p]).map(|_| ())
    }

    /// Asserts `obj : class` (the class registers as a class).
    pub fn assert_instance(&mut self, obj: &str, class: &str) -> Result<(), DatalogError> {
        let o = self.engine.constant(obj);
        let c = self.engine.constant(class);
        self.engine.add_fact(self.preds.class, vec![c.clone()])?;
        self.engine
            .add_fact(self.preds.inst, vec![o, c])
            .map(|_| ())
    }

    /// Asserts a ground method value `obj[m -> v]`.
    pub fn assert_method(
        &mut self,
        obj: Term,
        method: &str,
        value: Term,
    ) -> Result<(), DatalogError> {
        let m = self.engine.constant(method);
        self.engine
            .add_fact(self.preds.mi, vec![obj, m, value])
            .map(|_| ())
    }

    /// Retracts `obj : class`, returning whether the fact was present.
    /// The class's own declaration stays — other instances may use it.
    pub fn retract_instance(&mut self, obj: &str, class: &str) -> bool {
        let o = self.engine.constant(obj);
        let c = self.engine.constant(class);
        self.engine.remove_fact(self.preds.inst, &[o, c])
    }

    /// Retracts a ground method value `obj[m -> v]`, returning whether
    /// the fact was present.
    pub fn retract_method(&mut self, obj: Term, method: &str, value: Term) -> bool {
        let m = self.engine.constant(method);
        self.engine.remove_fact(self.preds.mi, &[obj, m, value])
    }

    /// Evaluates the knowledge base with default options.
    pub fn run(&self) -> Result<Model, DatalogError> {
        self.engine.run(&EvalOptions::default())
    }

    /// Evaluates with explicit options.
    pub fn run_with(&self, opts: &EvalOptions) -> Result<Model, DatalogError> {
        self.engine.run(opts)
    }

    /// Evaluates only the rules relevant to the named goal predicates
    /// (see `kind_datalog::Engine::run_for`). Unknown names are ignored
    /// (they have no rules to prune towards).
    pub fn run_for(&self, goals: &[&str], opts: &EvalOptions) -> Result<Model, DatalogError> {
        let syms: Vec<_> = goals.iter().filter_map(|g| self.engine.lookup(g)).collect();
        self.engine.run_for(&syms, opts)
    }

    /// Like [`FLogic::run_for`], but evaluated as a delta on top of a
    /// cached `base` model (see `kind_datalog::Engine::run_for_seeded` for
    /// the contract): strata untouched since `base` was computed are
    /// seeded from it and skipped.
    pub fn run_for_seeded(
        &self,
        goals: &[&str],
        base: &Model,
        opts: &EvalOptions,
    ) -> Result<Model, DatalogError> {
        let syms: Vec<_> = goals.iter().filter_map(|g| self.engine.lookup(g)).collect();
        self.engine.run_for_seeded(&syms, base, opts)
    }

    /// Evaluates a single goal atom demand-driven (see
    /// `kind_datalog::Engine::run_for_query`): on top of the
    /// predicate-level prune of [`FLogic::run_for`], the magic-sets
    /// rewrite specializes the rules to the goal's constant bindings.
    /// Takes `&mut self` because the rewrite interns adorned predicate
    /// names.
    pub fn run_for_query(
        &mut self,
        goal: &Atom,
        opts: &EvalOptions,
    ) -> Result<Model, DatalogError> {
        self.engine.run_for_query(goal, opts)
    }

    /// Like [`FLogic::run_for_query`], but evaluated as a delta on top of
    /// a cached `base` model (see
    /// `kind_datalog::Engine::run_for_query_seeded`).
    pub fn run_for_query_seeded(
        &mut self,
        goal: &Atom,
        base: &Model,
        opts: &EvalOptions,
    ) -> Result<Model, DatalogError> {
        self.engine.run_for_query_seeded(goal, base, opts)
    }

    /// Names of all instances of `class` in the model.
    pub fn instances_of(&self, model: &Model, class: &str) -> Vec<String> {
        let Some(c) = self.engine.lookup(class) else {
            return Vec::new();
        };
        let c = Term::Const(c);
        let mut out = Vec::new();
        for tuple in model.tuples(self.preds.inst) {
            if tuple.len() == 2 && tuple[1] == c {
                out.push(self.engine.show(&tuple[0]));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Whether `obj : class` holds in the model.
    pub fn is_instance(&self, model: &Model, obj: &str, class: &str) -> bool {
        let (Some(o), Some(c)) = (self.engine.lookup(obj), self.engine.lookup(class)) else {
            return false;
        };
        model.holds(self.preds.inst, &[Term::Const(o), Term::Const(c)])
    }

    /// Whether `sub :: sup` holds in the model.
    pub fn is_subclass(&self, model: &Model, sub: &str, sup: &str) -> bool {
        let (Some(s), Some(p)) = (self.engine.lookup(sub), self.engine.lookup(sup)) else {
            return false;
        };
        model.holds(self.preds.sub, &[Term::Const(s), Term::Const(p)])
    }

    /// All `(method, value)` pairs of `obj` in the model.
    pub fn method_values(&self, model: &Model, obj: &str) -> Vec<(String, String)> {
        let Some(o) = self.engine.lookup(obj) else {
            return Vec::new();
        };
        let o = Term::Const(o);
        let mut out = Vec::new();
        for tuple in model.tuples(self.preds.mi) {
            if tuple.len() == 3 && tuple[0] == o {
                out.push((self.engine.show(&tuple[1]), self.engine.show(&tuple[2])));
            }
        }
        out.sort();
        out
    }

    /// The witnesses currently in the inconsistency class `ic` — the
    /// paper's integrity-constraint mechanism (§3 IC). Empty means the
    /// model satisfies every denial.
    pub fn inconsistency_witnesses(&self, model: &Model) -> Vec<String> {
        let mut out = Vec::new();
        for tuple in model.tuples(self.preds.icw) {
            if tuple.len() == 1 {
                out.push(self.engine.show(&tuple[0]));
            }
        }
        out.sort();
        out
    }

    /// Explains why an FL molecule fact holds in a model: returns the
    /// rendered derivation tree, or `None` when it does not hold. The
    /// molecule must be ground and translate to a single atom.
    pub fn explain(
        &mut self,
        model: &Model,
        fact: &str,
        max_depth: usize,
    ) -> Result<Option<String>, DatalogError> {
        let (mol, _) = parser::parse_fl_molecule(fact, self.engine.symbols_mut())?;
        let atoms = translate::molecule_atoms(&mol, &self.preds);
        let [atom] = atoms.as_slice() else {
            return Err(DatalogError::Parse {
                offset: 0,
                line: 0,
                message: "explain() takes a single-atom molecule".to_string(),
            });
        };
        Ok(self
            .engine
            .explain(model, atom.pred, &atom.args, max_depth)
            .map(|d| self.engine.render_derivation(&d)))
    }

    /// Runs an FL molecule query (e.g. `"X : neuron"`) against a model,
    /// returning one binding vector per solution (variables in first-seen
    /// order).
    pub fn query(&mut self, model: &Model, pattern: &str) -> Result<Vec<Vec<Term>>, DatalogError> {
        let (mol, _) = parser::parse_fl_molecule(pattern, self.engine.symbols_mut())?;
        let atoms = translate::molecule_atoms(&mol, &self.preds);
        if atoms.len() != 1 {
            return Err(DatalogError::Parse {
                offset: 0,
                line: 0,
                message: "query molecule must translate to a single atom".to_string(),
            });
        }
        Ok(model.query(&atoms[0]))
    }

    /// Read-only variant of [`FLogic::query`]: parses the pattern into a
    /// scratch symbol table and *remaps* its symbols into this knowledge
    /// base's (frozen) one, instead of interning new symbols into it. A
    /// constant or predicate this engine has never seen cannot match
    /// anything, so such patterns simply yield no rows.
    ///
    /// Because it takes `&self`, many threads can run queries against one
    /// shared `FLogic` + [`Model`] concurrently — this is the hot path of
    /// `kind-core`'s `QuerySnapshot`.
    pub fn query_frozen(
        &self,
        model: &Model,
        pattern: &str,
    ) -> Result<Vec<Vec<Term>>, DatalogError> {
        let mut scratch = Interner::new();
        let (mol, _) = parser::parse_fl_molecule(pattern, &mut scratch)?;
        let Some(mol) = remap_molecule(&mol, &scratch, self.engine.symbols()) else {
            return Ok(Vec::new());
        };
        let atoms = translate::molecule_atoms(&mol, &self.preds);
        if atoms.len() != 1 {
            return Err(DatalogError::Parse {
                offset: 0,
                line: 0,
                message: "query molecule must translate to a single atom".to_string(),
            });
        }
        Ok(model.query(&atoms[0]))
    }
}

/// Maps a term's symbols from one interner into another without
/// interning; `None` when a symbol is unknown to `to`.
fn remap_term(t: &Term, from: &Interner, to: &Interner) -> Option<Term> {
    match t {
        Term::Const(s) => to.get(from.resolve(*s)).map(Term::Const),
        Term::Func(f, args) => {
            let f = to.get(from.resolve(*f))?;
            let args: Option<Vec<Term>> = args.iter().map(|a| remap_term(a, from, to)).collect();
            Some(Term::func(f, args?))
        }
        other => Some(other.clone()),
    }
}

/// [`remap_term`] lifted over molecules.
fn remap_molecule(mol: &Molecule, from: &Interner, to: &Interner) -> Option<Molecule> {
    match mol {
        Molecule::IsA { obj, class } => Some(Molecule::IsA {
            obj: remap_term(obj, from, to)?,
            class: remap_term(class, from, to)?,
        }),
        Molecule::SubClass { sub, sup } => Some(Molecule::SubClass {
            sub: remap_term(sub, from, to)?,
            sup: remap_term(sup, from, to)?,
        }),
        Molecule::Frame { obj, specs } => {
            let obj = remap_term(obj, from, to)?;
            let specs = specs
                .iter()
                .map(|s| {
                    Some(MethodSpec {
                        method: remap_term(&s.method, from, to)?,
                        arrow: s.arrow,
                        value: remap_term(&s.value, from, to)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Molecule::Frame { obj, specs })
        }
        Molecule::Plain(a) => {
            let pred = to.get(from.resolve(a.pred))?;
            let args = a
                .args
                .iter()
                .map(|t| remap_term(t, from, to))
                .collect::<Option<Vec<_>>>()?;
            Some(Molecule::Plain(kind_datalog::Atom::new(pred, args)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_axioms_reflexive_transitive_subclass() {
        let mut fl = FLogic::new();
        fl.load(
            "purkinje_cell :: spiny_neuron.
             spiny_neuron :: neuron.
             neuron :: cell.",
        )
        .unwrap();
        let m = fl.run().unwrap();
        // Transitivity.
        assert!(fl.is_subclass(&m, "purkinje_cell", "cell"));
        // Reflexivity (C :: C for every class).
        assert!(fl.is_subclass(&m, "neuron", "neuron"));
        assert!(fl.is_subclass(&m, "purkinje_cell", "purkinje_cell"));
        // No downward edges invented.
        assert!(!fl.is_subclass(&m, "cell", "purkinje_cell"));
    }

    #[test]
    fn table1_axioms_instance_propagation() {
        let mut fl = FLogic::new();
        fl.load(
            "purkinje_cell :: spiny_neuron. spiny_neuron :: neuron.
             p1 : purkinje_cell.",
        )
        .unwrap();
        let m = fl.run().unwrap();
        assert!(fl.is_instance(&m, "p1", "purkinje_cell"));
        assert!(fl.is_instance(&m, "p1", "spiny_neuron"));
        assert!(fl.is_instance(&m, "p1", "neuron"));
    }

    #[test]
    fn signature_inheritance() {
        let mut fl = FLogic::new();
        fl.load(
            "neuron[has => compartment].
             spiny_neuron :: neuron.",
        )
        .unwrap();
        let m = fl.run().unwrap();
        let mut e = fl.engine().clone();
        let sols = e
            .query_model(&m, "meth(spiny_neuron, has, compartment)")
            .unwrap();
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn rules_over_molecules() {
        let mut fl = FLogic::new();
        fl.load(
            "n1 : neuron. n2 : neuron.
             n1[size -> 42]. n2[size -> 5].
             big(X) :- X : neuron, X[size -> S], S > 10.",
        )
        .unwrap();
        let m = fl.run().unwrap();
        let sols = fl.query(&m, "big(X)").unwrap();
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn ic_witnesses_surface() {
        let mut fl = FLogic::new();
        // A denial in the paper's style: every neuron must have a soma.
        fl.load(
            "n1 : neuron. n2 : neuron.
             n1[has -> soma1]. soma1 : soma.
             w_nosoma(X) : ic :- X : neuron, not has_soma(X).
             has_soma(X) :- X[has -> S], S : soma.",
        )
        .unwrap();
        let m = fl.run().unwrap();
        let wit = fl.inconsistency_witnesses(&m);
        assert_eq!(wit, vec!["w_nosoma(n2)"]);
    }

    #[test]
    fn nonmonotonic_default_inheritance() {
        let mut fl = FLogic::with_inheritance();
        fl.load(
            "medium_spiny_neuron :: neuron.
             m1 : medium_spiny_neuron.
             m2 : medium_spiny_neuron.
             m2[spine_density -> 99].",
        )
        .unwrap();
        // Defaults: neurons have density 10; medium spiny neurons 50.
        fl.load_datalog(
            "default(neuron, spine_density, 10).
             default(medium_spiny_neuron, spine_density, 50).",
        )
        .unwrap();
        let m = fl.run().unwrap();
        let mut e = fl.engine().clone();
        // m1: most specific default wins (50 shadows 10).
        let v1 = e.query_model(&m, "val(m1, spine_density, V)").unwrap();
        assert_eq!(
            v1,
            vec![vec![
                e.constant("m1"),
                e.constant("spine_density"),
                Term::Int(50)
            ]]
        );
        // m2: explicit value wins over any default.
        let v2 = e.query_model(&m, "val(m2, spine_density, V)").unwrap();
        assert_eq!(v2.len(), 1);
        assert_eq!(v2[0][2], Term::Int(99));
    }

    #[test]
    fn query_frozen_matches_query_and_handles_unknowns() {
        let mut fl = FLogic::new();
        fl.load(
            "n1 : neuron. n2 : neuron.
             n1[size -> 42].",
        )
        .unwrap();
        let m = fl.run().unwrap();
        let frozen = fl.query_frozen(&m, "X : neuron").unwrap();
        let mutable = fl.clone().query(&m, "X : neuron").unwrap();
        assert_eq!(frozen, mutable);
        assert_eq!(fl.query_frozen(&m, "X[size -> V]").unwrap().len(), 1);
        // Symbols the engine has never seen yield no rows (and intern
        // nothing).
        let before = fl.engine().symbols().len();
        assert!(fl.query_frozen(&m, "X : no_such_class").unwrap().is_empty());
        assert!(fl.query_frozen(&m, "no_such_pred(X)").unwrap().is_empty());
        assert_eq!(fl.engine().symbols().len(), before);
    }

    #[test]
    fn schema_level_queries() {
        // "This example also shows the power of schema reasoning in FL"
        // (Example 2): variables may range over classes and relations.
        let mut fl = FLogic::new();
        fl.load(
            "purkinje_cell :: spiny_neuron. pyramidal_cell :: spiny_neuron.
             spiny_neuron :: neuron.
             spiny(C) :- C :: spiny_neuron, C != spiny_neuron.",
        )
        .unwrap();
        let m = fl.run().unwrap();
        let sols = fl.query(&m, "spiny(C)").unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn method_values_accessor() {
        let mut fl = FLogic::new();
        fl.load(r#"n1[species -> "rat"; size -> 42]."#).unwrap();
        let m = fl.run().unwrap();
        let vals = fl.method_values(&m, "n1");
        assert_eq!(vals.len(), 2);
        assert!(vals.contains(&("species".to_string(), "rat".to_string())));
    }

    #[test]
    fn builder_api_matches_text_api() {
        let mut fl1 = FLogic::new();
        fl1.load("n1 : neuron. neuron :: cell.").unwrap();
        let mut fl2 = FLogic::new();
        fl2.assert_instance("n1", "neuron").unwrap();
        fl2.declare_subclass("neuron", "cell").unwrap();
        fl2.declare_class("neuron").unwrap();
        fl2.declare_class("cell").unwrap();
        let m1 = fl1.run().unwrap();
        let m2 = fl2.run().unwrap();
        assert_eq!(
            fl1.is_instance(&m1, "n1", "cell"),
            fl2.is_instance(&m2, "n1", "cell")
        );
        assert!(fl1.is_instance(&m1, "n1", "cell"));
    }
}
