//! F-logic molecules — the abstract syntax of the GCM's F-logic fragment
//! (paper Table 1).
//!
//! | GCM expression                   | FL syntax            |
//! |----------------------------------|----------------------|
//! | `instance(X, C)`                 | `X : C`              |
//! | `subclass(C1, C2)`               | `C1 :: C2`           |
//! | `method(C, M, CM)`               | `C[M => CM]`         |
//! | `methodinst(X, M, Y)`            | `X[M ->> Y]`         |
//! | `relation(R, A1=C1, …)`          | `R[A1 => C1; …]`     |
//! | `relationinst(R, A1=X1, …)`      | `R[A1 -> X1; …]` / `r(X1,…,Xn)` |
//!
//! A molecule is translated into one or more Datalog atoms by
//! [`crate::translate`]; plain predicates are passed through unchanged so
//! FL rules can mix frame syntax and ordinary atoms, exactly as the
//! paper's view definitions do (Example 4).

use kind_datalog::{Interner, Term};
use std::fmt;

/// How a method arrow was written. `=>` declares a signature (schema
/// level); `->` / `->>` state a method value (instance level). `->` and
/// `->>` are synonymous here (F-logic distinguishes functional/set-valued
/// methods; the GCM treats all methods as set-valued, paper §3 METH:
/// "yielding zero or more objects").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrowKind {
    /// `=>`: schema-level signature.
    Signature,
    /// `->` or `->>`: instance-level value.
    Value,
}

/// One `method arrow value` spec inside a frame `O[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// The method (attribute/role) term.
    pub method: Term,
    /// Arrow kind.
    pub arrow: ArrowKind,
    /// The value or result-class term.
    pub value: Term,
}

/// An F-logic molecule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Molecule {
    /// `X : C`
    IsA {
        /// The instance term.
        obj: Term,
        /// The class term.
        class: Term,
    },
    /// `C1 :: C2`
    SubClass {
        /// The subclass term.
        sub: Term,
        /// The superclass term.
        sup: Term,
    },
    /// `O[m1 -> v1; m2 => C2; …]` — a frame with one or more specs.
    Frame {
        /// The host object term.
        obj: Term,
        /// The method specs inside the brackets.
        specs: Vec<MethodSpec>,
    },
    /// A plain predicate atom `p(t1, …, tn)` passed through to Datalog.
    Plain(kind_datalog::Atom),
}

impl Molecule {
    /// Renders the molecule in FL syntax.
    pub fn display<'a>(&'a self, syms: &'a Interner) -> MoleculeDisplay<'a> {
        MoleculeDisplay { mol: self, syms }
    }
}

/// Pretty-printing adapter for [`Molecule`].
pub struct MoleculeDisplay<'a> {
    mol: &'a Molecule,
    syms: &'a Interner,
}

impl fmt::Display for MoleculeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mol {
            Molecule::IsA { obj, class } => {
                write!(
                    f,
                    "{} : {}",
                    obj.display(self.syms),
                    class.display(self.syms)
                )
            }
            Molecule::SubClass { sub, sup } => {
                write!(
                    f,
                    "{} :: {}",
                    sub.display(self.syms),
                    sup.display(self.syms)
                )
            }
            Molecule::Frame { obj, specs } => {
                write!(f, "{}[", obj.display(self.syms))?;
                for (i, s) in specs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    let arrow = match s.arrow {
                        ArrowKind::Signature => "=>",
                        ArrowKind::Value => "->",
                    };
                    write!(
                        f,
                        "{} {arrow} {}",
                        s.method.display(self.syms),
                        s.value.display(self.syms)
                    )?;
                }
                write!(f, "]")
            }
            Molecule::Plain(a) => write!(f, "{}", a.display(self.syms)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kind_datalog::Interner;

    #[test]
    fn display_isa_and_subclass() {
        let mut syms = Interner::new();
        let n1 = Term::Const(syms.intern("n1"));
        let neuron = Term::Const(syms.intern("neuron"));
        let cell = Term::Const(syms.intern("cell"));
        let m = Molecule::IsA {
            obj: n1.clone(),
            class: neuron.clone(),
        };
        assert_eq!(m.display(&syms).to_string(), "n1 : neuron");
        let s = Molecule::SubClass {
            sub: neuron,
            sup: cell,
        };
        assert_eq!(s.display(&syms).to_string(), "neuron :: cell");
    }

    #[test]
    fn display_frame() {
        let mut syms = Interner::new();
        let n1 = Term::Const(syms.intern("n1"));
        let size = Term::Const(syms.intern("size"));
        let m = Molecule::Frame {
            obj: n1,
            specs: vec![MethodSpec {
                method: size,
                arrow: ArrowKind::Value,
                value: Term::Int(42),
            }],
        };
        assert_eq!(m.display(&syms).to_string(), "n1[size -> 42]");
    }
}
