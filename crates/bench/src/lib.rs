//! Shared benchmark workloads for the per-figure/table benches (see
//! DESIGN.md, "Experiment index") and the `report` binary that prints the
//! paper-style outputs.

use kind_core::{Anchor, Capability, Mediator, MemoryWrapper, Wrapper};
use kind_datalog::Engine;
use kind_dm::{figures, DomainMap, ExecMode};
use kind_flogic::FLogic;
use kind_gcm::{ConceptualModel, GcmBase, GcmValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A Datalog engine loaded with the transitive-closure program over a
/// random graph of `n` nodes and `edges` edges (seeded).
pub fn tc_workload(n: usize, edges: usize, seed: u64) -> Engine {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = Engine::new();
    e.load(
        "tc(X,Y) :- edge(X,Y).
         tc(X,Y) :- tc(X,Z), edge(Z,Y).",
    )
    .expect("program loads");
    let edge = e.sym("edge");
    for _ in 0..edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let ta = e.constant(&format!("n{a}"));
        let tb = e.constant(&format!("n{b}"));
        e.add_fact(edge, vec![ta, tb]).expect("fact");
    }
    e
}

/// An F-logic base with a class tree of the given depth/fanout and one
/// instance per leaf (exercises the Table 1 closure axioms).
pub fn class_tree_flogic(depth: usize, fanout: usize) -> FLogic {
    let mut fl = FLogic::new();
    let mut text = String::new();
    let mut frontier = vec!["root".to_string()];
    for d in 0..depth {
        let mut next = Vec::new();
        for parent in &frontier {
            for k in 0..fanout {
                let child = format!("{parent}_{d}{k}");
                text.push_str(&format!("{child} :: {parent}.\n"));
                next.push(child);
            }
        }
        frontier = next;
    }
    for (i, leaf) in frontier.iter().enumerate() {
        text.push_str(&format!("obj{i} : {leaf}.\n"));
    }
    fl.load(&text).expect("hierarchy loads");
    fl
}

/// A GCM base with a `leq` relation over `n` nodes that is *almost* a
/// partial order: `missing` transitive edges are dropped and one 2-cycle
/// is injected, so Example 2's denials have work to do.
pub fn corrupted_order(n: usize, missing: usize) -> GcmBase {
    let mut base = GcmBase::new();
    let mut cm = ConceptualModel::new("ORDER").relation("leq", &[("lo", "node"), ("hi", "node")]);
    for i in 0..n {
        cm = cm.instance(&format!("x{i}"), "node");
    }
    // A total order's full closure, minus some edges.
    let mut dropped = 0usize;
    for i in 0..n {
        for j in i..n {
            if j > i + 1 && dropped < missing {
                dropped += 1;
                continue;
            }
            cm = cm.relation_inst(
                "leq",
                &[
                    ("lo", GcmValue::Id(format!("x{i}"))),
                    ("hi", GcmValue::Id(format!("x{j}"))),
                ],
            );
        }
    }
    // An antisymmetry violation.
    cm = cm.relation_inst(
        "leq",
        &[
            ("lo", GcmValue::Id(format!("x{}", n - 1))),
            ("hi", GcmValue::Id("x0".to_string())),
        ],
    );
    base.apply(&cm).expect("CM applies");
    base.require_partial_order("node", "leq")
        .expect("constraint");
    base
}

/// A mediator over a generated anatomy of the given shape, with one
/// protein source whose measurements anchor at the anatomy's leaves —
/// the scaled Example 4 workload.
pub fn scaled_anatomy_mediator(
    depth: usize,
    fanout: usize,
    rows: usize,
    seed: u64,
) -> (Mediator, Vec<String>) {
    let dm = figures::anatomy_generated(depth, fanout, 1);
    let leaves = figures::anatomy_leaves(depth, fanout);
    let mut m = Mediator::new(dm, ExecMode::Assertion);
    m.register(measurement_wrapper("PROT", &leaves, rows, seed))
        .expect("source registers");
    (m, leaves)
}

/// A protein-amount wrapper anchored at the given location concepts.
pub fn measurement_wrapper(
    name: &str,
    locations: &[String],
    rows: usize,
    seed: u64,
) -> Arc<dyn Wrapper> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = MemoryWrapper::new(name);
    w.caps.push(Capability {
        class: "protein_amount".into(),
        pushable: vec!["location".into(), "protein_name".into(), "ion_bound".into()],
    });
    w.anchor_decls.push(Anchor::ByAttr {
        class: "protein_amount".into(),
        attr: "location".into(),
    });
    for i in 0..rows {
        let loc = &locations[rng.gen_range(0..locations.len())];
        w.add_row(
            "protein_amount",
            &format!("r{i}"),
            vec![
                ("protein_name", GcmValue::Id("Ryanodine_Receptor".into())),
                ("amount", GcmValue::Int(rng.gen_range(1..50))),
                ("location", GcmValue::Id(loc.clone())),
                ("ion_bound", GcmValue::Id("calcium".into())),
            ],
        );
    }
    Arc::new(w)
}

/// A domain map used by the closure benches: generated anatomy.
pub fn closure_map(depth: usize, fanout: usize) -> DomainMap {
    figures::anatomy_generated(depth, fanout, 2)
}

/// Decorates any wrapper with a fixed **real wall-clock** latency per
/// `query` call — the `parallel_materialize` bench group's stand-in for
/// a network round-trip. `MemoryWrapper` answers instantly and the
/// mediator's virtual clock burns no wall time, so without this
/// decorator the fetch plane would have nothing to overlap and every
/// thread count would measure the same.
pub struct LatencyWrapper {
    inner: Arc<dyn Wrapper>,
    delay: std::time::Duration,
}

impl LatencyWrapper {
    /// Wraps `inner`, adding `delay` of wall time to every query.
    pub fn new(inner: Arc<dyn Wrapper>, delay: std::time::Duration) -> Arc<Self> {
        Arc::new(LatencyWrapper { inner, delay })
    }
}

impl Wrapper for LatencyWrapper {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn formalism(&self) -> &str {
        self.inner.formalism()
    }
    fn export_cm(&self) -> kind_xml::Element {
        self.inner.export_cm()
    }
    fn capabilities(&self) -> Vec<Capability> {
        self.inner.capabilities()
    }
    fn templates(&self) -> Vec<kind_core::QueryTemplate> {
        self.inner.templates()
    }
    fn anchors(&self) -> Vec<Anchor> {
        self.inner.anchors()
    }
    fn dm_contribution(&self) -> String {
        self.inner.dm_contribution()
    }
    fn query(
        &self,
        q: &kind_core::SourceQuery,
    ) -> std::result::Result<Vec<kind_core::ObjectRow>, kind_core::SourceError> {
        std::thread::sleep(self.delay);
        self.inner.query(q)
    }

    // Stall-aware split-phase protocol: on the overlapped fetch plane
    // the delay is parked on the executor's timer wheel instead of
    // pinning a worker thread in the sleep above.
    fn stall_hint(&self) -> Option<std::time::Duration> {
        Some(self.delay)
    }

    fn submit(&self, _q: &kind_core::SourceQuery) -> kind_core::Submission {
        kind_core::Submission::Parked {
            stall: self.delay,
            ticket: 0,
        }
    }

    fn complete(
        &self,
        _ticket: u64,
        q: &kind_core::SourceQuery,
    ) -> std::result::Result<Vec<kind_core::ObjectRow>, kind_core::SourceError> {
        self.inner.query(q)
    }
}

/// A mediator federating `sources` independent object sources, each
/// behind a [`LatencyWrapper`] charging `delay` of real wall time per
/// query — the `parallel_materialize` workload. Every source exports its
/// own class (`c0`, `c1`, …) with `rows` rows anchored at Figure 1
/// concepts, so a full materialization issues exactly `sources` wrapper
/// queries and the serial fetch wall time is ~`sources × delay`.
pub fn latency_mediator(sources: usize, rows: usize, delay: std::time::Duration) -> Mediator {
    let anchors = ["Spine", "Shaft", "Neuron", "Dendrite"];
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    for s in 0..sources {
        let class = format!("c{s}");
        let mut w = MemoryWrapper::new(format!("S{s}"));
        w.caps.push(Capability {
            class: class.clone(),
            pushable: vec![],
        });
        w.anchor_decls.push(Anchor::Fixed {
            class: class.clone(),
            concept: anchors[s % anchors.len()].into(),
        });
        for i in 0..rows {
            w.add_row(
                &class,
                &format!("s{s}o{i}"),
                vec![("value", GcmValue::Int((s * rows + i) as i64))],
            );
        }
        m.register(LatencyWrapper::new(Arc::new(w), delay))
            .expect("latency source registers");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use kind_datalog::EvalOptions;

    #[test]
    fn tc_workload_runs() {
        let e = tc_workload(20, 40, 1);
        let m = e.run(&EvalOptions::default()).unwrap();
        assert!(m.stats.derived > 0);
    }

    #[test]
    fn class_tree_runs() {
        let fl = class_tree_flogic(3, 2);
        let m = fl.run().unwrap();
        assert_eq!(fl.instances_of(&m, "root").len(), 8);
    }

    #[test]
    fn corrupted_order_has_witnesses() {
        let base = corrupted_order(6, 3);
        let m = base.run().unwrap();
        let ws = base.witnesses(&m);
        assert!(ws.iter().any(|w| w.starts_with("wtc(")));
        assert!(ws.iter().any(|w| w.starts_with("was(")));
    }

    #[test]
    fn scaled_anatomy_builds() {
        let (m, leaves) = scaled_anatomy_mediator(2, 2, 10, 3);
        assert_eq!(leaves.len(), 4);
        assert_eq!(m.sources().len(), 1);
    }
}
