//! Regenerates, in one run, the qualitative outputs of every figure /
//! table / example in the paper, as plain-text tables. The output of this
//! binary is what EXPERIMENTS.md records as "measured".
//!
//! ```sh
//! cargo run -p kind-bench --bin report
//! ```

use kind_bench::corrupted_order;
use kind_core::{protein_distribution, run_section5, NeuroSchema, Section5Query};
use kind_dm::{figures, Resolved};
use kind_flogic::FLogic;
use kind_gcm::{GcmDecl, GcmValue};
use kind_sources::{build_scenario, ScenarioParams};
use std::time::Instant;

fn header(s: &str) {
    println!("\n==================================================================");
    println!("{s}");
    println!("==================================================================");
}

fn main() {
    figure1_report();
    table1_report();
    figure2_report();
    example2_report();
    figure3_report();
    section5_report();
}

fn figure1_report() {
    header("Figure 1 — domain map for SYNAPSE and NCMIR");
    let dm = figures::figure1();
    let r = Resolved::new(&dm);
    println!(
        "concepts: {}   edges: {}   roles: {:?}",
        dm.concepts().count(),
        dm.edge_count(),
        dm.roles()
    );
    println!("\nderived knowledge chain (the 'multiple worlds' bridge):");
    for (a, role, b) in [
        ("Purkinje_Cell", "has", "Spine"),
        ("Pyramidal_Cell", "has", "Spine"),
        ("Spine", "contains", "Ion_Binding_Protein"),
        ("Ion_Binding_Protein", "controls", "Ion_Activity"),
        ("Ion_Activity", "subprocess_of", "Neurotransmission"),
    ] {
        let na = dm.lookup(a).unwrap();
        let nb = dm.lookup(b).unwrap();
        let holds = r.dc_pairs(role).contains(&(na, nb));
        println!(
            "  {a:<22} --{role:>14}--> {b:<24} {}",
            if holds { "inferable" } else { "MISSING" }
        );
    }
    let dc = r.dc_pairs("has").len();
    let tc = r.tc_of_dc("has").len();
    println!("\ndc(has) = {dc} direct inferable links; materialized tc = {tc} links");
    // Scaling the 'wasteful' claim:
    println!("\n  anatomy size |  dc pairs | tc(dc) pairs | ratio");
    for (d, f) in [(3usize, 3usize), (4, 3), (5, 3)] {
        let big = figures::anatomy_generated(d, f, 2);
        let rr = Resolved::new(&big);
        let dcn = rr.dc_pairs("has_a").len();
        let tcn = rr.tc_of_dc("has_a").len();
        println!(
            "  {:>12} | {:>9} | {:>12} | {:>5.1}x",
            big.node_count(),
            dcn,
            tcn,
            tcn as f64 / dcn.max(1) as f64
        );
    }
}

fn table1_report() {
    header("Table 1 — GCM expressions in F-logic, with the closure axioms");
    let decls = [
        GcmDecl::Instance {
            obj: "x".into(),
            class: "c".into(),
        },
        GcmDecl::Subclass {
            sub: "c1".into(),
            sup: "c2".into(),
        },
        GcmDecl::Method {
            class: "c".into(),
            method: "m".into(),
            result: "cm".into(),
        },
        GcmDecl::MethodInst {
            obj: "x".into(),
            method: "m".into(),
            value: GcmValue::Id("y".into()),
        },
        GcmDecl::Relation {
            name: "r".into(),
            roles: vec![("a1".into(), "c1".into()), ("a2".into(), "c2".into())],
        },
        GcmDecl::RelationInst {
            name: "r".into(),
            values: vec![
                ("a1".into(), GcmValue::Id("x1".into())),
                ("a2".into(), GcmValue::Id("x2".into())),
            ],
        },
    ];
    println!("{:<34} | FL syntax", "GCM expression");
    println!("{:-<34}-+----------------------------", "");
    for d in &decls {
        let gcm = match d {
            GcmDecl::Instance { obj, class } => format!("instance({obj},{class})"),
            GcmDecl::Subclass { sub, sup } => format!("subclass({sub},{sup})"),
            GcmDecl::Method {
                class,
                method,
                result,
            } => format!("method({class},{method},{result})"),
            GcmDecl::MethodInst { obj, method, value } => {
                format!("methodinst({obj},{method},{value})")
            }
            GcmDecl::Relation { name, roles } => format!(
                "relation({name},{})",
                roles
                    .iter()
                    .map(|(a, c)| format!("{a}={c}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            GcmDecl::RelationInst { name, values } => format!(
                "relationinst({name},{})",
                values
                    .iter()
                    .map(|(a, v)| format!("{a}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            GcmDecl::Rule { .. } => "rule".into(),
        };
        println!("{gcm:<34} | {}", d.to_fl());
    }
    // Closure axiom timing on a growing hierarchy.
    println!("\n  classes | closure-eval facts | time");
    for depth in [4usize, 6, 8] {
        let fl = kind_bench::class_tree_flogic(depth, 2);
        let t = Instant::now();
        let m = fl.run().expect("runs");
        println!(
            "  {:>7} | {:>18} | {:?}",
            2usize.pow(depth as u32 + 1) - 1,
            m.facts.len(),
            t.elapsed()
        );
    }
}

fn figure2_report() {
    header("Figure 2 — the model-based mediator architecture at work");
    let params = ScenarioParams::default();
    let t = Instant::now();
    let mut m = build_scenario(&params);
    let reg_time = t.elapsed();
    println!("registered {} sources in {reg_time:?}:", m.sources().len());
    for s in m.sources() {
        println!(
            "  {:<10} formalism={:<5} classes={:?}",
            s.name,
            s.wrapper.formalism(),
            s.classes
        );
    }
    let t = Instant::now();
    let loaded = m.materialize_all().expect("materializes");
    let model_size = m.run().expect("evaluates").facts.len();
    println!(
        "\nmaterialized {loaded} rows; evaluated model: {model_size} facts in {:?}",
        t.elapsed()
    );
}

fn example2_report() {
    header("Examples 2 & 3 — integrity constraints with failure witnesses");
    let base = corrupted_order(8, 4);
    let t = Instant::now();
    let m = base.run().expect("runs");
    let ws = base.witnesses(&m);
    let (wrc, wtc, was): (Vec<_>, Vec<_>, Vec<_>) = (
        ws.iter().filter(|w| w.starts_with("wrc(")).collect(),
        ws.iter().filter(|w| w.starts_with("wtc(")).collect(),
        ws.iter().filter(|w| w.starts_with("was(")).collect(),
    );
    println!(
        "corrupted order (8 nodes, 4 missing transitive edges, 1 cycle), checked in {:?}:",
        t.elapsed()
    );
    println!("  reflexivity witnesses (wrc): {}", wrc.len());
    println!("  transitivity witnesses (wtc): {}", wtc.len());
    println!("  antisymmetry witnesses (was): {}", was.len());
    for w in ws.iter().take(3) {
        println!("    ic <- {w}");
    }
}

fn figure3_report() {
    header("Figure 3 — registering MyNeuron / MyDendrite");
    let base = figures::figure3_base();
    let full = figures::figure3();
    println!(
        "base map: {} concepts, {} edges",
        base.concepts().count(),
        base.edge_count()
    );
    println!(
        "after registration: {} concepts, {} edges",
        full.concepts().count(),
        full.edge_count()
    );
    let r = Resolved::new(&full);
    let mn = full.lookup("MyNeuron").unwrap();
    println!("\nderived for MyNeuron:");
    for target in ["Medium_Spiny_Neuron", "Spiny_Neuron", "Neuron"] {
        let t = full.lookup(target).unwrap();
        println!("  MyNeuron :: {target:<22} {}", r.is_subconcept(mn, t));
    }
    let gpe = full.lookup("Globus_Pallidus_External").unwrap();
    println!(
        "  MyNeuron --proj--> Globus_Pallidus_External (definite): {}",
        r.dc_pairs("proj").contains(&(mn, gpe))
    );
    // Nonmonotonic override at the instance level.
    let mut fl = FLogic::with_inheritance();
    fl.load("m1 : msn. m2 : msn. m1[proj -> gpe_only].")
        .unwrap();
    fl.load_datalog("default(msn, proj, pallidal_target).")
        .unwrap();
    let model = fl.run().unwrap();
    let mut e = fl.engine().clone();
    let v1 = e.query_model(&model, "val(m1, proj, V)").unwrap();
    let v2 = e.query_model(&model, "val(m2, proj, V)").unwrap();
    println!("\nnonmonotonic inheritance (defaults with override):");
    println!("  m1 (explicit) projects to: {}", e.show(&v1[0][2]));
    println!("  m2 (default)  projects to: {}", e.show(&v2[0][2]));
}

fn section5_report() {
    header("§5 — the KIND query plan");
    let schema = NeuroSchema::default();
    let q = Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    };
    println!("query: distribution of calcium-binding proteins in neurons");
    println!("       receiving parallel-fiber signals, in rat brains\n");
    let mut m = build_scenario(&ScenarioParams::default());
    let t = Instant::now();
    let trace = run_section5(&mut m, &schema, &q, true).expect("plan runs");
    let dt = t.elapsed();
    println!("step 1: receiving pairs {:?}", trace.step1_pairs);
    println!(
        "step 2: {} candidates -> {:?} (semantic index)",
        trace.candidate_sources, trace.selected_sources
    );
    println!(
        "step 3: {} rows retrieved, proteins {:?}",
        trace.step3_rows, trace.proteins
    );
    println!("step 4: lub root = {:?}", trace.root);
    println!("\n  {:<20} {:<20} {:>7}", "protein", "concept", "total");
    for d in &trace.distribution {
        println!("  {:<20} {:<20} {:>7}", d.protein, d.concept, d.total);
    }
    println!(
        "\nplan: {} wrapper queries, {} rows shipped, in {dt:?}",
        trace.stats.source_queries, trace.stats.rows_shipped
    );
    // Ablation table.
    println!("\nsource-selection ablation (rows shipped as noise sources grow):");
    println!("  noise sources | index ON queries/rows | index OFF queries/rows");
    for noise in [0usize, 4, 8, 16] {
        let params = ScenarioParams {
            noise_sources: noise,
            noise_rows: 100,
            ..Default::default()
        };
        let mut a = build_scenario(&params);
        let ta = run_section5(&mut a, &schema, &q, true).unwrap();
        let mut b = build_scenario(&params);
        let tb = run_section5(&mut b, &schema, &q, false).unwrap();
        println!(
            "  {:>13} | {:>9}/{:<11} | {:>10}/{}",
            noise,
            ta.stats.source_queries,
            ta.stats.rows_shipped,
            tb.stats.source_queries,
            tb.stats.rows_shipped
        );
    }
    // Example 4 demo call.
    println!("\nExample 4: protein_distribution(Ryanodine_Receptor, Cerebellum):");
    let dist = protein_distribution(&mut m, &schema, "Ryanodine_Receptor", "Cerebellum")
        .expect("view evaluates");
    for (concept, total) in &dist {
        println!("  {concept:<22} {total:>7}");
    }
}
