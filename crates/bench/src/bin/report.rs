//! Regenerates, in one run, the qualitative outputs of every figure /
//! table / example in the paper, as plain-text tables. The output of this
//! binary is what EXPERIMENTS.md records as "measured".
//!
//! ```sh
//! cargo run -p kind-bench --bin report
//! ```

use kind_bench::{closure_map, corrupted_order, latency_mediator};
use kind_core::{
    protein_distribution, run_section5, Fault, FetchRequest, Mediator, NeuroSchema, Section5Query,
    SourcePolicy,
};
use kind_datalog::EvalOptions;
use kind_dm::{figures, Resolved};
use kind_flogic::FLogic;
use kind_gcm::{GcmDecl, GcmValue};
use kind_server::client::{workload_request, Conn};
use kind_server::server::{spawn_server, ServerConfig};
use kind_server::wire::{obj, Json};
use kind_sources::{build_scenario, build_scenario_with_faults, ncmir_update_rows, ScenarioParams};
use std::hint::black_box;
use std::time::Instant;

fn header(s: &str) {
    println!("\n==================================================================");
    println!("{s}");
    println!("==================================================================");
}

fn main() {
    // `KIND_BENCH_FAST=1` is the CI smoke mode: skip the narrative
    // figure/table reports and emit only BENCH_PR10.json with reduced
    // iteration counts and workload sizes.
    let fast = std::env::var("KIND_BENCH_FAST").is_ok();
    // The incremental-publish group compares a sub-millisecond republish
    // against a multi-millisecond rebuild; measure it first, in a clean
    // process, so heap state left behind by the narrative reports (which
    // inflates the small side disproportionately) cannot skew the ratio.
    let inc = incremental_publish_bench(fast, &bench_params(fast));
    if !fast {
        figure1_report();
        table1_report();
        figure2_report();
        example2_report();
        figure3_report();
        section5_report();
    }
    bench_pr10_report(fast, inc);
}

/// Scenario sizing shared by the benchmark groups (reduced in CI smoke
/// mode).
fn bench_params(fast: bool) -> ScenarioParams {
    if fast {
        ScenarioParams {
            senselab_rows: 10,
            ncmir_rows: 15,
            synapse_rows: 10,
            noise_sources: 1,
            noise_rows: 5,
            ..Default::default()
        }
    } else {
        ScenarioParams::default()
    }
}

/// Minimum wall time of `f` over `iters` runs, in nanoseconds — the
/// noise-robust point estimate for micro-measurements.
fn min_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

/// PR benchmark report: the PR 2 evaluation-pipeline benches (each entry
/// pairs a baseline with the optimized path, minimum wall time of both),
/// the PR 3 concurrent-snapshot throughput group, the PR 4 parallel
/// fetch-plane group, the PR 5 parallel evaluate-plane group, the PR 6
/// tail-latency (hedged fetch) group, the PR 7 magic-sets ablation
/// group, the PR 8 incremental-publish (write plane) group, the PR 9
/// sustained-QPS group driving a live `kind-server` over TCP, the PR 10
/// overlapped-fetch group (scoped thread pool vs. the stall-parking
/// executor on a wide fan of slow sources), and `EvalStats` counters
/// from a representative warm model. Results go to stdout and
/// `BENCH_PR10.json`.
fn bench_pr10_report(fast: bool, inc: IncGroup) {
    header("PR 10 — overlapped fetch executor + serving/write planes");
    let iters = if fast { 5 } else { 25 };
    let (depth, fanout) = if fast { (4usize, 3usize) } else { (5, 3) };
    let mut rows: Vec<(&str, u128, u128)> = Vec::new();

    // Layer: domain-map closure memoization (fig1 scenarios). Baseline
    // recomputes closures from a fresh `Resolved`; optimized reuses the
    // warm memo tables every mediator query hits after the first.
    let dm = closure_map(depth, fanout);
    let root = dm.lookup("Nervous_System").unwrap();
    let warm = Resolved::new(&dm);
    warm.downward_closure("has_a", root);
    warm.dc_pairs("has_a");
    let base = min_ns(iters, || {
        let r = Resolved::new(&dm);
        black_box(r.downward_closure("has_a", root).len());
    });
    let opt = min_ns(iters, || {
        black_box(warm.downward_closure("has_a", root).len());
    });
    rows.push(("fig1_downward_closure_warm", base, opt));
    let base = min_ns(iters, || {
        let r = Resolved::new(&dm);
        black_box(r.dc_pairs("has_a").len());
    });
    let opt = min_ns(iters, || {
        black_box(warm.dc_pairs("has_a").len());
    });
    rows.push(("fig1_dc_pairs_warm", base, opt));

    // Layer: the full §5 plan. Baseline is the pre-PR configuration —
    // closures recomputed on every call (a fresh mediator per iteration,
    // construction excluded from the timed region) and the evaluation
    // layers ablated. Optimized is a repeat call on a warm mediator
    // whose memo tables are primed, with the default options.
    let schema = NeuroSchema::default();
    let q = Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    };
    let params = bench_params(fast);
    let plan_iters = iters.min(10);
    let ablated_opts = EvalOptions {
        join_reorder: false,
        use_index: false,
        base_cache: false,
        ..Default::default()
    };
    let base = (0..plan_iters)
        .map(|_| {
            let mut m = build_scenario(&params);
            m.set_eval_options(ablated_opts.clone());
            let t = Instant::now();
            black_box(run_section5(&mut m, &schema, &q, true).unwrap().step3_rows);
            t.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration");
    let mut m_on = build_scenario(&params);
    run_section5(&mut m_on, &schema, &q, true).unwrap();
    let opt = min_ns(plan_iters, || {
        black_box(
            run_section5(&mut m_on, &schema, &q, true)
                .unwrap()
                .step3_rows,
        );
    });
    rows.push(("sec5_query_plan_warm", base, opt));

    // Layer: the whole pipeline on repeated `answer()` — the defaults
    // (reorder + index + base cache) vs. all three ablated, i.e. the
    // evaluator this PR replaced. Both sides get one untimed priming
    // call, so the numbers are second-and-later query cost.
    let aq = r#"calcium_sites(P, L) :- X : protein_amount, X[protein_name -> P],
                X[location -> L], X[ion_bound -> "calcium"]."#;
    let mut m_ablated = build_scenario(&params);
    m_ablated.set_eval_options(ablated_opts);
    m_ablated.answer(aq).unwrap();
    let base = min_ns(plan_iters, || {
        black_box(m_ablated.answer(aq).unwrap().rows.len());
    });
    let mut m_warm = build_scenario(&params);
    m_warm.answer(aq).unwrap();
    let opt = min_ns(plan_iters, || {
        black_box(m_warm.answer(aq).unwrap().rows.len());
    });
    rows.push(("sec5_warm_answer", base, opt));

    println!(
        "\n  {:<28} | {:>14} | {:>14} | {:>8}",
        "bench", "baseline ns", "optimized ns", "speedup"
    );
    for (name, b, o) in &rows {
        println!(
            "  {:<28} | {:>14} | {:>14} | {:>7.2}x",
            name,
            b,
            o,
            *b as f64 / (*o).max(1) as f64
        );
    }

    let conc = snapshot_concurrency_bench(fast, &params);
    let one_worker_ns = conc.first().map(|c| c.snapshot_wall_ns).unwrap_or(1);
    println!(
        "\n  concurrent snapshot query throughput ({} core(s) available):",
        cores()
    );
    println!(
        "  {:>7} | {:>9} | {:>13} | {:>13} | {:>9} | {:>12} | {:>8}",
        "workers", "queries", "locked ns", "snapshot ns", "vs locked", "queries/s", "scaling"
    );
    for c in &conc {
        println!(
            "  {:>7} | {:>9} | {:>13} | {:>13} | {:>8.2}x | {:>12.0} | {:>7.2}x",
            c.workers,
            c.total_queries,
            c.locked_wall_ns,
            c.snapshot_wall_ns,
            c.locked_wall_ns as f64 / c.snapshot_wall_ns.max(1) as f64,
            c.total_queries as f64 / (c.snapshot_wall_ns as f64 / 1e9),
            one_worker_ns as f64 / c.snapshot_wall_ns.max(1) as f64
        );
    }

    let par = parallel_materialize_bench(fast);
    println!(
        "\n  parallel materialization ({} sources, {}ms simulated source latency, {} core(s)):",
        par.sources,
        par.delay_ms,
        cores()
    );
    println!(
        "  {:>14} | {:>13} | {:>8}",
        "fetch threads", "wall ns", "speedup"
    );
    let serial_ns = par.serial_wall_ns;
    println!("  {:>14} | {:>13} | {:>7.2}x", "serial", serial_ns, 1.0);
    for r in &par.rows {
        println!(
            "  {:>14} | {:>13} | {:>7.2}x",
            r.threads,
            r.wall_ns,
            serial_ns as f64 / r.wall_ns.max(1) as f64
        );
    }

    let over = overlapped_fetch_bench(fast);
    println!(
        "\n  overlapped fetch ({} sources × {}ms real stall each, {} core(s)):",
        over.sources,
        over.delay_ms,
        cores()
    );
    println!(
        "  {:>29} | {:>10} | {:>7} | {:>9} | {:>13} | {:>13} | {:>12} | {:>8}",
        "row",
        "mode",
        "workers",
        "in-flight",
        "p50 wall ns",
        "p99 wall ns",
        "peak threads",
        "speedup"
    );
    let scoped_p50 = over
        .rows
        .iter()
        .find(|r| r.name == "scoped_8_workers")
        .map(|r| r.p50_ns)
        .unwrap_or(1);
    for r in &over.rows {
        println!(
            "  {:>29} | {:>10} | {:>7} | {:>9} | {:>13} | {:>13} | {:>12} | {:>7.2}x",
            r.name,
            r.mode,
            if r.workers == 0 {
                "auto".to_string()
            } else {
                r.workers.to_string()
            },
            if r.in_flight == 0 {
                "∞".to_string()
            } else {
                r.in_flight.to_string()
            },
            r.p50_ns,
            r.p99_ns,
            r.peak_threads,
            scoped_p50 as f64 / r.p50_ns.max(1) as f64
        );
    }
    println!(
        "  stall parking overlaps {} sources on 8 workers: {:.2}x the scoped pool's wall",
        over.sources,
        over.overlap_speedup()
    );

    let pe = parallel_eval_bench(fast, &params);
    println!(
        "\n  parallel evaluation (warm §5 answer, {} core(s){}):",
        cores(),
        if cores() == 1 {
            ", 1-core host: flat scaling expected"
        } else {
            ""
        }
    );
    println!(
        "  {:>12} | {:>13} | {:>8}",
        "eval threads", "wall ns", "speedup"
    );
    println!(
        "  {:>12} | {:>13} | {:>7.2}x",
        "serial", pe.serial_wall_ns, 1.0
    );
    for r in &pe.rows {
        println!(
            "  {:>12} | {:>13} | {:>7.2}x",
            r.threads,
            r.wall_ns,
            pe.serial_wall_ns as f64 / r.wall_ns.max(1) as f64
        );
    }

    let magic = magic_sets_bench(fast, &params);
    println!("\n  magic-sets ablation (warm answer, rewrite off vs. on):");
    println!(
        "  {:>24} | {:>12} | {:>12} | {:>8} | {:>11} | {:>11} | {:>9} | {:>8}",
        "query", "off ns", "on ns", "speedup", "off derived", "on derived", "reduction", "declined"
    );
    for r in &magic {
        println!(
            "  {:>24} | {:>12} | {:>12} | {:>7.2}x | {:>11} | {:>11} | {:>8.2}x | {:>8}",
            r.name,
            r.off_ns,
            r.on_ns,
            r.off_ns as f64 / r.on_ns.max(1) as f64,
            r.off_derived,
            r.on_derived,
            r.off_derived as f64 / r.on_derived.max(1) as f64,
            r.magic_declined
        );
    }

    println!(
        "\n  incremental publish (one fresh row per iteration, {} iterations, measured process-clean before all other groups):",
        inc.iters
    );
    println!(
        "  {:>12} | {:>13} | {:>13} | {:>8}",
        "publish path", "p50 ns", "p99 ns", "speedup"
    );
    println!(
        "  {:>12} | {:>13} | {:>13} | {:>8}",
        "cold", inc.cold_p50_ns, inc.cold_p99_ns, ""
    );
    println!(
        "  {:>12} | {:>13} | {:>13} | {:>7.2}x",
        "incremental",
        inc.inc_p50_ns,
        inc.inc_p99_ns,
        inc.cold_p50_ns as f64 / inc.inc_p50_ns.max(1) as f64
    );
    println!(
        "  sustained update-while-reading: {} publishes + {} snapshot reads across {} readers in {:.1} ms ({:.0} publishes/s, {:.0} reads/s)",
        inc.sustained.publishes,
        inc.sustained.reads,
        inc.sustained.readers,
        inc.sustained.wall_ns as f64 / 1e6,
        inc.sustained.publishes as f64 / (inc.sustained.wall_ns as f64 / 1e9),
        inc.sustained.reads as f64 / (inc.sustained.wall_ns as f64 / 1e9)
    );

    let tail = tail_latency_bench(fast);
    println!(
        "\n  tail latency ({} runs, SlowTail {}ms at {}‰, hedge after {}ms, virtual time):",
        tail.runs, tail.delay_ms, tail.slow_per_mille, tail.hedge_after_ms
    );
    println!(
        "  {:>9} | {:>7} | {:>7} | {:>7} | {:>7}",
        "policy", "p50 ms", "p99 ms", "max ms", "hedged"
    );
    for (name, st) in [("no hedge", &tail.no_hedge), ("hedge", &tail.hedge)] {
        println!(
            "  {:>9} | {:>7} | {:>7} | {:>7} | {:>7}",
            name, st.p50_ms, st.p99_ms, st.max_ms, st.hedged
        );
    }

    let sq = server_qps_bench(fast);
    println!(
        "\n  server_qps (live kind-server over TCP, mixed workload, {} core(s){}):",
        cores(),
        if cores() == 1 {
            "; 1-core host: worker scaling is overlap only"
        } else {
            ""
        }
    );
    println!(
        "  {:>12} | {:>7} | {:>5} | {:>7} | {:>7} | {:>4} | {:>8} | {:>8} | {:>8} | {:>9} | {:>9}",
        "row",
        "workers",
        "queue",
        "clients",
        "ok",
        "shed",
        "qps",
        "p50 µs",
        "p99 µs",
        "pre p99",
        "post p99"
    );
    for r in &sq.rows {
        println!(
            "  {:>12} | {:>7} | {:>5} | {:>7} | {:>7} | {:>4} | {:>8.0} | {:>8} | {:>8} | {:>9} | {:>9}",
            r.name,
            r.workers,
            r.queue_depth,
            r.clients,
            r.ok,
            r.shed,
            r.qps(),
            r.p50_us,
            r.p99_us,
            r.pre_publish_p99_us,
            r.post_publish_p99_us
        );
    }
    if let Some(ratio) = sq.overload_p99_ratio() {
        println!(
            "  overload: bounded queue kept admitted p99 at {:.2}x the uncontended p99",
            ratio
        );
    }

    let json = render_bench_json(
        fast,
        iters,
        &rows,
        &conc,
        &par,
        &over,
        &pe,
        &tail,
        &magic,
        &inc,
        &sq,
        &mut m_warm,
    );
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    println!("\nwrote BENCH_PR10.json");
}

/// One `server_qps` measurement: a freshly spawned `kind-server` (its
/// own scenario mediator, worker pool, and admission queue) driven over
/// real TCP by `clients` threads issuing the mixed client workload.
struct QpsRow {
    name: &'static str,
    workers: usize,
    queue_depth: usize,
    clients: usize,
    ok: u64,
    shed: u64,
    deadline: u64,
    publishes: u64,
    wall_ns: u128,
    p50_us: u128,
    p99_us: u128,
    /// p99 of requests served from the startup epoch (0 when the row
    /// runs without mid-run publishes).
    pre_publish_p99_us: u128,
    /// p99 of requests served from a republished epoch — the
    /// republish-while-serving evidence (0 when no publishes ran).
    post_publish_p99_us: u128,
}

impl QpsRow {
    fn qps(&self) -> f64 {
        self.ok as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// The PR 9 `server_qps` group: sustained rows at two worker counts
/// (each with a mid-run republish), an uncontended reference row, and a
/// deliberately overloaded row with a queue depth of 1.
struct ServerQpsGroup {
    rows: Vec<QpsRow>,
}

impl ServerQpsGroup {
    /// Admitted-p99 under overload over the uncontended p99 — the
    /// bounded-queue claim is that shedding keeps this small (≤ 2x).
    fn overload_p99_ratio(&self) -> Option<f64> {
        let base = self.rows.iter().find(|r| r.name == "uncontended")?;
        let over = self.rows.iter().find(|r| r.name == "overload")?;
        Some(over.p99_us as f64 / base.p99_us.max(1) as f64)
    }
}

/// Drives one spawned server with `clients` threads × `per_client`
/// requests of the mixed workload; when `publishes > 0`, a publisher
/// connection republishes that many single-row batches once half the
/// requests have completed, and latency samples are split by the epoch
/// each response reports.
fn server_qps_run(
    name: &'static str,
    scenario: &ScenarioParams,
    workers: usize,
    queue_depth: usize,
    clients: usize,
    per_client: usize,
    publishes: u64,
) -> QpsRow {
    use std::sync::atomic::{AtomicU64, Ordering};

    let handle = spawn_server(ServerConfig {
        workers,
        queue_depth,
        scenario: scenario.clone(),
        ..ServerConfig::default()
    })
    .expect("server spawns");
    let addr = handle.addr().to_string();

    let completed = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let deadline = AtomicU64::new(0);
    let total = (clients * per_client) as u64;
    // (latency µs, epoch) per successful response, merged across threads.
    let samples: std::sync::Mutex<Vec<(u128, u64)>> = std::sync::Mutex::new(Vec::new());

    let wall = Instant::now();
    std::thread::scope(|s| {
        for t in 0..clients {
            let (addr, completed, shed, deadline, samples) =
                (&addr, &completed, &shed, &deadline, &samples);
            s.spawn(move || {
                let mut conn = Conn::connect(addr).expect("client connects");
                let mut local: Vec<(u128, u64)> = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let req = workload_request(t * 7 + i, 0);
                    let t0 = Instant::now();
                    let resp = conn.request(req).expect("request round-trips");
                    let lat_us = t0.elapsed().as_micros();
                    completed.fetch_add(1, Ordering::Relaxed);
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        let epoch = resp.get("epoch").and_then(Json::as_u64).unwrap_or(0);
                        local.push((lat_us, epoch));
                    } else {
                        match resp.get("error").and_then(Json::as_str) {
                            Some("overloaded") => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                // Honor the backpressure signal briefly so
                                // the row measures shedding, not a retry
                                // storm.
                                std::thread::sleep(std::time::Duration::from_micros(500));
                            }
                            _ => {
                                deadline.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                samples.lock().unwrap().append(&mut local);
            });
        }
        if publishes > 0 {
            let (addr, completed) = (&addr, &completed);
            s.spawn(move || {
                // Republish while serving: wait for the run to be half
                // done, then push fresh NCMIR rows through the writer
                // thread, bumping the hub epoch under live traffic.
                while completed.load(Ordering::Relaxed) < total / 2 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let mut conn = Conn::connect(addr).expect("publisher connects");
                for _ in 0..publishes {
                    let resp = conn
                        .request(obj([("op", Json::str("publish")), ("rows", Json::int(1))]))
                        .expect("publish round-trips");
                    assert_eq!(
                        resp.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "mid-run publish failed"
                    );
                }
            });
        }
    });
    let wall_ns = wall.elapsed().as_nanos();
    handle.shutdown();

    let mut samples = samples.into_inner().unwrap();
    samples.sort_unstable_by_key(|&(lat, _)| lat);
    let ok = samples.len() as u64;
    let lats: Vec<u128> = samples.iter().map(|&(lat, _)| lat).collect();
    let base_epoch = samples.iter().map(|&(_, e)| e).min().unwrap_or(0);
    let pre: Vec<u128> = samples
        .iter()
        .filter(|&&(_, e)| e == base_epoch)
        .map(|&(lat, _)| lat)
        .collect();
    let post: Vec<u128> = samples
        .iter()
        .filter(|&&(_, e)| e > base_epoch)
        .map(|&(lat, _)| lat)
        .collect();
    let pct = |v: &[u128], p: usize| if v.is_empty() { 0 } else { percentile(v, p) };
    QpsRow {
        name,
        workers,
        queue_depth,
        clients,
        ok,
        shed: shed.load(Ordering::Relaxed),
        deadline: deadline.load(Ordering::Relaxed),
        publishes,
        wall_ns,
        p50_us: pct(&lats, 50),
        p99_us: pct(&lats, 99),
        pre_publish_p99_us: if publishes > 0 { pct(&pre, 99) } else { 0 },
        post_publish_p99_us: pct(&post, 99),
    }
}

/// The PR 9 tentpole measurement: sustained QPS against a live
/// `kind-server` binary plane (in-process spawn, real TCP loopback).
/// Two worker counts each absorb a mid-run republish — the epoch-split
/// p99 columns show serving continued across the swap with no cliff —
/// and the `overload` row sheds on a queue depth of 1, showing bounded
/// admission keeps the p99 of *admitted* requests near the uncontended
/// baseline while excess load gets a typed `overloaded` response.
fn server_qps_bench(fast: bool) -> ServerQpsGroup {
    let scenario = bench_params(fast);
    let per_client = if fast { 25 } else { 100 };
    let rows = vec![
        server_qps_run("uncontended", &scenario, 1, 64, 1, per_client, 0),
        server_qps_run("1_worker", &scenario, 1, 64, 2, per_client, 2),
        server_qps_run("2_workers", &scenario, 2, 64, 4, per_client, 2),
        server_qps_run("overload", &scenario, 1, 1, 4, per_client, 0),
    ];
    ServerQpsGroup { rows }
}

/// Sustained write-while-read throughput: one writer loading rows and
/// republishing snapshots while reader threads drain queries from the
/// latest published snapshot, lock-free on the query hot path.
struct SustainedStats {
    readers: usize,
    publishes: usize,
    reads: usize,
    wall_ns: u128,
}

/// The `incremental_publish` group's results: per-iteration republish
/// latency percentiles for the staged delta plane vs. the cold
/// invalidate-and-rebuild baseline, plus the sustained mixed workload.
struct IncGroup {
    iters: usize,
    inc_p50_ns: u128,
    inc_p99_ns: u128,
    cold_p50_ns: u128,
    cold_p99_ns: u128,
    sustained: SustainedStats,
}

fn percentile(sorted: &[u128], p: usize) -> u128 {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// The PR 8 tentpole measurement. Incremental side: a warm, fully
/// materialized §5 scenario absorbs one fresh NCMIR row per iteration
/// and republishes — `publish()` folds the staged delta into the cached
/// model via seeded delta rounds, so the timed region is proportional to
/// the delta's cone, not the knowledge base. Cold side: the
/// pre-write-plane behavior for the same event — every mutation
/// invalidates, so each republish rebuilds the program, refetches every
/// source, and reevaluates from scratch.
fn incremental_publish_bench(fast: bool, params: &ScenarioParams) -> IncGroup {
    let iters = if fast { 8 } else { 30 };
    let mut m = build_scenario(params);
    m.materialize_all().expect("scenario materializes");
    m.publish().expect("initial publish");
    let pool = ncmir_update_rows(params.seed, 1, iters);
    let mut inc_ns: Vec<u128> = Vec::with_capacity(iters);
    for row in &pool {
        m.load_row("NCMIR", "protein_amount", row).expect("loads");
        let t = Instant::now();
        black_box(m.publish().expect("incremental publish").facts.len());
        inc_ns.push(t.elapsed().as_nanos());
    }
    let mut c = build_scenario(params);
    c.materialize_all().expect("scenario materializes");
    c.publish().expect("initial publish");
    let cold_iters = if fast { 3 } else { 10 };
    let cold_pool = ncmir_update_rows(params.seed, 2, cold_iters);
    let mut cold_ns: Vec<u128> = Vec::with_capacity(cold_iters);
    for row in &cold_pool {
        c.load_row("NCMIR", "protein_amount", row).expect("loads");
        let t = Instant::now();
        c.invalidate();
        c.materialize_all().expect("rematerializes");
        black_box(c.publish().expect("cold publish").facts.len());
        cold_ns.push(t.elapsed().as_nanos());
    }
    inc_ns.sort_unstable();
    cold_ns.sort_unstable();
    IncGroup {
        iters,
        inc_p50_ns: percentile(&inc_ns, 50),
        inc_p99_ns: percentile(&inc_ns, 99),
        cold_p50_ns: percentile(&cold_ns, 50),
        cold_p99_ns: percentile(&cold_ns, 99),
        sustained: sustained_update_read_bench(fast, params),
    }
}

/// Readers drain FL queries from the most recently published snapshot,
/// loaded epoch-pinned from the mediator's `SnapshotHub` (the same slot
/// `kind-server` serves from), while the writer keeps loading rows and
/// republishing through the hub — the structurally-shared snapshot
/// republish makes each install cheap, and superseded epochs keep
/// serving their frozen state until the last reader drops them.
fn sustained_update_read_bench(fast: bool, params: &ScenarioParams) -> SustainedStats {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let readers = 4usize;
    let publishes = if fast { 10 } else { 40 };
    let mut m = build_scenario(params);
    m.materialize_all().expect("scenario materializes");
    let hub = m.hub();
    m.publish_snapshot().expect("initial publish");
    let done = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    let pool = ncmir_update_rows(params.seed, 3, publishes);
    let patterns = ["X : protein_amount", "anchored(S, C)"];
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..readers {
            let (hub, done, reads) = (&hub, &done, &reads);
            s.spawn(move || {
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let snap = hub.load().expect("hub seeded");
                    black_box(
                        snap.query_fl(patterns[(w + i) % patterns.len()])
                            .expect("snapshot query")
                            .len(),
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        for row in &pool {
            m.load_row("NCMIR", "protein_amount", row).expect("loads");
            m.publish().expect("republish through the hub");
        }
        done.store(true, Ordering::Relaxed);
    });
    SustainedStats {
        readers,
        publishes: pool.len(),
        reads: reads.into_inner(),
        wall_ns: t.elapsed().as_nanos(),
    }
}

/// One magic-sets ablation row: the same goal-directed query with the
/// demand transformation off vs. on — wall clock and derived-fact counts.
struct MagicRow {
    name: &'static str,
    off_ns: u128,
    on_ns: u128,
    off_derived: usize,
    on_derived: usize,
    magic_fired: bool,
    /// Whether the cost model declined the rewrite (demand-cone estimate
    /// at or above the decline ratio), falling back to the plain plan.
    magic_declined: bool,
}

/// A §5-style FL knowledge base shaped like Figure 1's taxonomy: a
/// forest of `subtrees` class chains of `depth` levels under one root,
/// with `per_class` measured objects at every class — the stratified
/// fragment (CORE axioms only) where the magic rewrite applies. Full
/// materialization derives every object's upward instance cone across
/// all subtrees; a query anchored at one subtree's root only needs that
/// subtree's cone.
fn magic_flogic_fixture(subtrees: usize, depth: usize, per_class: usize) -> FLogic {
    let mut fl = FLogic::new();
    let mut text = String::new();
    for s in 0..subtrees {
        text.push_str(&format!("t{s}_0 :: thing.\n"));
        for l in 1..depth {
            text.push_str(&format!("t{s}_{l} :: t{s}_{}.\n", l - 1));
        }
        for l in 0..depth {
            for j in 0..per_class {
                text.push_str(&format!("o_{s}_{l}_{j} : t{s}_{l}.\n"));
                text.push_str(&format!(
                    "o_{s}_{l}_{j}[amount -> {}].\n",
                    (s * 13 + l * 29 + j * 17) % 100
                ));
            }
        }
    }
    fl.load(&text).expect("fixture loads");
    fl
}

/// Magic-sets ablation. The first two rows run on the stratified FL
/// fixture through `run_for_query` (the engine path `answer()` takes):
/// the *selective* query anchors at one subtree's root class, so demand
/// covers only that subtree's instance cone; the *wide* query anchors at
/// the forest root, whose cone is the whole closure — the honest no-win
/// case. The last row is the warm mediator `answer()` on the full
/// scenario: its skolem guards need the well-founded evaluator, so the
/// rewrite declines (`magic_fired` false) and the numbers show the
/// fallback costs nothing.
fn magic_sets_bench(fast: bool, params: &ScenarioParams) -> Vec<MagicRow> {
    use kind_datalog::{Atom, Term, Var};
    let iters = if fast { 3 } else { 10 };
    let (subtrees, depth, per_class) = if fast { (6, 4, 3) } else { (12, 6, 6) };
    let mut out = Vec::new();
    for (name, class) in [
        ("magic_selective_anchor", "t0_0".to_string()),
        ("magic_wide_closure", "thing".to_string()),
    ] {
        let view = format!("hot(X, A) :- X : {class}, X[amount -> A], A >= 50.");
        let run = |magic: bool| {
            let mut fl = magic_flogic_fixture(subtrees, depth, per_class);
            fl.load(&view).expect("view loads");
            let goal = Atom::new(
                fl.engine().lookup("hot").expect("view head interned"),
                vec![Term::Var(Var(0)), Term::Var(Var(1))],
            );
            let opts = EvalOptions {
                magic_sets: magic,
                ..Default::default()
            };
            let wall = min_ns(iters, || {
                black_box(fl.run_for_query(&goal, &opts).unwrap().stats.derived);
            });
            let m = fl.run_for_query(&goal, &opts).unwrap();
            (
                wall,
                m.stats.derived,
                m.profile.magic_fired,
                m.profile.magic_declined,
            )
        };
        let (off_ns, off_derived, _, _) = run(false);
        let (on_ns, on_derived, magic_fired, magic_declined) = run(true);
        out.push(MagicRow {
            name,
            off_ns,
            on_ns,
            off_derived,
            on_derived,
            magic_fired,
            magic_declined,
        });
    }
    // Mediator answer on the WFS scenario: the rewrite must decline and
    // cost nothing. Both sides get one untimed priming call, so the
    // numbers are second-and-later (base-cache warm) query cost.
    let aq = r#"calcium_at_spine(P, A) :- X : protein_amount, X[protein_name -> P],
        X[amount -> A], X[ion_bound -> "calcium"], X[location -> "Purkinje_Spine"]."#;
    let run = |magic: bool| {
        let mut m = build_scenario(params);
        m.set_magic_sets(magic);
        m.answer(aq).unwrap();
        let wall = min_ns(iters, || {
            black_box(m.answer(aq).unwrap().rows.len());
        });
        let ans = m.answer(aq).unwrap();
        (wall, ans.stats.derived, ans.magic_fired)
    };
    let (off_ns, off_derived, _) = run(false);
    let (on_ns, on_derived, magic_fired) = run(true);
    out.push(MagicRow {
        name: "magic_answer_wfs_fallback",
        off_ns,
        on_ns,
        off_derived,
        on_derived,
        magic_fired,
        // The WFS path refuses the rewrite structurally (skolem guards
        // need the well-founded evaluator), not via the cost model.
        magic_declined: false,
    });
    out
}

/// Percentiles of the per-query critical path (virtual ms) for one
/// deadline-plane policy in [`tail_latency_bench`].
struct TailStats {
    p50_ms: u64,
    p99_ms: u64,
    max_ms: u64,
    hedged: usize,
}

/// The `tail_latency` group: the same seeded `SlowTail` schedule replayed
/// against SENSELAB with hedging off and on.
struct TailGroup {
    runs: usize,
    delay_ms: u64,
    slow_per_mille: u16,
    hedge_after_ms: u64,
    no_hedge: TailStats,
    hedge: TailStats,
}

/// Repeated `answer()` calls against a source with a seeded slow tail
/// (most fetches are instant, a small fraction stall for `delay_ms`),
/// measured in **virtual** milliseconds via `AnswerReport::elapsed_ms` —
/// so the percentiles are deterministic and machine-independent. The
/// hedged side races one backup attempt after `hedge_after_ms`; because
/// the backup re-rolls the seeded tail, a stalled primary is almost
/// always rescued and the p99 collapses toward the hedge threshold.
fn tail_latency_bench(fast: bool) -> TailGroup {
    let runs = if fast { 60 } else { 200 };
    let delay_ms = 500u64;
    let slow_per_mille = 50u16;
    let hedge_after_ms = 50u64;
    let tq = r#"nt_used(N) :- X : neurotransmission, X[neurotransmitter -> N]."#;
    let measure = |hedge: bool| -> TailStats {
        let (mut m, _inj) = build_scenario_with_faults(
            &ScenarioParams::default(),
            vec![Fault::SlowTail {
                seed: 2001,
                delay_ms,
                slow_per_mille,
            }],
        );
        if hedge {
            m.set_source_policy(
                "SENSELAB",
                SourcePolicy::with_hedge_after_ms(hedge_after_ms),
            );
        }
        let mut elapsed: Vec<u64> = Vec::with_capacity(runs);
        let mut hedged = 0usize;
        for _ in 0..runs {
            let ans = m.answer(tq).expect("tail query runs");
            elapsed.push(ans.report.elapsed_ms);
            hedged += ans.report.source("SENSELAB").map_or(0, |s| s.hedged);
        }
        elapsed.sort_unstable();
        TailStats {
            p50_ms: elapsed[runs / 2],
            p99_ms: elapsed[runs * 99 / 100],
            max_ms: *elapsed.last().expect("at least one run"),
            hedged,
        }
    };
    TailGroup {
        runs,
        delay_ms,
        slow_per_mille,
        hedge_after_ms,
        no_hedge: measure(false),
        hedge: measure(true),
    }
}

/// The evaluate-plane group's results: the §5 warm `answer()` workload —
/// ISSUE 5's hot path, the time spent entirely inside the semi-naive
/// fixpoint once fetching and the base cache are warm — measured with
/// the serial engine and again at 1/2/4/8 evaluate-plane threads.
struct ParEvalGroup {
    serial_wall_ns: u128,
    rows: Vec<ParRow>,
}

/// The `parallel_eval` group: one primed mediator per thread budget (so
/// every measurement is a warm second-and-later query), identical row
/// counts asserted across budgets (the bit-identity contract's cheap
/// observable — the property suite checks full equality). Speedups are
/// bounded by [`cores`], which the JSON records: on a single-core host
/// the expected shape is flat (graceful no-regression), on a multi-core
/// host the fixpoint's partitioned rounds scale.
fn parallel_eval_bench(fast: bool, params: &ScenarioParams) -> ParEvalGroup {
    let iters = if fast { 3 } else { 10 };
    let aq = r#"calcium_sites(P, L) :- X : protein_amount, X[protein_name -> P],
                X[location -> L], X[ion_bound -> "calcium"]."#;
    let measure = |threads: usize| -> (u128, usize) {
        let mut m = build_scenario(params);
        m.set_eval_threads(threads);
        let expected = m.answer(aq).expect("priming answer").rows.len();
        let wall = min_ns(iters, || {
            black_box(m.answer(aq).expect("warm answer").rows.len());
        });
        (wall, expected)
    };
    let (serial_wall_ns, serial_rows) = measure(1);
    let rows = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let (wall_ns, n) = measure(threads);
            assert_eq!(n, serial_rows, "row count diverged at {threads} threads");
            ParRow { threads, wall_ns }
        })
        .collect();
    ParEvalGroup {
        serial_wall_ns,
        rows,
    }
}

/// One row of the fetch-plane group: full materialization wall time with
/// the given worker-thread budget.
struct ParRow {
    threads: usize,
    wall_ns: u128,
}

/// The fetch-plane group's results: the serial per-request loop (the
/// pre-fetch-plane code path, one `Federation::fetch` per request) plus
/// `fetch_parallel` at 1/2/4/8 worker threads.
struct ParGroup {
    sources: usize,
    delay_ms: u64,
    serial_wall_ns: u128,
    rows: Vec<ParRow>,
}

/// The `parallel_materialize` group: every source sits behind a
/// [`kind_bench::LatencyWrapper`] charging real wall time per query, so
/// concurrent fetching shows up as wall-clock speedup while the results
/// stay bit-identical (asserted here on every configuration's loaded-row
/// count). The serial baseline drives one guarded `Federation::fetch`
/// per request — exactly what `materialize_all` did before the fetch
/// plane existed.
fn parallel_materialize_bench(fast: bool) -> ParGroup {
    let sources = 8usize;
    let (rows, delay_ms, iters) = if fast {
        (4usize, 2u64, 2usize)
    } else {
        (12, 5, 3)
    };
    let delay = std::time::Duration::from_millis(delay_ms);
    let requests = |m: &Mediator| -> Vec<FetchRequest> {
        m.sources()
            .iter()
            .flat_map(|s| {
                s.classes
                    .iter()
                    .map(|c| FetchRequest::scan(s.name.as_str(), c.as_str()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    let expected = sources * rows;
    // Serial baseline: the per-request loop, one guarded fetch at a time.
    let serial_wall_ns = (0..iters)
        .map(|_| {
            let mut m = latency_mediator(sources, rows, delay);
            let reqs = requests(&m);
            let t = Instant::now();
            let mut total = 0usize;
            for r in &reqs {
                total += m
                    .federation_mut()
                    .fetch(&r.source, &r.query)
                    .expect("serial fetch")
                    .len();
            }
            let dt = t.elapsed().as_nanos();
            assert_eq!(total, expected);
            dt
        })
        .min()
        .expect("at least one iteration");
    let rows_out = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let wall_ns = (0..iters)
                .map(|_| {
                    let mut m = latency_mediator(sources, rows, delay);
                    m.federation_mut().set_fetch_threads(threads);
                    let reqs = requests(&m);
                    let t = Instant::now();
                    let set = m
                        .federation_mut()
                        .fetch_parallel(&reqs)
                        .expect("parallel fetch");
                    let dt = t.elapsed().as_nanos();
                    assert_eq!(set.total_rows(), expected);
                    assert!(set.is_complete());
                    dt
                })
                .min()
                .expect("at least one iteration");
            ParRow { threads, wall_ns }
        })
        .collect();
    ParGroup {
        sources,
        delay_ms,
        serial_wall_ns,
        rows: rows_out,
    }
}

/// One row of the overlapped-fetch group: p50/p99 wall time over the
/// iterations plus the peak number of live fetch worker threads.
struct OverRow {
    name: &'static str,
    mode: &'static str,
    workers: usize,
    in_flight: usize,
    p50_ns: u128,
    p99_ns: u128,
    peak_threads: usize,
}

/// The PR 10 tentpole measurement: a wide fan of stall-bound sources
/// fetched through the scoped thread pool vs. the overlapped executor.
struct OverlappedGroup {
    sources: usize,
    delay_ms: u64,
    rows_per_source: usize,
    rows: Vec<OverRow>,
}

impl OverlappedGroup {
    /// Wall-time speedup of the wide-open overlapped row over the scoped
    /// row at the same worker count — the headline number.
    fn overlap_speedup(&self) -> f64 {
        let scoped = self.rows.iter().find(|r| r.name == "scoped_8_workers");
        let over = self
            .rows
            .iter()
            .find(|r| r.name == "overlapped_8_workers_wide");
        match (scoped, over) {
            (Some(s), Some(o)) => s.p50_ns as f64 / o.p50_ns.max(1) as f64,
            _ => 0.0,
        }
    }
}

/// The `overlapped_fetch` group: 64 sources × 20ms of real stall each
/// (16 × 5ms in fast mode), all latency-bound. The scoped plane at 8
/// workers blocks a thread per in-flight stall, so it needs
/// `sources / workers` serial waves; the overlapped executor parks every
/// stall on the timer wheel, so 8 workers overlap as many stalls as the
/// in-flight cap admits. The `scoped_auto` contrast row is the
/// stall-aware sizing default: thread-per-source — same wall time as
/// overlapped, but at `sources` threads instead of `workers`.
fn overlapped_fetch_bench(fast: bool) -> OverlappedGroup {
    let (sources, delay_ms, iters) = if fast {
        (16usize, 5u64, 3usize)
    } else {
        (64, 20, 5)
    };
    let delay = std::time::Duration::from_millis(delay_ms);
    let rows_per_source = 2usize;
    let expected = sources * rows_per_source;
    let measure = |name: &'static str,
                   mode: kind_core::FetchMode,
                   workers: usize,
                   in_flight: usize|
     -> OverRow {
        let mut m = latency_mediator(sources, rows_per_source, delay);
        m.set_fetch_mode(mode);
        m.federation_mut().set_fetch_threads(workers);
        m.set_in_flight_limit(in_flight);
        let reqs: Vec<FetchRequest> = m
            .sources()
            .iter()
            .flat_map(|s| {
                s.classes
                    .iter()
                    .map(|c| FetchRequest::scan(s.name.as_str(), c.as_str()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut walls: Vec<u128> = Vec::with_capacity(iters);
        let mut peak = 0usize;
        for _ in 0..iters {
            m.federation_mut().reset_peak_fetch_threads();
            let t = Instant::now();
            let set = m
                .federation_mut()
                .fetch_parallel(&reqs)
                .expect("overlapped-group fetch");
            walls.push(t.elapsed().as_nanos());
            assert_eq!(set.total_rows(), expected);
            assert!(set.is_complete());
            peak = peak.max(m.federation().peak_fetch_threads());
        }
        walls.sort_unstable();
        OverRow {
            name,
            mode: match mode {
                kind_core::FetchMode::ScopedThreads => "scoped",
                kind_core::FetchMode::Overlapped => "overlapped",
            },
            workers,
            in_flight,
            p50_ns: percentile(&walls, 50),
            p99_ns: percentile(&walls, 99),
            peak_threads: peak,
        }
    };
    let rows = vec![
        measure(
            "scoped_8_workers",
            kind_core::FetchMode::ScopedThreads,
            8,
            0,
        ),
        measure(
            "overlapped_8_workers_if8",
            kind_core::FetchMode::Overlapped,
            8,
            8,
        ),
        measure(
            "overlapped_8_workers_wide",
            kind_core::FetchMode::Overlapped,
            8,
            sources,
        ),
        measure(
            "scoped_auto_thread_per_source",
            kind_core::FetchMode::ScopedThreads,
            0,
            0,
        ),
    ];
    OverlappedGroup {
        sources,
        delay_ms,
        rows_per_source,
        rows,
    }
}

/// One row of the concurrent-throughput group: a fixed batch of mixed FL
/// queries split across `workers` threads, drained two ways — every
/// thread serializing through a `Mutex<Mediator>` (the design a
/// non-`Send + Sync` stack forces), and every thread reading one shared
/// [`kind_core::QuerySnapshot`] lock-free.
struct ConcRow {
    workers: usize,
    total_queries: usize,
    /// Minimum wall time through the mutex-guarded mediator, in ns.
    locked_wall_ns: u128,
    /// Minimum wall time through the shared snapshot, in ns.
    snapshot_wall_ns: u128,
}

/// The cores this process may actually run on (what scaling is bounded
/// by — recorded in the JSON so the numbers are interpretable).
fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Multi-threaded snapshot query throughput (1/2/4/8 workers). The batch
/// size is constant across worker counts, so `wall(1) / wall(w)` is the
/// scaling factor (bounded by [`cores`]); the mutex-guarded mediator
/// serving the identical workload is the contended baseline, so the
/// lock-free hot path's advantage is visible even on a single core.
fn snapshot_concurrency_bench(fast: bool, params: &ScenarioParams) -> Vec<ConcRow> {
    let mut m = build_scenario(params);
    m.materialize_all().expect("scenario materializes");
    let hub = m.hub();
    m.publish_snapshot().expect("snapshot publishes");
    // Without snapshots, concurrent callers would share the mediator
    // itself behind a lock; its warm query path (cached model) is the
    // honest comparison point.
    let locked = std::sync::Mutex::new(m);
    // A read mix over the materialized scenario: instance scans, a
    // derived-view probe, and domain-map reachability.
    let patterns = [
        "X : protein_amount",
        "X : neurotransmission",
        "anchored(S, C)",
        r#"isa_star(C, "Neuron_Compartment")"#,
    ];
    let (total, repeats) = if fast { (240usize, 2usize) } else { (2400, 5) };
    let run_batch = |workers: usize, per: usize, use_snapshot: bool| -> u128 {
        (0..repeats)
            .map(|_| {
                let t = Instant::now();
                std::thread::scope(|s| {
                    for w in 0..workers {
                        let hub = &hub;
                        let locked = &locked;
                        s.spawn(move || {
                            // The serving pattern: each worker pins the
                            // current hub epoch once per batch.
                            let snap = hub.load().expect("hub seeded");
                            for i in 0..per {
                                let p = patterns[(w + i) % patterns.len()];
                                let n = if use_snapshot {
                                    snap.query_fl(p).expect("query runs").len()
                                } else {
                                    locked
                                        .lock()
                                        .expect("mediator lock")
                                        .query_fl(p)
                                        .expect("query runs")
                                        .len()
                                };
                                black_box(n);
                            }
                        });
                    }
                });
                t.elapsed().as_nanos()
            })
            .min()
            .expect("at least one repeat")
    };
    [1usize, 2, 4, 8]
        .iter()
        .map(|&workers| {
            let per = total / workers;
            ConcRow {
                workers,
                total_queries: per * workers,
                locked_wall_ns: run_batch(workers, per, false),
                snapshot_wall_ns: run_batch(workers, per, true),
            }
        })
        .collect()
}

/// Hand-rolled JSON (no serde in the image): per-bench baseline/optimized
/// nanoseconds, the concurrent-throughput group, the fetch-plane group,
/// the evaluate-plane group, the tail-latency (hedged fetch) group, the
/// incremental-publish (write plane) group, plus the `EvalStats` and
/// stratum counters of the warm mediator's cached base model.
#[allow(clippy::too_many_arguments)]
fn render_bench_json(
    fast: bool,
    iters: usize,
    rows: &[(&str, u128, u128)],
    conc: &[ConcRow],
    par: &ParGroup,
    over: &OverlappedGroup,
    pe: &ParEvalGroup,
    tail: &TailGroup,
    magic: &[MagicRow],
    inc: &IncGroup,
    sq: &ServerQpsGroup,
    warm: &mut Mediator,
) -> String {
    let model = warm.run().expect("warm base model evaluates");
    let s = &model.stats;
    let strata = model.profile.strata.len();
    let skipped = model.profile.strata.iter().filter(|p| p.skipped).count();
    let mut out = String::from("{\n");
    // Host parallelism and the serving-plane settings up top: QPS and
    // latency rows below are only comparable across runs that match on
    // these.
    let mut worker_counts: Vec<usize> = sq.rows.iter().map(|r| r.workers).collect();
    worker_counts.sort_unstable();
    worker_counts.dedup();
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"samples\": {iters},\n  \"available_parallelism\": {},\n  \"server_settings\": {{\"worker_counts\": {:?}, \"queue_depth\": {}, \"overload_queue_depth\": {}, \"default_budget_ms\": 0}},\n  \"benches\": [\n",
        if fast { "fast" } else { "full" },
        cores(),
        worker_counts,
        sq.rows.iter().map(|r| r.queue_depth).max().unwrap_or(64),
        sq.rows.iter().map(|r| r.queue_depth).min().unwrap_or(1)
    ));
    for (i, (name, b, o)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"baseline_ns\": {b}, \"optimized_ns\": {o}, \"speedup\": {:.2}}}{sep}\n",
            *b as f64 / (*o).max(1) as f64
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"snapshot_concurrency\": {{\n    \"cores\": {},\n    \"rows\": [\n",
        cores()
    ));
    let one_worker_ns = conc.first().map(|c| c.snapshot_wall_ns).unwrap_or(1);
    for (i, c) in conc.iter().enumerate() {
        let sep = if i + 1 < conc.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"workers\": {}, \"queries\": {}, \"locked_wall_ns\": {}, \"snapshot_wall_ns\": {}, \"speedup_vs_locked\": {:.2}, \"queries_per_sec\": {:.0}, \"scaling_vs_1_worker\": {:.2}}}{sep}\n",
            c.workers,
            c.total_queries,
            c.locked_wall_ns,
            c.snapshot_wall_ns,
            c.locked_wall_ns as f64 / c.snapshot_wall_ns.max(1) as f64,
            c.total_queries as f64 / (c.snapshot_wall_ns as f64 / 1e9),
            one_worker_ns as f64 / c.snapshot_wall_ns.max(1) as f64
        ));
    }
    out.push_str(&format!(
        "    ]\n  }},\n  \"parallel_materialize\": {{\n    \"cores\": {},\n    \"sources\": {},\n    \"source_latency_ms\": {},\n    \"serial_wall_ns\": {},\n    \"rows\": [\n",
        cores(),
        par.sources,
        par.delay_ms,
        par.serial_wall_ns
    ));
    for (i, r) in par.rows.iter().enumerate() {
        let sep = if i + 1 < par.rows.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"fetch_threads\": {}, \"wall_ns\": {}, \"speedup_vs_serial\": {:.2}}}{sep}\n",
            r.threads,
            r.wall_ns,
            par.serial_wall_ns as f64 / r.wall_ns.max(1) as f64
        ));
    }
    out.push_str(&format!(
        "    ]\n  }},\n  \"overlapped_fetch\": {{\n    \"cores\": {},\n    \"sources\": {},\n    \"stall_ms\": {},\n    \"rows_per_source\": {},\n    \"rows\": [\n",
        cores(),
        over.sources,
        over.delay_ms,
        over.rows_per_source
    ));
    for (i, r) in over.rows.iter().enumerate() {
        let sep = if i + 1 < over.rows.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"name\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"in_flight\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"peak_threads\": {}}}{sep}\n",
            r.name, r.mode, r.workers, r.in_flight, r.p50_ns, r.p99_ns, r.peak_threads
        ));
    }
    out.push_str(&format!(
        "    ],\n    \"overlap_speedup_same_workers\": {:.2}\n  }},\n",
        over.overlap_speedup()
    ));
    let one_core_note = if cores() == 1 {
        ",\n    \"note\": \"1-core host: thread scaling is latency overlap only, not CPU parallelism\""
    } else {
        ""
    };
    out.push_str(&format!(
        "  \"parallel_eval\": {{\n    \"cores\": {}{one_core_note},\n    \"serial_wall_ns\": {},\n    \"rows\": [\n",
        cores(),
        pe.serial_wall_ns
    ));
    for (i, r) in pe.rows.iter().enumerate() {
        let sep = if i + 1 < pe.rows.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"eval_threads\": {}, \"wall_ns\": {}, \"speedup_vs_serial\": {:.2}}}{sep}\n",
            r.threads,
            r.wall_ns,
            pe.serial_wall_ns as f64 / r.wall_ns.max(1) as f64
        ));
    }
    out.push_str(&format!(
        "    ]\n  }},\n  \"tail_latency\": {{\n    \"runs\": {},\n    \"delay_ms\": {},\n    \"slow_per_mille\": {},\n    \"hedge_after_ms\": {},\n",
        tail.runs, tail.delay_ms, tail.slow_per_mille, tail.hedge_after_ms
    ));
    for (i, (name, st)) in [("no_hedge", &tail.no_hedge), ("hedge", &tail.hedge)]
        .iter()
        .enumerate()
    {
        let sep = if i == 0 { "," } else { "" };
        out.push_str(&format!(
            "    \"{name}\": {{\"p50_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}, \"hedged\": {}}}{sep}\n",
            st.p50_ms, st.p99_ms, st.max_ms, st.hedged
        ));
    }
    out.push_str("  },\n  \"magic_sets\": {\n    \"rows\": [\n");
    for (i, r) in magic.iter().enumerate() {
        let sep = if i + 1 < magic.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"name\": \"{}\", \"off_ns\": {}, \"on_ns\": {}, \"wall_speedup\": {:.2}, \"off_derived\": {}, \"on_derived\": {}, \"derived_reduction\": {:.2}, \"magic_fired\": {}, \"magic_declined\": {}}}{sep}\n",
            r.name,
            r.off_ns,
            r.on_ns,
            r.off_ns as f64 / r.on_ns.max(1) as f64,
            r.off_derived,
            r.on_derived,
            r.off_derived as f64 / r.on_derived.max(1) as f64,
            r.magic_fired,
            r.magic_declined
        ));
    }
    out.push_str(&format!(
        "    ]\n  }},\n  \"incremental_publish\": {{\n    \"iters\": {},\n    \"inc_p50_ns\": {},\n    \"inc_p99_ns\": {},\n    \"cold_p50_ns\": {},\n    \"cold_p99_ns\": {},\n    \"speedup_p50\": {:.2},\n    \"sustained\": {{\"readers\": {}, \"publishes\": {}, \"reads\": {}, \"wall_ns\": {}, \"publishes_per_sec\": {:.0}, \"reads_per_sec\": {:.0}}}\n  }},\n",
        inc.iters,
        inc.inc_p50_ns,
        inc.inc_p99_ns,
        inc.cold_p50_ns,
        inc.cold_p99_ns,
        inc.cold_p50_ns as f64 / inc.inc_p50_ns.max(1) as f64,
        inc.sustained.readers,
        inc.sustained.publishes,
        inc.sustained.reads,
        inc.sustained.wall_ns,
        inc.sustained.publishes as f64 / (inc.sustained.wall_ns as f64 / 1e9),
        inc.sustained.reads as f64 / (inc.sustained.wall_ns as f64 / 1e9)
    ));
    out.push_str(&format!(
        "  \"server_qps\": {{\n    \"cores\": {}{one_core_note},\n    \"rows\": [\n",
        cores()
    ));
    for (i, r) in sq.rows.iter().enumerate() {
        let sep = if i + 1 < sq.rows.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"name\": \"{}\", \"workers\": {}, \"queue_depth\": {}, \"clients\": {}, \"ok\": {}, \"shed\": {}, \"deadline\": {}, \"publishes\": {}, \"wall_ns\": {}, \"qps\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \"pre_publish_p99_us\": {}, \"post_publish_p99_us\": {}}}{sep}\n",
            r.name,
            r.workers,
            r.queue_depth,
            r.clients,
            r.ok,
            r.shed,
            r.deadline,
            r.publishes,
            r.wall_ns,
            r.qps(),
            r.p50_us,
            r.p99_us,
            r.pre_publish_p99_us,
            r.post_publish_p99_us
        ));
    }
    out.push_str(&format!(
        "    ],\n    \"overload_admitted_p99_vs_uncontended\": {:.2}\n  }},\n",
        sq.overload_p99_ratio().unwrap_or(0.0)
    ));
    out.push_str("  \"eval_stats\": {\n");
    out.push_str(&format!(
        "    \"iterations\": {},\n    \"derived\": {},\n    \"applications\": {},\n    \"index_builds\": {},\n    \"index_hits\": {},\n    \"index_misses\": {},\n    \"strata\": {strata},\n    \"strata_skipped\": {skipped}\n",
        s.iterations, s.derived, s.applications, s.index_builds, s.index_hits, s.index_misses
    ));
    out.push_str("  }\n}\n");
    out
}

fn figure1_report() {
    header("Figure 1 — domain map for SYNAPSE and NCMIR");
    let dm = figures::figure1();
    let r = Resolved::new(&dm);
    println!(
        "concepts: {}   edges: {}   roles: {:?}",
        dm.concepts().count(),
        dm.edge_count(),
        dm.roles()
    );
    println!("\nderived knowledge chain (the 'multiple worlds' bridge):");
    for (a, role, b) in [
        ("Purkinje_Cell", "has", "Spine"),
        ("Pyramidal_Cell", "has", "Spine"),
        ("Spine", "contains", "Ion_Binding_Protein"),
        ("Ion_Binding_Protein", "controls", "Ion_Activity"),
        ("Ion_Activity", "subprocess_of", "Neurotransmission"),
    ] {
        let na = dm.lookup(a).unwrap();
        let nb = dm.lookup(b).unwrap();
        let holds = r.dc_pairs(role).contains(&(na, nb));
        println!(
            "  {a:<22} --{role:>14}--> {b:<24} {}",
            if holds { "inferable" } else { "MISSING" }
        );
    }
    let dc = r.dc_pairs("has").len();
    let tc = r.tc_of_dc("has").len();
    println!("\ndc(has) = {dc} direct inferable links; materialized tc = {tc} links");
    // Scaling the 'wasteful' claim:
    println!("\n  anatomy size |  dc pairs | tc(dc) pairs | ratio");
    for (d, f) in [(3usize, 3usize), (4, 3), (5, 3)] {
        let big = figures::anatomy_generated(d, f, 2);
        let rr = Resolved::new(&big);
        let dcn = rr.dc_pairs("has_a").len();
        let tcn = rr.tc_of_dc("has_a").len();
        println!(
            "  {:>12} | {:>9} | {:>12} | {:>5.1}x",
            big.node_count(),
            dcn,
            tcn,
            tcn as f64 / dcn.max(1) as f64
        );
    }
}

fn table1_report() {
    header("Table 1 — GCM expressions in F-logic, with the closure axioms");
    let decls = [
        GcmDecl::Instance {
            obj: "x".into(),
            class: "c".into(),
        },
        GcmDecl::Subclass {
            sub: "c1".into(),
            sup: "c2".into(),
        },
        GcmDecl::Method {
            class: "c".into(),
            method: "m".into(),
            result: "cm".into(),
        },
        GcmDecl::MethodInst {
            obj: "x".into(),
            method: "m".into(),
            value: GcmValue::Id("y".into()),
        },
        GcmDecl::Relation {
            name: "r".into(),
            roles: vec![("a1".into(), "c1".into()), ("a2".into(), "c2".into())],
        },
        GcmDecl::RelationInst {
            name: "r".into(),
            values: vec![
                ("a1".into(), GcmValue::Id("x1".into())),
                ("a2".into(), GcmValue::Id("x2".into())),
            ],
        },
    ];
    println!("{:<34} | FL syntax", "GCM expression");
    println!("{:-<34}-+----------------------------", "");
    for d in &decls {
        let gcm = match d {
            GcmDecl::Instance { obj, class } => format!("instance({obj},{class})"),
            GcmDecl::Subclass { sub, sup } => format!("subclass({sub},{sup})"),
            GcmDecl::Method {
                class,
                method,
                result,
            } => format!("method({class},{method},{result})"),
            GcmDecl::MethodInst { obj, method, value } => {
                format!("methodinst({obj},{method},{value})")
            }
            GcmDecl::Relation { name, roles } => format!(
                "relation({name},{})",
                roles
                    .iter()
                    .map(|(a, c)| format!("{a}={c}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            GcmDecl::RelationInst { name, values } => format!(
                "relationinst({name},{})",
                values
                    .iter()
                    .map(|(a, v)| format!("{a}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            GcmDecl::Rule { .. } => "rule".into(),
        };
        println!("{gcm:<34} | {}", d.to_fl());
    }
    // Closure axiom timing on a growing hierarchy.
    println!("\n  classes | closure-eval facts | time");
    for depth in [4usize, 6, 8] {
        let fl = kind_bench::class_tree_flogic(depth, 2);
        let t = Instant::now();
        let m = fl.run().expect("runs");
        println!(
            "  {:>7} | {:>18} | {:?}",
            2usize.pow(depth as u32 + 1) - 1,
            m.facts.len(),
            t.elapsed()
        );
    }
}

fn figure2_report() {
    header("Figure 2 — the model-based mediator architecture at work");
    let params = ScenarioParams::default();
    let t = Instant::now();
    let mut m = build_scenario(&params);
    let reg_time = t.elapsed();
    println!("registered {} sources in {reg_time:?}:", m.sources().len());
    for s in m.sources() {
        println!(
            "  {:<10} formalism={:<5} classes={:?}",
            s.name,
            s.wrapper.formalism(),
            s.classes
        );
    }
    let t = Instant::now();
    let loaded = m.materialize_all().expect("materializes");
    let model_size = m.run().expect("evaluates").facts.len();
    println!(
        "\nmaterialized {loaded} rows; evaluated model: {model_size} facts in {:?}",
        t.elapsed()
    );
}

fn example2_report() {
    header("Examples 2 & 3 — integrity constraints with failure witnesses");
    let base = corrupted_order(8, 4);
    let t = Instant::now();
    let m = base.run().expect("runs");
    let ws = base.witnesses(&m);
    let (wrc, wtc, was): (Vec<_>, Vec<_>, Vec<_>) = (
        ws.iter().filter(|w| w.starts_with("wrc(")).collect(),
        ws.iter().filter(|w| w.starts_with("wtc(")).collect(),
        ws.iter().filter(|w| w.starts_with("was(")).collect(),
    );
    println!(
        "corrupted order (8 nodes, 4 missing transitive edges, 1 cycle), checked in {:?}:",
        t.elapsed()
    );
    println!("  reflexivity witnesses (wrc): {}", wrc.len());
    println!("  transitivity witnesses (wtc): {}", wtc.len());
    println!("  antisymmetry witnesses (was): {}", was.len());
    for w in ws.iter().take(3) {
        println!("    ic <- {w}");
    }
}

fn figure3_report() {
    header("Figure 3 — registering MyNeuron / MyDendrite");
    let base = figures::figure3_base();
    let full = figures::figure3();
    println!(
        "base map: {} concepts, {} edges",
        base.concepts().count(),
        base.edge_count()
    );
    println!(
        "after registration: {} concepts, {} edges",
        full.concepts().count(),
        full.edge_count()
    );
    let r = Resolved::new(&full);
    let mn = full.lookup("MyNeuron").unwrap();
    println!("\nderived for MyNeuron:");
    for target in ["Medium_Spiny_Neuron", "Spiny_Neuron", "Neuron"] {
        let t = full.lookup(target).unwrap();
        println!("  MyNeuron :: {target:<22} {}", r.is_subconcept(mn, t));
    }
    let gpe = full.lookup("Globus_Pallidus_External").unwrap();
    println!(
        "  MyNeuron --proj--> Globus_Pallidus_External (definite): {}",
        r.dc_pairs("proj").contains(&(mn, gpe))
    );
    // Nonmonotonic override at the instance level.
    let mut fl = FLogic::with_inheritance();
    fl.load("m1 : msn. m2 : msn. m1[proj -> gpe_only].")
        .unwrap();
    fl.load_datalog("default(msn, proj, pallidal_target).")
        .unwrap();
    let model = fl.run().unwrap();
    let mut e = fl.engine().clone();
    let v1 = e.query_model(&model, "val(m1, proj, V)").unwrap();
    let v2 = e.query_model(&model, "val(m2, proj, V)").unwrap();
    println!("\nnonmonotonic inheritance (defaults with override):");
    println!("  m1 (explicit) projects to: {}", e.show(&v1[0][2]));
    println!("  m2 (default)  projects to: {}", e.show(&v2[0][2]));
}

fn section5_report() {
    header("§5 — the KIND query plan");
    let schema = NeuroSchema::default();
    let q = Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    };
    println!("query: distribution of calcium-binding proteins in neurons");
    println!("       receiving parallel-fiber signals, in rat brains\n");
    let mut m = build_scenario(&ScenarioParams::default());
    let t = Instant::now();
    let trace = run_section5(&mut m, &schema, &q, true).expect("plan runs");
    let dt = t.elapsed();
    println!("step 1: receiving pairs {:?}", trace.step1_pairs);
    println!(
        "step 2: {} candidates -> {:?} (semantic index)",
        trace.candidate_sources, trace.selected_sources
    );
    println!(
        "step 3: {} rows retrieved, proteins {:?}",
        trace.step3_rows, trace.proteins
    );
    println!("step 4: lub root = {:?}", trace.root);
    println!("\n  {:<20} {:<20} {:>7}", "protein", "concept", "total");
    for d in &trace.distribution {
        println!("  {:<20} {:<20} {:>7}", d.protein, d.concept, d.total);
    }
    println!(
        "\nplan: {} wrapper queries, {} rows shipped, in {dt:?}",
        trace.stats.source_queries, trace.stats.rows_shipped
    );
    // Ablation table.
    println!("\nsource-selection ablation (rows shipped as noise sources grow):");
    println!("  noise sources | index ON queries/rows | index OFF queries/rows");
    for noise in [0usize, 4, 8, 16] {
        let params = ScenarioParams {
            noise_sources: noise,
            noise_rows: 100,
            ..Default::default()
        };
        let mut a = build_scenario(&params);
        let ta = run_section5(&mut a, &schema, &q, true).unwrap();
        let mut b = build_scenario(&params);
        let tb = run_section5(&mut b, &schema, &q, false).unwrap();
        println!(
            "  {:>13} | {:>9}/{:<11} | {:>10}/{}",
            noise,
            ta.stats.source_queries,
            ta.stats.rows_shipped,
            tb.stats.source_queries,
            tb.stats.rows_shipped
        );
    }
    // Example 4 demo call.
    println!("\nExample 4: protein_distribution(Ryanodine_Receptor, Cerebellum):");
    let dist = protein_distribution(&mut m, &schema, "Ryanodine_Receptor", "Cerebellum")
        .expect("view evaluates");
    for (concept, total) in &dist {
        println!("  {concept:<22} {total:>7}");
    }
}
