//! **Example 4** — the `protein_distribution` integrated view: recursive
//! aggregation along `has_a_star` from a distribution root.
//!
//! Series reproduced: view evaluation as a function of (a) anatomy size
//! (the ANATOM stand-in's partonomy) and (b) measurement volume.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_bench::scaled_anatomy_mediator;
use kind_core::{protein_distribution, NeuroSchema};
use std::hint::black_box;

fn bench_by_anatomy_size(c: &mut Criterion) {
    let schema = NeuroSchema::default();
    let mut g = c.benchmark_group("ex4_by_anatomy");
    g.sample_size(10);
    for (depth, fanout) in [(3usize, 3usize), (4, 3), (5, 3)] {
        let (mut m, _) = scaled_anatomy_mediator(depth, fanout, 200, 7);
        let nodes = m.dm().node_count();
        g.bench_with_input(BenchmarkId::new("rollup", nodes), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    protein_distribution(&mut m, &schema, "Ryanodine_Receptor", "Nervous_System")
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_by_measurement_volume(c: &mut Criterion) {
    let schema = NeuroSchema::default();
    let mut g = c.benchmark_group("ex4_by_rows");
    g.sample_size(10);
    for rows in [100usize, 1000, 10000] {
        let (mut m, _) = scaled_anatomy_mediator(4, 3, rows, 7);
        g.bench_with_input(BenchmarkId::new("rollup", rows), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    protein_distribution(&mut m, &schema, "Ryanodine_Receptor", "Nervous_System")
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_by_anatomy_size, bench_by_measurement_volume);
criterion_main!(benches);
