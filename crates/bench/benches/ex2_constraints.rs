//! **Examples 2 & 3** — integrity constraints as denials with failure
//! witnesses.
//!
//! Series reproduced: partial-order checking (reflexivity, transitivity,
//! antisymmetry witnesses) on near-orders of growing size, and
//! cardinality checking (grouping aggregation) on growing populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_bench::corrupted_order;
use kind_gcm::{Cardinality, ConceptualModel, GcmBase, GcmValue};
use std::hint::black_box;

fn bench_partial_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("ex2_partial_order");
    g.sample_size(10);
    for n in [8usize, 16, 24] {
        let base = corrupted_order(n, n / 2);
        g.bench_with_input(BenchmarkId::new("check", n), &base, |b, base| {
            b.iter(|| {
                let m = base.run().unwrap();
                black_box(base.witnesses(&m).len())
            })
        });
    }
    g.finish();
}

fn cardinality_base(tuples: usize) -> GcmBase {
    let mut base = GcmBase::new();
    let mut cm =
        ConceptualModel::new("CARD").relation("has", &[("neuron", "neuron"), ("axon", "axon")]);
    for i in 0..tuples {
        // Every 10th axon is shared by two neurons (violation).
        cm = cm.relation_inst(
            "has",
            &[
                ("neuron", GcmValue::Id(format!("n{}", i % (tuples / 4 + 1)))),
                ("axon", GcmValue::Id(format!("ax{}", i / 2))),
            ],
        );
    }
    base.apply(&cm).expect("CM applies");
    base.require_cardinality("has", Cardinality::FirstExact(1))
        .expect("constraint");
    base.require_cardinality("has", Cardinality::SecondAtMost(2))
        .expect("constraint");
    base
}

fn bench_cardinality(c: &mut Criterion) {
    let mut g = c.benchmark_group("ex3_cardinality");
    g.sample_size(10);
    for tuples in [100usize, 400, 1600] {
        let base = cardinality_base(tuples);
        g.bench_with_input(BenchmarkId::new("check", tuples), &base, |b, base| {
            b.iter(|| {
                let m = base.run().unwrap();
                black_box(base.witnesses(&m).len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partial_order, bench_cardinality);
criterion_main!(benches);
