//! **Figure 1** — the SYNAPSE/NCMIR domain map and its closure
//! operations.
//!
//! Series reproduced: map construction from DL axioms, resolution,
//! `dc(has_a)` (the paper's `has_a_star`) vs. materializing
//! `tc(has_a_star)` on growing anatomies — the paper's claim that the
//! materialization "would be wasteful" shows up as the widening gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_bench::closure_map;
use kind_dm::{figures, Resolved};
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_build");
    g.bench_function("figure1_from_axioms", |b| {
        b.iter(|| black_box(figures::figure1()))
    });
    let dm = figures::figure1();
    g.bench_function("resolve", |b| b.iter(|| black_box(Resolved::new(&dm))));
    let r = Resolved::new(&dm);
    g.bench_function("dc_has", |b| b.iter(|| black_box(r.dc_pairs("has"))));
    let pc = dm.lookup("Purkinje_Cell").unwrap();
    let py = dm.lookup("Pyramidal_Cell").unwrap();
    g.bench_function("lub", |b| b.iter(|| black_box(r.lub(&[pc, py]))));
    g.finish();
}

fn bench_closure_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_closures");
    for (depth, fanout) in [(3usize, 3usize), (4, 3), (5, 3)] {
        let dm = closure_map(depth, fanout);
        let r = Resolved::new(&dm);
        let n = dm.node_count();
        g.bench_with_input(BenchmarkId::new("dc_direct", n), &r, |b, r| {
            b.iter(|| black_box(r.dc_pairs("has_a").len()))
        });
        g.bench_with_input(BenchmarkId::new("tc_materialized", n), &r, |b, r| {
            b.iter(|| black_box(r.tc_of_dc("has_a").len()))
        });
        let root = dm.lookup("Nervous_System").unwrap();
        g.bench_with_input(BenchmarkId::new("downward_closure", n), &r, |b, r| {
            b.iter(|| black_box(r.downward_closure("has_a", root).len()))
        });
    }
    g.finish();
}

/// Warm (memoized) vs cold closure operations: a mediator asks for the
/// same ancestor cones, deductive closures, and regions over and over
/// across a query session, so repeat cost is what §5 latency tracks.
fn bench_memoized_closures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_warm");
    let dm = closure_map(5, 3);
    let root = dm.lookup("Nervous_System").unwrap();
    let warm = Resolved::new(&dm);
    // Prime the memo tables once; iterations then measure warm cost.
    warm.downward_closure("has_a", root);
    warm.dc_pairs("has_a");
    g.bench_function("downward_closure_warm", |b| {
        b.iter(|| black_box(warm.downward_closure("has_a", root).len()))
    });
    g.bench_function("downward_closure_cold", |b| {
        b.iter(|| {
            let r = Resolved::new(&dm);
            black_box(r.downward_closure("has_a", root).len())
        })
    });
    g.bench_function("dc_pairs_warm", |b| {
        b.iter(|| black_box(warm.dc_pairs("has_a").len()))
    });
    g.bench_function("dc_pairs_cold", |b| {
        b.iter(|| {
            let r = Resolved::new(&dm);
            black_box(r.dc_pairs("has_a").len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_figure1,
    bench_closure_scaling,
    bench_memoized_closures
);
criterion_main!(benches);
