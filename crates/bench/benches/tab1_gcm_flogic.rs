//! **Table 1** — the GCM ↔ F-logic correspondence and the FL closure
//! axioms.
//!
//! Series reproduced: cost of evaluating the Table 1 axioms (reflexive &
//! transitive `::`, upward `:` propagation, signature inheritance) on
//! growing class trees, plus GCM-declaration → FL-text → parse
//! round-trip throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_bench::class_tree_flogic;
use kind_flogic::FLogic;
use kind_gcm::{GcmDecl, GcmValue};
use std::hint::black_box;

fn bench_fl_axioms(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab1_axioms");
    g.sample_size(20);
    for (depth, fanout) in [(4usize, 2usize), (6, 2), (8, 2)] {
        let classes = (0..=depth).map(|d| fanout.pow(d as u32)).sum::<usize>();
        let fl = class_tree_flogic(depth, fanout);
        g.bench_with_input(BenchmarkId::new("closure_eval", classes), &fl, |b, fl| {
            b.iter(|| black_box(fl.run().unwrap().facts.len()))
        });
    }
    g.finish();
}

fn bench_gcm_fl_roundtrip(c: &mut Criterion) {
    let decls: Vec<GcmDecl> = (0..200)
        .flat_map(|i| {
            vec![
                GcmDecl::Instance {
                    obj: format!("o{i}"),
                    class: format!("c{}", i % 20),
                },
                GcmDecl::MethodInst {
                    obj: format!("o{i}"),
                    method: "size".into(),
                    value: GcmValue::Int(i),
                },
                GcmDecl::Subclass {
                    sub: format!("c{}", i % 20),
                    sup: format!("c{}", i % 7),
                },
            ]
        })
        .collect();
    let mut g = c.benchmark_group("tab1_roundtrip");
    g.bench_function("render_600_decls_to_fl", |b| {
        b.iter(|| {
            let text: String = decls.iter().map(|d| d.to_fl() + "\n").collect();
            black_box(text.len())
        })
    });
    let text: String = decls.iter().map(|d| d.to_fl() + "\n").collect();
    g.bench_function("parse_and_load_600_decls", |b| {
        b.iter(|| {
            let mut fl = FLogic::new();
            fl.load(&text).unwrap();
            black_box(fl.engine().edb().len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fl_axioms, bench_gcm_fl_roundtrip);
criterion_main!(benches);
