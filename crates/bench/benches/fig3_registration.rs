//! **Figure 3** — registering new knowledge and data at the mediator.
//!
//! Series reproduced: cost of a registration that refines the domain map
//! (the `MyNeuron`/`MyDendrite` flow), and semantic-index construction as
//! a function of the number of anchored objects — the paper's claim that
//! anchoring happens "without changing the latter [the map]" shows up as
//! index-build cost scaling with data volume, not map size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_core::{Anchor, Capability, Mediator, MemoryWrapper};
use kind_dm::{figures, ExecMode};
use kind_gcm::GcmValue;
use std::hint::black_box;
use std::sync::Arc;

fn mylab_wrapper(rows: usize, with_dm_contribution: bool) -> Arc<MemoryWrapper> {
    let mut w = MemoryWrapper::new("MYLAB");
    if with_dm_contribution {
        w.dm_axioms = figures::FIGURE3_REGISTRATION_AXIOMS.to_string();
    }
    w.caps.push(Capability {
        class: "my_neurons".into(),
        pushable: vec![],
    });
    let concept = if with_dm_contribution {
        "MyNeuron"
    } else {
        "Medium_Spiny_Neuron"
    };
    w.anchor_decls.push(Anchor::Fixed {
        class: "my_neurons".into(),
        concept: concept.into(),
    });
    for i in 0..rows {
        w.add_row(
            "my_neurons",
            &format!("m{i}"),
            vec![("idx", GcmValue::Int(i as i64))],
        );
    }
    Arc::new(w)
}

fn bench_registration(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_registration");
    g.sample_size(20);
    for rows in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("anchor_only", rows), &rows, |b, &rows| {
            b.iter(|| {
                let mut m = Mediator::new(figures::figure3_base(), ExecMode::Assertion);
                m.register(mylab_wrapper(rows, false)).unwrap();
                black_box(m.index().total_anchors())
            })
        });
        g.bench_with_input(
            BenchmarkId::new("with_dm_refinement", rows),
            &rows,
            |b, &rows| {
                b.iter(|| {
                    let mut m = Mediator::new(figures::figure3_base(), ExecMode::Assertion);
                    m.register(mylab_wrapper(rows, true)).unwrap();
                    black_box(m.index().total_anchors())
                })
            },
        );
    }
    g.finish();
}

fn bench_rebuild_after_refinement(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_rebuild");
    g.sample_size(10);
    let mut m = Mediator::new(figures::figure3_base(), ExecMode::Assertion);
    m.register(mylab_wrapper(50, true)).unwrap();
    g.bench_function("rebuild_and_evaluate", |b| {
        b.iter(|| {
            m.rebuild().unwrap();
            let model = m.run().unwrap();
            black_box(model.facts.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_registration, bench_rebuild_after_refinement);
criterion_main!(benches);
