//! **Ablations** of the engine-level design choices called out in
//! DESIGN.md:
//!
//! 1. semi-naive vs. naive fixpoint on transitive-closure workloads;
//! 2. stratified fast path vs. alternating fixpoint (well-founded) on a
//!    program that is stratified but can be forced through either path;
//! 3. domain-map edge execution: constraint vs. assertion mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_bench::tc_workload;
use kind_datalog::{Engine, EvalOptions};
use kind_dm::{figures, rules, ExecMode, DM_OPS_RULES};
use kind_flogic::FLogic;
use std::hint::black_box;

fn bench_seminaive_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fixpoint");
    g.sample_size(10);
    for (n, edges) in [(30usize, 60usize), (60, 120), (120, 240)] {
        let e = tc_workload(n, edges, 11);
        g.bench_with_input(BenchmarkId::new("semi_naive", edges), &e, |b, e| {
            b.iter(|| black_box(e.run(&EvalOptions::default()).unwrap().stats.derived))
        });
        g.bench_with_input(BenchmarkId::new("naive", edges), &e, |b, e| {
            b.iter(|| {
                black_box(
                    e.run(&EvalOptions {
                        semi_naive: false,
                        ..Default::default()
                    })
                    .unwrap()
                    .stats
                    .derived,
                )
            })
        });
    }
    g.finish();
}

/// The same complement computation written stratified (negation over an
/// EDB predicate) and with a gratuitous negative cycle bolted on (forcing
/// the alternating fixpoint) — the price of the WFS machinery.
fn bench_stratified_vs_wfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_wfs");
    g.sample_size(10);
    let facts: String = (0..300)
        .map(|i| {
            format!(
                "node(n{i}). {}",
                if i % 3 == 0 {
                    format!("marked(n{i}).")
                } else {
                    String::new()
                }
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    let mut strat = Engine::new();
    strat.load(&facts).unwrap();
    strat
        .load("unmarked(X) :- node(X), not marked(X).")
        .unwrap();
    g.bench_function("stratified_path", |b| {
        b.iter(|| black_box(strat.run(&EvalOptions::default()).unwrap().facts.len()))
    });
    let mut wfs = Engine::new();
    wfs.load(&facts).unwrap();
    wfs.load(
        "unmarked(X) :- node(X), not marked(X).
         % a two-literal negative cycle over a tiny island forces the
         % alternating fixpoint for the whole program:
         island(i1).
         p(X) :- island(X), not q(X).
         q(X) :- island(X), not p(X).",
    )
    .unwrap();
    g.bench_function("alternating_fixpoint_path", |b| {
        b.iter(|| black_box(wfs.run(&EvalOptions::default()).unwrap().facts.len()))
    });
    g.finish();
}

fn bench_exec_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_exec_mode");
    g.sample_size(10);
    let dm = figures::figure1();
    // Fifty neurons with no compartments: constraint mode reports
    // witnesses; assertion mode invents placeholders.
    let data: String = (0..50)
        .map(|i| format!("n{i} : \"Neuron\"."))
        .collect::<Vec<_>>()
        .join("\n");
    for (label, mode) in [
        ("constraint", ExecMode::Constraint),
        ("assertion", ExecMode::Assertion),
    ] {
        let prog = rules::compile(&dm, mode);
        let mut fl = FLogic::new();
        fl.load_datalog(DM_OPS_RULES).unwrap();
        fl.load(&prog.text).unwrap();
        fl.load(&data).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| black_box(fl.run().unwrap().facts.len()))
        });
    }
    g.finish();
}

/// First-column join index on vs. off (full scans), on a TC workload
/// where the recursive rule joins on a bound first argument.
fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_join_index");
    g.sample_size(10);
    let e = tc_workload(80, 160, 5);
    g.bench_function("index_on", |b| {
        b.iter(|| black_box(e.run(&EvalOptions::default()).unwrap().stats.derived))
    });
    g.bench_function("index_off", |b| {
        b.iter(|| {
            black_box(
                e.run(&EvalOptions {
                    use_index: false,
                    ..Default::default()
                })
                .unwrap()
                .stats
                .derived,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_seminaive_vs_naive,
    bench_stratified_vs_wfs,
    bench_exec_modes,
    bench_index
);
criterion_main!(benches);
