//! **§5** — the four-step query plan of the KIND prototype.
//!
//! Series reproduced:
//! * the full plan with semantic-index source selection **ON vs OFF** as
//!   the number of registered-but-irrelevant sources grows (the paper's
//!   step 2 motivation: with the index, cost tracks *relevant* sources);
//! * lub computation cost;
//! * the plan vs. the materialize-everything baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_core::{run_section5, NeuroSchema, Section5Query};
use kind_datalog::EvalOptions;
use kind_sources::{build_scenario, ScenarioParams};
use std::hint::black_box;

fn query() -> Section5Query {
    Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    }
}

fn bench_source_selection_ablation(c: &mut Criterion) {
    let schema = NeuroSchema::default();
    let mut g = c.benchmark_group("sec5_source_selection");
    g.sample_size(10);
    for noise in [0usize, 8, 32] {
        let params = ScenarioParams {
            noise_sources: noise,
            noise_rows: 200,
            ..Default::default()
        };
        let mut m_on = build_scenario(&params);
        g.bench_with_input(BenchmarkId::new("index_on", noise), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    run_section5(&mut m_on, &schema, &query(), true)
                        .unwrap()
                        .distribution
                        .len(),
                )
            })
        });
        let mut m_off = build_scenario(&params);
        g.bench_with_input(BenchmarkId::new("index_off", noise), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    run_section5(&mut m_off, &schema, &query(), false)
                        .unwrap()
                        .distribution
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_lub(c: &mut Criterion) {
    let m = build_scenario(&ScenarioParams::default());
    let mut g = c.benchmark_group("sec5_lub");
    g.bench_function("partonomy_lub_purkinje_pair", |b| {
        b.iter(|| {
            black_box(
                m.partonomy_lub("has_a", &["Purkinje_Cell", "Purkinje_Dendrite"])
                    .unwrap(),
            )
        })
    });
    g.bench_function("partonomy_lub_cross_region", |b| {
        b.iter(|| {
            black_box(
                m.partonomy_lub("has_a", &["Purkinje_Spine", "Pyramidal_Spine"])
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_plan_vs_materialize(c: &mut Criterion) {
    let schema = NeuroSchema::default();
    let params = ScenarioParams {
        noise_sources: 8,
        noise_rows: 200,
        ncmir_rows: 200,
        senselab_rows: 200,
        synapse_rows: 200,
        ..Default::default()
    };
    let mut g = c.benchmark_group("sec5_plan_vs_materialize");
    g.sample_size(10);
    let mut m = build_scenario(&params);
    g.bench_function("pushdown_plan", |b| {
        b.iter(|| {
            black_box(
                run_section5(&mut m, &schema, &query(), true)
                    .unwrap()
                    .step3_rows,
            )
        })
    });
    g.bench_function("materialize_everything_baseline", |b| {
        b.iter(|| {
            let mut m2 = build_scenario(&params);
            m2.materialize_all().unwrap();
            let model = m2.run().unwrap();
            black_box(model.facts.len())
        })
    });
    g.finish();
}

/// Warm `answer()` calls: the optimized pipeline (join reorder + hash
/// indexes + cross-query base cache, the defaults) against the fully
/// ablated baseline — the evaluator this PR replaced. Both mediators get
/// one untimed priming call, so iterations measure second-and-later cost.
fn bench_warm_answer(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec5_warm_answer");
    g.sample_size(10);
    let q = r#"calcium_sites(P, L) :- X : protein_amount, X[protein_name -> P],
               X[location -> L], X[ion_bound -> "calcium"]."#;
    let mut warm = build_scenario(&ScenarioParams::default());
    warm.answer(q).unwrap(); // prime the base cache
    g.bench_function("answer_warm_optimized", |b| {
        b.iter(|| black_box(warm.answer(q).unwrap().rows.len()))
    });
    let mut ablated = build_scenario(&ScenarioParams::default());
    ablated.set_eval_options(EvalOptions {
        join_reorder: false,
        use_index: false,
        base_cache: false,
        ..Default::default()
    });
    ablated.answer(q).unwrap();
    g.bench_function("answer_ablated_baseline", |b| {
        b.iter(|| black_box(ablated.answer(q).unwrap().rows.len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_source_selection_ablation,
    bench_lub,
    bench_plan_vs_materialize,
    bench_warm_answer
);
criterion_main!(benches);
