//! **Figure 2** — the model-based mediator architecture end to end.
//!
//! Series reproduced: per-formalism CM plug-in translation cost,
//! source-registration cost, and full federation (register + materialize
//! + evaluate) scaling with data volume.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kind_core::Wrapper;
use kind_gcm::PluginRegistry;
use kind_sources::{
    build_scenario, ncmir_wrapper, senselab_wrapper, synapse_wrapper, ScenarioParams,
};
use std::hint::black_box;

fn bench_plugin_translation(c: &mut Criterion) {
    let reg = PluginRegistry::with_builtins();
    let wrappers: Vec<(&str, std::sync::Arc<dyn Wrapper>)> = vec![
        ("er_synapse", synapse_wrapper(1, 10)),
        ("uxf_ncmir", ncmir_wrapper(1, 10)),
        ("rdfs_senselab", senselab_wrapper(1, 10)),
    ];
    let mut g = c.benchmark_group("fig2_plugin_translation");
    for (label, w) in &wrappers {
        let doc = w.export_cm();
        let formalism = w.formalism().to_string();
        g.bench_function(*label, |b| {
            b.iter(|| black_box(reg.translate(&formalism, &doc).unwrap().decls.len()))
        });
    }
    g.finish();
}

fn bench_registration_and_federation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_federation");
    g.sample_size(10);
    for rows in [20usize, 80, 320] {
        let params = ScenarioParams {
            senselab_rows: rows,
            ncmir_rows: rows,
            synapse_rows: rows,
            noise_sources: 2,
            noise_rows: rows / 2,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("register_all", rows), &params, |b, p| {
            b.iter(|| black_box(build_scenario(p).sources().len()))
        });
        g.bench_with_input(
            BenchmarkId::new("materialize_and_evaluate", rows),
            &params,
            |b, p| {
                b.iter(|| {
                    let mut m = build_scenario(p);
                    m.materialize_all().unwrap();
                    let model = m.run().unwrap();
                    black_box(model.facts.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_plugin_translation,
    bench_registration_and_federation
);
criterion_main!(benches);
