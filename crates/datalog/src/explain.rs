//! Derivation explanations: *why* is a fact in the model?
//!
//! A mediator's integrated views stack rules from many places (source
//! CMs, domain-map edges, IVDs); when an answer looks wrong, the first
//! question is which rule chain produced it. [`crate::Engine::explain`]
//! reconstructs one derivation tree for a fact, post hoc: it finds a rule
//! whose head matches the fact and whose body is satisfied *in the final
//! model*, then recurses into the positive premises down to EDB facts.
//!
//! Reconstruction against the final model is sound for stratified
//! programs (every derived fact has such a supporting rule instance) and
//! for the true atoms of well-founded models. Cycles and depth overruns
//! are truncated explicitly rather than looped on.

use crate::atom::BodyItem;
use crate::eval::{solve, MatchCtx, Model, NegView};
use crate::interner::Sym;
use crate::term::{Subst, Term};
use std::collections::HashSet;
use std::fmt::Write;

/// A ground atom as `(predicate, arguments)`.
pub type GroundAtom = (Sym, Vec<Term>);

/// One node of a derivation tree.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// The derived predicate.
    pub pred: Sym,
    /// Its ground arguments.
    pub args: Vec<Term>,
    /// How it was derived.
    pub via: DerivationStep,
}

/// How a fact entered the model.
#[derive(Debug, Clone)]
pub enum DerivationStep {
    /// Asserted in the extensional database.
    Edb,
    /// Derived by the rule at `rule_index` (into [`crate::Engine::rules`])
    /// from the given positive premises; `negatives` lists the ground
    /// negated atoms the rule instance relied on being absent.
    Rule {
        /// Index of the applied rule.
        rule_index: usize,
        /// Sub-derivations of the positive body atoms.
        premises: Vec<Derivation>,
        /// Ground negated atoms (verified absent in the model).
        negatives: Vec<GroundAtom>,
    },
    /// Cut off by the depth bound or a cycle.
    Truncated,
    /// Present in the model but no rule instance re-derives it (can
    /// happen for the undefined-adjacent frontier of well-founded models).
    Unexplained,
}

impl crate::Engine {
    /// Builds a derivation tree for `pred(args)` in `model`, up to
    /// `max_depth` rule applications deep. Returns `None` if the fact is
    /// not in the model at all.
    pub fn explain(
        &self,
        model: &Model,
        pred: Sym,
        args: &[Term],
        max_depth: usize,
    ) -> Option<Derivation> {
        if !model.holds(pred, args) {
            return None;
        }
        let mut in_progress = HashSet::new();
        Some(self.explain_rec(model, pred, args, max_depth, &mut in_progress))
    }

    fn explain_rec(
        &self,
        model: &Model,
        pred: Sym,
        args: &[Term],
        depth: usize,
        in_progress: &mut HashSet<(Sym, Vec<Term>)>,
    ) -> Derivation {
        let key = (pred, args.to_vec());
        if self.edb().contains(pred, args) {
            return Derivation {
                pred,
                args: args.to_vec(),
                via: DerivationStep::Edb,
            };
        }
        if depth == 0 || !in_progress.insert(key.clone()) {
            return Derivation {
                pred,
                args: args.to_vec(),
                via: DerivationStep::Truncated,
            };
        }
        let mut via = DerivationStep::Unexplained;
        'rules: for (ri, rule) in self.rules().iter().enumerate() {
            if rule.head.pred != pred || rule.head.arity() != args.len() {
                continue;
            }
            // Bind the head against the fact, then check the body in the
            // final model.
            let mut subst = Subst::with_capacity(rule.nvars as usize);
            let mark = subst.mark();
            let mut ok = true;
            for (pat, val) in rule.head.args.iter().zip(args.iter()) {
                if !subst.match_term(pat, val) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                subst.undo_to(mark);
                continue;
            }
            let counters = crate::eval::IndexCounters::default();
            let ctx = MatchCtx {
                total: &model.facts,
                delta: None,
                neg: NegView::Frozen(&model.facts),
                use_index: true,
                counters: &counters,
            };
            // Capture the first satisfying body instance that is not
            // *self-supporting* (a premise identical to the conclusion —
            // e.g. the FL upward-propagation axiom instantiated through
            // the reflexive subclass edge derives every fact from
            // itself; such instances explain nothing).
            let mut captured: Option<(Vec<GroundAtom>, Vec<GroundAtom>)> = None;
            {
                let body = &rule.body;
                let captured = &mut captured;
                let key_ref = &key;
                solve(body, 0, &mut subst, &ctx, &mut |s: &Subst| {
                    if captured.is_some() {
                        return;
                    }
                    let mut pos = Vec::new();
                    let mut neg = Vec::new();
                    for item in body {
                        match item {
                            BodyItem::Pos(a) => {
                                let ground = a.apply(s);
                                pos.push((ground.pred, ground.args));
                            }
                            BodyItem::Neg(a) => {
                                let ground = a.apply(s);
                                neg.push((ground.pred, ground.args));
                            }
                            _ => {}
                        }
                    }
                    if pos.iter().any(|p| p == key_ref) {
                        return; // self-supporting: keep searching
                    }
                    *captured = Some((pos, neg));
                });
            }
            if let Some((pos, negatives)) = captured {
                let premises = pos
                    .into_iter()
                    .map(|(p, a)| self.explain_rec(model, p, &a, depth - 1, in_progress))
                    .collect();
                via = DerivationStep::Rule {
                    rule_index: ri,
                    premises,
                    negatives,
                };
                break 'rules;
            }
        }
        in_progress.remove(&key);
        Derivation {
            pred,
            args: args.to_vec(),
            via,
        }
    }

    /// Renders a model's evaluation profile — per-stratum predicates,
    /// iteration and index counters, and the compiled join order of every
    /// rule — as a diagnostic dump. The join order lists compiled body
    /// positions; a `*` marks rules the greedy planner actually reordered.
    pub fn render_profile(&self, model: &Model) -> String {
        let prof = &model.profile;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "evaluation profile: {} strata{}{}{}",
            prof.strata.len(),
            if prof.well_founded {
                " (well-founded)"
            } else {
                ""
            },
            if prof.seeded > 0 {
                format!(", {} facts seeded from base cache", prof.seeded)
            } else {
                String::new()
            },
            if prof.magic_fired {
                format!(
                    ", magic-sets rewrite fired ({} adorned rules, {} magic predicates)",
                    prof.adorned_rules, prof.magic_preds
                )
            } else {
                String::new()
            },
        );
        for (i, sp) in prof.strata.iter().enumerate() {
            let preds: Vec<&str> = sp.preds.iter().map(|&p| self.name(p)).collect();
            let kind = match (sp.skipped, sp.recursive) {
                (true, _) => "skipped (cached)",
                (false, true) => "recursive",
                (false, false) => "single-pass",
            };
            let _ = writeln!(out, "stratum {i} [{kind}]: {}", preds.join(", "));
            if !sp.skipped {
                let _ = writeln!(
                    out,
                    "  iterations={} derived={} index: builds={} hits={} misses={}",
                    sp.iterations, sp.derived, sp.index_builds, sp.index_hits, sp.index_misses
                );
                if sp.threads_used > 1 {
                    let _ = writeln!(
                        out,
                        "  parallel: threads={} partitions={}",
                        sp.threads_used, sp.partitions
                    );
                }
                if sp.adorned_rules > 0 || sp.magic_preds > 0 {
                    let _ = writeln!(
                        out,
                        "  magic: adorned_rules={} magic_preds={}",
                        sp.adorned_rules, sp.magic_preds
                    );
                }
                for plan in &sp.plans {
                    let order: Vec<String> =
                        plan.join_order.iter().map(|p| p.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "  rule {}: join order [{}]{}",
                        self.name(plan.head),
                        order.join(", "),
                        if plan.reordered { " *" } else { "" }
                    );
                }
            }
        }
        out
    }

    /// Renders a derivation tree as indented text.
    pub fn render_derivation(&self, d: &Derivation) -> String {
        let mut out = String::new();
        self.render_rec(d, 0, &mut out);
        out
    }

    fn render_rec(&self, d: &Derivation, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let args: Vec<String> = d.args.iter().map(|t| self.show(t)).collect();
        let head = format!("{}({})", self.name(d.pred), args.join(","));
        match &d.via {
            DerivationStep::Edb => {
                let _ = writeln!(out, "{pad}{head}   [edb]");
            }
            DerivationStep::Truncated => {
                let _ = writeln!(out, "{pad}{head}   [...]");
            }
            DerivationStep::Unexplained => {
                let _ = writeln!(out, "{pad}{head}   [unexplained]");
            }
            DerivationStep::Rule {
                rule_index,
                premises,
                negatives,
            } => {
                let _ = writeln!(out, "{pad}{head}   [rule #{rule_index}]");
                for p in premises {
                    self.render_rec(p, indent + 1, out);
                }
                for (np, na) in negatives {
                    let nargs: Vec<String> = na.iter().map(|t| self.show(t)).collect();
                    let _ = writeln!(
                        out,
                        "{}not {}({})   [absent]",
                        "  ".repeat(indent + 1),
                        self.name(*np),
                        nargs.join(",")
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EvalOptions};

    fn setup() -> (Engine, Model) {
        let mut e = Engine::new();
        e.load(
            "edge(a,b). edge(b,c).
             tc(X,Y) :- edge(X,Y).
             tc(X,Y) :- tc(X,Z), edge(Z,Y).",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        (e, m)
    }

    #[test]
    fn edb_facts_explain_as_edb() {
        let (mut e, m) = setup();
        let edge = e.sym("edge");
        let a = e.constant("a");
        let b = e.constant("b");
        let d = e.explain(&m, edge, &[a, b], 8).unwrap();
        assert!(matches!(d.via, DerivationStep::Edb));
    }

    #[test]
    fn derived_facts_explain_through_rules() {
        let (mut e, m) = setup();
        let tc = e.sym("tc");
        let a = e.constant("a");
        let c = e.constant("c");
        let d = e.explain(&m, tc, &[a, c], 8).unwrap();
        let DerivationStep::Rule { premises, .. } = &d.via else {
            panic!("{d:?}")
        };
        // tc(a,c) via tc(a,b), edge(b,c); premises bottom out at EDB.
        assert_eq!(premises.len(), 2);
        let rendered = e.render_derivation(&d);
        assert!(rendered.contains("tc(a,c)"));
        assert!(rendered.contains("[edb]"));
    }

    #[test]
    fn absent_facts_are_none() {
        let (mut e, m) = setup();
        let tc = e.sym("tc");
        let c = e.constant("c");
        let a = e.constant("a");
        assert!(e.explain(&m, tc, &[c, a], 8).is_none());
    }

    #[test]
    fn negation_recorded_as_absent() {
        let mut e = Engine::new();
        e.load(
            "n(x). n(y). m(x).
             un(A) :- n(A), not m(A).",
        )
        .unwrap();
        let model = e.run(&EvalOptions::default()).unwrap();
        let un = e.sym("un");
        let y = e.constant("y");
        let d = e.explain(&model, un, &[y], 4).unwrap();
        let DerivationStep::Rule { negatives, .. } = &d.via else {
            panic!()
        };
        assert_eq!(negatives.len(), 1);
        let text = e.render_derivation(&d);
        assert!(text.contains("not m(y)"), "{text}");
    }

    #[test]
    fn depth_bound_truncates() {
        let mut e = Engine::new();
        let mut text = String::from("p0(k).\n");
        for i in 0..20 {
            text.push_str(&format!("p{}(X) :- p{}(X).\n", i + 1, i));
        }
        e.load(&text).unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        let p20 = e.sym("p20");
        let k = e.constant("k");
        let d = e.explain(&m, p20, &[k], 3).unwrap();
        let rendered = e.render_derivation(&d);
        assert!(rendered.contains("[...]"), "{rendered}");
    }

    #[test]
    fn profile_dump_shows_join_order_and_counters() {
        let (e, m) = setup();
        let dump = e.render_profile(&m);
        assert!(dump.contains("evaluation profile"), "{dump}");
        assert!(dump.contains("tc"), "{dump}");
        assert!(dump.contains("join order ["), "{dump}");
        assert!(dump.contains("index: builds="), "{dump}");
        assert!(dump.contains("recursive"), "{dump}");
    }

    #[test]
    fn profile_dump_shows_magic_rewrite() {
        use crate::{Atom, Term as T, Var};
        let mut e = Engine::new();
        e.load(
            "edge(a,b). edge(b,c). edge(c,d).
             tc(X,Y) :- edge(X,Y).
             tc(X,Y) :- tc(X,Z), edge(Z,Y).",
        )
        .unwrap();
        let tc = e.sym("tc");
        let a = e.constant("a");
        let goal = Atom::new(tc, vec![a, T::Var(Var(0))]);
        let m = e.run_for_query(&goal, &EvalOptions::default()).unwrap();
        let dump = e.render_profile(&m);
        assert!(dump.contains("magic-sets rewrite fired"), "{dump}");
        assert!(dump.contains("magic: adorned_rules="), "{dump}");
        // A full run reports no rewrite.
        let full = e.run(&EvalOptions::default()).unwrap();
        let dump = e.render_profile(&full);
        assert!(!dump.contains("magic-sets rewrite fired"), "{dump}");
    }

    #[test]
    fn aggregate_rules_explain_without_premises() {
        let mut e = Engine::new();
        e.load(
            "v(g, 1). v(g, 2).
             s(G, N) :- N = count{ X [G] : v(G, X) }.",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        let s = e.sym("s");
        let g = e.constant("g");
        let d = e.explain(&m, s, &[g, Term::Int(2)], 4).unwrap();
        // The aggregate contributes no positive premises but the rule is
        // identified.
        assert!(matches!(d.via, DerivationStep::Rule { .. }));
    }
}
