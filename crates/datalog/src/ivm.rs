//! Incremental view maintenance: applying a staged [`EngineDelta`] to a
//! cached model instead of re-deriving it from scratch.
//!
//! [`crate::Engine::apply_delta`] walks the stratification of the
//! *current* rule set and picks, per stratum, the cheapest maintenance
//! mode that is sound for what actually changed beneath it:
//!
//! * **reuse** — no predicate in the stratum grew, shrank, or changed
//!   rules: the previous model's relations are `Arc`-shared wholesale
//!   (zero derivation work, zero copying);
//! * **additions** — inputs only grew (monotone): the stratum is seeded
//!   with its previous extension and the novel facts ride semi-naive
//!   delta rounds, with the delta matched at *every* positive body
//!   position (new facts can arrive through any input predicate, not
//!   just same-stratum ones);
//! * **retractions** — inputs only shrank: DRed-style maintenance.
//!   Overdelete every fact whose old-state derivation consumed a
//!   retracted/vanished fact (matching the rest of the body against the
//!   *old* model), then rederive overdeleted facts that still have an
//!   alternative derivation from the surviving facts, head-directed so
//!   the work is proportional to the overdeletion set;
//! * **rebuild** — non-monotone residue (changed rules, or a stratum
//!   reached both by additions and retractions, or through
//!   negation/aggregation): the stratum alone is re-evaluated cold and
//!   diffed against the base to keep the novel/vanished frontiers exact
//!   for downstream strata.
//!
//! A stratum whose cycle goes through negation keeps its locality: when
//! touched, it re-runs the alternating fixpoint over *its own rules only*,
//! against the already-maintained lower layers (the well-founded model
//! restricted to an SCC equals that SCC's well-founded model relative to
//! the two-valued strata below it). Only genuinely three-valued states —
//! a base model with undefined atoms, or a local fixpoint that leaves
//! atoms undefined — fall back to a full cold evaluation with
//! [`crate::EvalProfile::delta_fallback`] set, because the closed-world
//! maintenance modes cannot represent three-valued inputs downstream.
//!
//! The classification mirrors `Engine::seed_plan`'s soundness argument,
//! extended to shrinkage: a positive edge propagates grow→grow and
//! shrink→shrink; any non-monotone edge (negation, aggregation) from a
//! changed predicate marks the head as both, forcing the rebuild mode.
//! New or removed rules can never ride the additions mode: a delta round
//! only fires rule instantiations that touch a novel *fact*, so a new
//! rule over unchanged inputs would never fire at all.
//!
//! Statistics produced by `apply_delta` measure the *delta work*, not a
//! cold evaluation's: they are bit-identical across `eval_threads`
//! settings for identical mutation histories (the same contract as the
//! cold evaluator), but intentionally smaller than a cold rebuild's.

use crate::error::{DatalogError, Result};
use crate::eval::{
    check_cancelled, execute_round, naive_stratum, plan_rule, resolve_threads, seminaive_stratum,
    solve, EvalOptions, EvalProfile, EvalStats, IndexCounters, MatchCtx, Model, NegView, ParMeta,
    RulePlan, StratumProfile,
};
use crate::fact::{FactStore, Tuple};
use crate::interner::Sym;
use crate::program::Stratum;
use crate::rule::Rule;
use crate::term::{Subst, Term};
use crate::Engine;
use std::collections::{HashMap, HashSet};

/// A typed changelog of engine mutations since the last model was
/// published: asserted facts, retracted facts, and predicates whose
/// defining rules changed (rules added or removed).
///
/// Produced by [`Engine::take_delta`] once recording has been switched on
/// with [`Engine::begin_delta`]; consumed by [`Engine::apply_delta`].
/// Assert/retract pairs cancel: retracting a fact that was asserted since
/// the last publish erases it from the log instead of recording both.
#[derive(Debug, Default, Clone)]
pub struct EngineDelta {
    /// Facts asserted since the last publish (net of cancellations).
    pub(crate) added: FactStore,
    /// Facts retracted since the last publish (net of cancellations).
    pub(crate) removed: FactStore,
    /// Head predicates of rules added or removed since the last publish.
    pub(crate) changed_rule_preds: HashSet<Sym>,
}

impl EngineDelta {
    /// Whether nothing was mutated since the last publish.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed_rule_preds.is_empty()
    }

    /// Number of (net) asserted facts in the log.
    pub fn added_facts(&self) -> usize {
        self.added.len()
    }

    /// Number of (net) retracted facts in the log.
    pub fn removed_facts(&self) -> usize {
        self.removed.len()
    }

    /// Number of predicates whose rule set changed.
    pub fn changed_rules(&self) -> usize {
        self.changed_rule_preds.len()
    }

    /// Records an asserted fact, cancelling a pending retraction of the
    /// same fact if one exists.
    pub(crate) fn log_add(&mut self, pred: Sym, tuple: Tuple) {
        if !self.removed.remove(pred, &tuple) {
            self.added.insert(pred, tuple);
        }
    }

    /// Records a retracted fact, cancelling a pending assertion of the
    /// same fact if one exists.
    pub(crate) fn log_remove(&mut self, pred: Sym, tuple: &[Term]) {
        if !self.added.remove(pred, tuple) {
            self.removed.insert(pred, tuple.to_vec().into());
        }
    }

    /// Records a rule-set change for `pred` (rule added or removed).
    pub(crate) fn log_rule(&mut self, pred: Sym) {
        self.changed_rule_preds.insert(pred);
    }
}

/// Per-stratum maintenance mode (see module docs).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Reuse,
    Additions,
    Retractions,
    Rebuild,
}

fn has_facts(store: &FactStore, pred: Sym) -> bool {
    store.relation(pred).is_some_and(|r| !r.is_empty())
}

/// Classifies every predicate as grown and/or shrunk by propagating the
/// delta's seed sets through the dependency edges to a fixpoint.
fn classify(deps: &[(Sym, Sym, bool)], delta: &EngineDelta) -> (HashSet<Sym>, HashSet<Sym>) {
    let mut grow: HashSet<Sym> = delta
        .added
        .predicates()
        .filter(|&p| has_facts(&delta.added, p))
        .collect();
    let mut shrink: HashSet<Sym> = delta
        .removed
        .predicates()
        .filter(|&p| has_facts(&delta.removed, p))
        .collect();
    // A changed rule set can both add and remove derived facts.
    grow.extend(delta.changed_rule_preds.iter().copied());
    shrink.extend(delta.changed_rule_preds.iter().copied());
    loop {
        let mut changed = false;
        for &(h, b, nonmono) in deps {
            if nonmono && (grow.contains(&b) || shrink.contains(&b)) {
                changed |= grow.insert(h);
                changed |= shrink.insert(h);
            } else {
                if grow.contains(&b) {
                    changed |= grow.insert(h);
                }
                if shrink.contains(&b) {
                    changed |= shrink.insert(h);
                }
            }
        }
        if !changed {
            break;
        }
    }
    (grow, shrink)
}

/// Full cold re-evaluation, flagged as a delta fallback in the profile.
fn cold_fallback(engine: &Engine, rules: &[Rule], opts: &EvalOptions) -> Result<Model> {
    let mut model = engine.run_rules(rules, opts)?;
    model.profile.delta_applied = true;
    model.profile.delta_fallback = true;
    Ok(model)
}

/// Folds a sub-evaluation's counters (a stratum-local well-founded run)
/// into the delta run's totals.
fn merge_stats(into: &mut EvalStats, sub: &EvalStats) {
    into.iterations += sub.iterations;
    into.derived += sub.derived;
    into.depth_clipped += sub.depth_clipped;
    into.applications += sub.applications;
    into.index_builds += sub.index_builds;
    into.index_hits += sub.index_hits;
    into.index_misses += sub.index_misses;
}

/// Applies `delta` to `base` (a full model of the engine's *pre-delta*
/// state), producing the model the current engine state evaluates to —
/// see [`Engine::apply_delta`] for the contract.
pub(crate) fn apply_delta(
    engine: &Engine,
    base: &Model,
    delta: &EngineDelta,
    opts: &EvalOptions,
) -> Result<Model> {
    let rules = &engine.rules;
    let shape = engine.shape()?;
    let strat = &shape.strat;
    if !base.undefined.is_empty() {
        // A three-valued base gives the maintenance modes nothing sound to
        // seed from (an undefined atom is neither in nor out of the old
        // extension); re-evaluate cold and say so in the profile.
        return cold_fallback(engine, rules, opts);
    }
    let (grow, shrink) = classify(&shape.deps, delta);
    let mut stratum_of: HashMap<Sym, usize> = HashMap::new();
    for (i, s) in strat.strata.iter().enumerate() {
        for &p in &s.preds {
            stratum_of.insert(p, i);
        }
    }
    let modes: Vec<Mode> = strat
        .strata
        .iter()
        .map(|s| {
            let rule_changed = s.preds.iter().any(|p| delta.changed_rule_preds.contains(p));
            let g = s.preds.iter().any(|p| grow.contains(p));
            let sh = s.preds.iter().any(|p| shrink.contains(p));
            let mode = match (rule_changed, g, sh) {
                (true, _, _) | (false, true, true) => Mode::Rebuild,
                (false, false, false) => Mode::Reuse,
                (false, true, false) => Mode::Additions,
                (false, false, true) => Mode::Retractions,
            };
            // Semi-naive/DRed rounds are unsound through a negation cycle;
            // a touched WFS stratum always re-runs its alternating
            // fixpoint. (Unreachable in practice: `classify` marks every
            // predicate of a touched WFS component as both grown and
            // shrunk, but keep the guard explicit.)
            if s.wfs && mode != Mode::Reuse {
                Mode::Rebuild
            } else {
                mode
            }
        })
        .collect();

    // Frontiers threaded through the strata in evaluation order: facts
    // that are new relative to the base model, and facts that vanished.
    let mut novel = delta.added.clone();
    let mut gone = delta.removed.clone();
    // A predicate whose every rule was removed is in no stratum: its
    // extension collapses to its stored facts, and everything else it
    // used to hold is gone for downstream consumers.
    for &p in &delta.changed_rule_preds {
        if stratum_of.contains_key(&p) {
            continue;
        }
        if let Some(brel) = base.facts.relation(p) {
            let erel = engine.edb.relation(p);
            for t in brel.iter() {
                if !erel.is_some_and(|r| r.contains(t)) {
                    gone.insert(p, t.clone());
                }
            }
        }
    }

    let mut stats = EvalStats::default();
    let mut profile = EvalProfile {
        delta_applied: true,
        ..Default::default()
    };
    let cap = resolve_threads(opts.eval_threads);
    profile.eval_threads = cap;

    // Seed the extensional layer. Predicates owned by a stratum that
    // seeds itself from the base (reuse/additions/retractions) are left
    // to their stratum step; rebuild strata and pure-EDB predicates take
    // the engine's current relations. Unchanged pure-EDB relations share
    // the *base* handle so successive snapshots stay pointer-equal.
    let mut total = FactStore::new();
    for p in engine.edb.predicates() {
        match stratum_of.get(&p) {
            None => {
                let unchanged = !has_facts(&delta.added, p) && !has_facts(&delta.removed, p);
                if unchanged {
                    if let Some(arc) = base.facts.relation_arc(p) {
                        total.set_relation(p, arc);
                        continue;
                    }
                }
                if let Some(arc) = engine.edb.relation_arc(p) {
                    total.set_relation(p, arc);
                }
            }
            Some(&i) => {
                if modes[i] == Mode::Rebuild {
                    if let Some(arc) = engine.edb.relation_arc(p) {
                        total.set_relation(p, arc);
                    }
                }
            }
        }
    }

    for (i, stratum) in strat.strata.iter().enumerate() {
        let mut sp = StratumProfile {
            preds: stratum.preds.clone(),
            recursive: stratum.recursive,
            ..Default::default()
        };
        if modes[i] == Mode::Reuse {
            for &p in &stratum.preds {
                if let Some(arc) = base.facts.relation_arc(p) {
                    total.set_relation(p, arc);
                }
            }
            sp.skipped = true;
            profile.delta_reused_strata += 1;
            profile.strata.push(sp);
            continue;
        }
        let stratum_preds: HashSet<Sym> = stratum.preds.iter().copied().collect();
        if modes[i] != Mode::Rebuild {
            // Additions/retractions start from the previous extension.
            for &p in &stratum.preds {
                if let Some(arc) = base.facts.relation_arc(p) {
                    total.set_relation(p, arc);
                }
            }
        }
        // A WFS stratum re-plans inside the alternating fixpoint (every
        // IDB predicate costed as unbounded there); planning here would be
        // thrown away.
        let wfs_rebuild = stratum.wfs && modes[i] == Mode::Rebuild;
        let prepared: Vec<(Rule, RulePlan)> = if wfs_rebuild {
            Vec::new()
        } else {
            stratum
                .rules
                .iter()
                .map(|&ri| plan_rule(&rules[ri], &total, &stratum_preds, opts))
                .collect()
        };
        sp.plans = prepared.iter().map(|(_, p)| p.clone()).collect();
        let counters = IndexCounters::default();
        let mut par = ParMeta::new();
        let before = stats;
        match modes[i] {
            Mode::Reuse => unreachable!("handled above"),
            Mode::Additions => {
                maintain_additions(
                    stratum, &prepared, delta, &mut total, &mut novel, &mut stats, &counters, opts,
                    cap, &mut par,
                )?;
                profile.delta_incremental_strata += 1;
            }
            Mode::Retractions => {
                maintain_retractions(
                    stratum, &prepared, delta, base, &mut total, &mut gone, &mut stats, &counters,
                    opts,
                )?;
                profile.delta_incremental_strata += 1;
            }
            Mode::Rebuild => {
                if stratum.wfs {
                    // Stratum-local alternating fixpoint over the already-
                    // maintained lower layers: the global well-founded
                    // model restricted to one SCC equals that SCC's
                    // well-founded model relative to the (two-valued)
                    // strata below it, so locality survives negation
                    // cycles as long as the local model stays two-valued.
                    let planned = engine.wfs_stratum_plan(
                        i,
                        || stratum.rules.iter().map(|&ri| rules[ri].clone()).collect(),
                        &total,
                        opts,
                    );
                    let sub = crate::wfs::eval_well_founded_planned(&planned, &total, opts)?;
                    if !sub.undefined.is_empty() {
                        // Three-valued residue: downstream strata would
                        // need three-valued inputs the closed-world
                        // maintenance modes cannot represent.
                        return cold_fallback(engine, rules, opts);
                    }
                    for &p in &stratum.preds {
                        if let Some(arc) = sub.facts.relation_arc(p) {
                            total.set_relation(p, arc);
                        }
                    }
                    merge_stats(&mut stats, &sub.stats);
                    profile.well_founded = true;
                    // Surface the inner run's plans and parallelism in
                    // this stratum's profile slot.
                    if let Some(s0) = sub.profile.strata.into_iter().next() {
                        sp.plans = s0.plans;
                        par.threads_used = s0.threads_used;
                        par.partitions = s0.partitions;
                    }
                } else {
                    rebuild_stratum(
                        stratum,
                        &prepared,
                        &stratum_preds,
                        &mut total,
                        &mut stats,
                        &counters,
                        opts,
                        cap,
                        &mut par,
                    )?;
                }
                // Exact diff against the base keeps downstream frontiers
                // tight.
                for &p in &stratum.preds {
                    let new_rel = total.relation(p);
                    let old_rel = base.facts.relation(p);
                    if let Some(nr) = new_rel {
                        for t in nr.iter() {
                            if !old_rel.is_some_and(|o| o.contains(t)) {
                                novel.insert(p, t.clone());
                            }
                        }
                    }
                    if let Some(or) = old_rel {
                        for t in or.iter() {
                            if !new_rel.is_some_and(|n| n.contains(t)) {
                                gone.insert(p, t.clone());
                            }
                        }
                    }
                }
                profile.delta_rebuilt_strata += 1;
            }
        }
        sp.iterations = stats.iterations - before.iterations;
        sp.derived = stats.derived - before.derived;
        counters.fold_into(&mut stats);
        sp.threads_used = par.threads_used;
        sp.partitions = par.partitions;
        profile.strata.push(sp);
    }
    Ok(Model {
        facts: total,
        undefined: FactStore::new(),
        stats,
        profile,
    })
}

/// Monotone maintenance: novel facts ride semi-naive delta rounds on top
/// of the seeded previous extension. The delta is matched at every
/// positive body position; duplicate firings (an instantiation touching
/// two novel facts) collapse on the `total`-membership check exactly as
/// in the cold semi-naive engine.
#[allow(clippy::too_many_arguments)]
fn maintain_additions(
    stratum: &Stratum,
    prepared: &[(Rule, RulePlan)],
    delta: &EngineDelta,
    total: &mut FactStore,
    novel: &mut FactStore,
    stats: &mut EvalStats,
    counters: &IndexCounters,
    opts: &EvalOptions,
    cap: usize,
    par: &mut ParMeta,
) -> Result<()> {
    // Asserted base facts of this stratum's own predicates join the
    // extension directly (they are already in the novel frontier).
    for &p in &stratum.preds {
        if let Some(rel) = delta.added.relation(p) {
            for t in rel.iter() {
                total.insert(p, t.clone());
            }
        }
    }
    let mut units: Vec<(&Rule, Option<usize>)> = Vec::new();
    for (r, _) in prepared {
        for di in r.positive_atom_indices() {
            units.push((r, Some(di)));
        }
    }
    let mut frontier = novel.clone();
    let mut stratum_new = FactStore::new();
    loop {
        check_cancelled(opts, stats)?;
        stats.iterations += 1;
        if stats.iterations > opts.max_iterations {
            return Err(DatalogError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let out = execute_round(
            &units,
            total,
            Some(&frontier),
            NegView::Closed,
            opts,
            cap,
            counters,
            stats,
            par,
        );
        let added = total.absorb(&out);
        stats.derived += added;
        if added == 0 {
            break;
        }
        stratum_new.absorb(&out);
        frontier = out;
    }
    novel.absorb(&stratum_new);
    Ok(())
}

/// DRed maintenance: overdelete everything whose old-state derivation
/// consumed a vanished fact, then rederive the overdeleted facts that
/// still have a derivation from the survivors (head-directed, so the
/// rederivation cost follows the overdeletion set, not the stratum).
#[allow(clippy::too_many_arguments)]
fn maintain_retractions(
    stratum: &Stratum,
    prepared: &[(Rule, RulePlan)],
    delta: &EngineDelta,
    base: &Model,
    total: &mut FactStore,
    gone: &mut FactStore,
    stats: &mut EvalStats,
    counters: &IndexCounters,
    opts: &EvalOptions,
) -> Result<()> {
    // Direct retractions of stored facts. They join the overdeletion
    // set: a retracted stored fact survives if a rule still derives it.
    let mut od_total = FactStore::new();
    for &p in &stratum.preds {
        if let Some(rel) = delta.removed.relation(p) {
            let tuples: Vec<Tuple> = rel.iter().cloned().collect();
            for t in tuples {
                if total.remove(p, &t) {
                    od_total.insert(p, t);
                }
            }
        }
    }
    // Phase 1 — overdeletion. Bodies match against the *old* state
    // (`base.facts`): sound because every input of this stratum only
    // shrank, so the old state over-approximates every derivation that
    // could have existed.
    let mut frontier = gone.clone();
    loop {
        check_cancelled(opts, stats)?;
        stats.iterations += 1;
        if stats.iterations > opts.max_iterations {
            return Err(DatalogError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let mut next = FactStore::new();
        for (r, _) in prepared {
            for di in r.positive_atom_indices() {
                let ctx = MatchCtx {
                    total: &base.facts,
                    delta: Some((&frontier, di)),
                    neg: NegView::Closed,
                    use_index: opts.use_index,
                    counters,
                };
                let head = &r.head;
                let mut subst = Subst::with_capacity(r.nvars as usize);
                solve(&r.body, 0, &mut subst, &ctx, &mut |s: &Subst| {
                    let args: Vec<Term> = head.args.iter().map(|t| t.apply(s)).collect();
                    if total.contains(head.pred, &args) && !od_total.contains(head.pred, &args) {
                        next.insert(head.pred, args.into());
                    }
                });
            }
        }
        if next.is_empty() {
            break;
        }
        od_total.absorb(&next);
        frontier = next;
    }
    let od_preds: Vec<Sym> = od_total.predicates().collect();
    for &p in &od_preds {
        if let Some(rel) = od_total.relation(p) {
            let tuples: Vec<Tuple> = rel.iter().cloned().collect();
            for t in tuples {
                total.remove(p, &t);
            }
        }
    }
    // Phase 2 — rederivation: an overdeleted fact survives iff some rule
    // instantiation still derives it from the remaining facts. Passes
    // repeat because a rederived fact can support another overdeleted
    // one.
    loop {
        check_cancelled(opts, stats)?;
        let mut readded = 0usize;
        for (r, _) in prepared {
            let head = &r.head;
            let Some(od) = od_total.relation(head.pred) else {
                continue;
            };
            let tuples: Vec<Tuple> = od.iter().cloned().collect();
            for t in tuples {
                if total.contains(head.pred, &t) || head.args.len() != t.len() {
                    continue;
                }
                let mut subst = Subst::with_capacity(r.nvars as usize);
                if !head
                    .args
                    .iter()
                    .zip(t.iter())
                    .all(|(p, v)| subst.match_term(p, v))
                {
                    continue;
                }
                let mut derivable = false;
                {
                    let ctx = MatchCtx {
                        total,
                        delta: None,
                        neg: NegView::Closed,
                        use_index: opts.use_index,
                        counters,
                    };
                    solve(&r.body, 0, &mut subst, &ctx, &mut |_| {
                        derivable = true;
                    });
                }
                if derivable && total.insert(head.pred, t) {
                    readded += 1;
                }
            }
        }
        stats.derived += readded;
        if readded == 0 {
            break;
        }
    }
    // Facts that stayed dead are gone for downstream strata; rederived
    // survivors are scrubbed from the frontier (a retracted stored fact
    // a rule still derives never actually left the extension).
    for &p in &od_preds {
        if let Some(rel) = od_total.relation(p) {
            for t in rel.iter() {
                if total.contains(p, t) {
                    gone.remove(p, t);
                } else {
                    gone.insert(p, t.clone());
                }
            }
        }
    }
    Ok(())
}

/// Cold re-evaluation of a single stratum over the already-maintained
/// lower layers in `total` — the same three execution paths as the cold
/// stratified evaluator.
#[allow(clippy::too_many_arguments)]
fn rebuild_stratum(
    stratum: &Stratum,
    prepared: &[(Rule, RulePlan)],
    stratum_preds: &HashSet<Sym>,
    total: &mut FactStore,
    stats: &mut EvalStats,
    counters: &IndexCounters,
    opts: &EvalOptions,
    cap: usize,
    par: &mut ParMeta,
) -> Result<()> {
    let stratum_rules: Vec<&Rule> = prepared.iter().map(|(r, _)| r).collect();
    if !stratum.recursive {
        let units: Vec<(&Rule, Option<usize>)> = stratum_rules.iter().map(|&r| (r, None)).collect();
        let out = execute_round(
            &units,
            total,
            None,
            NegView::Closed,
            opts,
            cap,
            counters,
            stats,
            par,
        );
        stats.derived += total.absorb(&out);
        stats.iterations += 1;
        Ok(())
    } else if opts.semi_naive {
        seminaive_stratum(
            &stratum_rules,
            stratum_preds,
            total,
            stats,
            counters,
            opts,
            cap,
            par,
        )
    } else {
        naive_stratum(&stratum_rules, total, stats, counters, opts, cap, par)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Tuple};
    use std::collections::HashSet as Set;

    fn facts_of(m: &Model, e: &Engine, pred: &str) -> Set<Tuple> {
        e.lookup(pred)
            .and_then(|p| m.facts.relation(p).map(|r| r.iter().cloned().collect()))
            .unwrap_or_default()
    }

    fn assert_models_agree(inc: &Model, cold: &Model, e: &Engine) {
        let preds: Set<Sym> = inc
            .facts
            .predicates()
            .chain(cold.facts.predicates())
            .collect();
        for p in preds {
            let a: Set<Tuple> = inc
                .facts
                .relation(p)
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            let b: Set<Tuple> = cold
                .facts
                .relation(p)
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            assert_eq!(a, b, "extension mismatch for {}", e.name(p));
        }
    }

    #[test]
    fn additions_ride_delta_rounds_and_reuse_untouched_strata() {
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c). other(x).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).
             big(X) :- other(X).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.begin_delta();
        e.add_fact_strs("e", &["c", "d"]).unwrap();
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        assert_eq!(facts_of(&inc, &e, "tc").len(), 6);
        assert!(inc.profile.delta_applied);
        assert!(inc.profile.delta_incremental_strata >= 1);
        // `big`'s stratum never saw the delta: its relation is the very
        // same allocation as the base model's.
        let big = e.lookup("big").unwrap();
        assert!(inc.facts.shares_relation(big, &base.facts));
        assert!(inc.profile.delta_reused_strata >= 1);
        // Far less work than the cold run.
        assert!(inc.stats.derived < cold.stats.derived);
    }

    #[test]
    fn retractions_overdelete_and_rederive() {
        let mut e = Engine::new();
        // Diamond: a→b→d and a→c→d, so tc(a,d) has two derivations.
        e.load(
            "e(a,b). e(b,d). e(a,c). e(c,d).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.begin_delta();
        let ep = e.lookup("e").unwrap();
        let b = e.constant("b");
        let a = e.constant("a");
        let d = e.constant("d");
        assert!(e.remove_fact(ep, &[a.clone(), b.clone()]));
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        let tc = e.lookup("tc").unwrap();
        // tc(a,d) survives through the a→c→d path; tc(a,b) is gone.
        assert!(inc.holds(tc, &[a.clone(), d.clone()]));
        assert!(!inc.holds(tc, &[a.clone(), b.clone()]));
        assert!(inc.profile.delta_incremental_strata >= 1);
    }

    #[test]
    fn retraction_through_negation_rebuilds_dependent_stratum() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b). bad(a).
             good(X) :- n(X), not bad(X).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.begin_delta();
        let bad = e.lookup("bad").unwrap();
        let a = e.constant("a");
        assert!(e.remove_fact(bad, std::slice::from_ref(&a)));
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        let good = e.lookup("good").unwrap();
        assert!(inc.holds(good, &[a]));
        assert_eq!(facts_of(&inc, &e, "good").len(), 2);
        assert!(inc.profile.delta_rebuilt_strata >= 1);
    }

    #[test]
    fn new_rule_forces_stratum_rebuild_not_delta_rounds() {
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c).
             tc(X,Y) :- e(X,Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.begin_delta();
        // A new rule over *unchanged* inputs: a pure delta round would
        // never fire it.
        e.load("tc(X,Y) :- tc(X,Z), e(Z,Y).").unwrap();
        let delta = e.take_delta().unwrap();
        assert_eq!(delta.changed_rules(), 1);
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        assert_eq!(facts_of(&inc, &e, "tc").len(), 3);
        assert!(inc.profile.delta_rebuilt_strata >= 1);
    }

    #[test]
    fn removed_rules_retract_their_derivations_downstream() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b).
             view(X) :- n(X).
             uses(X) :- view(X).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        let nrules = e.rules().len();
        e.begin_delta();
        // Remove the `view` rule (simulating a popped temporary view).
        e.remove_rules(nrules - 2, nrules - 1);
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        assert!(facts_of(&inc, &e, "view").is_empty());
        assert!(facts_of(&inc, &e, "uses").is_empty());
    }

    #[test]
    fn assert_retract_pairs_cancel_in_the_log() {
        let mut e = Engine::new();
        e.load("p(a).").unwrap();
        e.begin_delta();
        e.add_fact_strs("p", &["b"]).unwrap();
        let p = e.lookup("p").unwrap();
        let b = e.constant("b");
        assert!(e.remove_fact(p, std::slice::from_ref(&b)));
        let delta = e.take_delta().unwrap();
        assert!(delta.is_empty(), "add+remove must cancel: {delta:?}");
        // And the reverse order: removing an old fact then re-adding it.
        e.begin_delta();
        let a = e.constant("a");
        assert!(e.remove_fact(p, std::slice::from_ref(&a)));
        e.add_fact(p, vec![a.clone()]).unwrap();
        let delta = e.take_delta().unwrap();
        assert!(delta.is_empty(), "remove+add must cancel: {delta:?}");
    }

    #[test]
    fn wfs_stratum_rebuilds_locally_without_fallback() {
        let mut e = Engine::new();
        e.load(
            "move(p0,p1). move(p1,p2). color(p0,red).
             win(X) :- move(X,Y), not win(Y).
             hue(C) :- color(X,C).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        assert!(base.undefined.is_empty());
        e.begin_delta();
        e.add_fact_strs("move", &["p2", "p3"]).unwrap();
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        // The negation cycle is confined to `win`'s stratum: it re-runs
        // its alternating fixpoint locally instead of dragging the whole
        // program through a cold rebuild.
        assert!(!inc.profile.delta_fallback);
        assert!(inc.profile.delta_rebuilt_strata >= 1);
        assert!(inc.profile.well_founded);
        // The untouched `hue` stratum is reused wholesale.
        assert!(inc.profile.delta_reused_strata >= 1);
        let hue = e.lookup("hue").unwrap();
        assert!(inc.facts.shares_relation(hue, &base.facts));
    }

    #[test]
    fn delta_that_introduces_undefined_falls_back_to_cold() {
        let mut e = Engine::new();
        e.load(
            "move(p0,p1).
             win(X) :- move(X,Y), not win(Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        assert!(base.undefined.is_empty());
        e.begin_delta();
        // A self-loop makes win(p1) — and hence win(p0) — undefined: the
        // local fixpoint's residue forces the cold path.
        e.add_fact_strs("move", &["p1", "p1"]).unwrap();
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        assert!(inc.profile.delta_fallback);
        let win = e.lookup("win").unwrap();
        let p1 = e.constant("p1");
        assert!(inc.is_undefined(win, &[p1]));
    }

    #[test]
    fn three_valued_base_model_falls_back_to_cold() {
        let mut e = Engine::new();
        e.load(
            "move(p0,p0).
             win(X) :- move(X,Y), not win(Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        assert!(!base.undefined.is_empty());
        e.begin_delta();
        e.add_fact_strs("move", &["p1", "p2"]).unwrap();
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        assert!(inc.profile.delta_fallback);
    }

    #[test]
    fn aggregate_downstream_of_change_is_rebuilt() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b). m(a).
             un(X) :- n(X), not m(X).
             cnt(C) :- C = count{ X : un(X) }.",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        let cnt = e.lookup("cnt").unwrap();
        assert!(base.holds(cnt, &[Term::Int(1)]));
        e.begin_delta();
        e.add_fact_strs("n", &["c"]).unwrap();
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        assert!(inc.holds(cnt, &[Term::Int(2)]));
        assert!(!inc.holds(cnt, &[Term::Int(1)]));
    }

    #[test]
    fn mixed_interleaving_matches_cold_at_every_step() {
        let mut e = Engine::new();
        e.load(
            "e(n0,n1). e(n1,n2). e(n2,n3).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let mut model = e.run(&opts).unwrap();
        e.begin_delta();
        let ep = e.lookup("e").unwrap();
        let script: Vec<(bool, &str, &str)> = vec![
            (true, "n3", "n4"),
            (true, "n4", "n0"), // closes a cycle
            (false, "n1", "n2"),
            (true, "n1", "n2"), // cancels the retraction
            (false, "n4", "n0"),
            (false, "n0", "n1"),
        ];
        for (add, x, y) in script {
            let tx = e.constant(x);
            let ty = e.constant(y);
            if add {
                e.add_fact(ep, vec![tx, ty]).unwrap();
            } else {
                assert!(e.remove_fact(ep, &[tx, ty]));
            }
            let delta = e.take_delta().unwrap();
            model = e.apply_delta(&model, &delta, &opts).unwrap();
            let cold = e.run(&opts).unwrap();
            assert_models_agree(&model, &cold, &e);
        }
    }

    #[test]
    fn empty_delta_reuses_every_stratum() {
        let mut e = Engine::new();
        e.load("e(a,b). tc(X,Y) :- e(X,Y).").unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.begin_delta();
        let delta = e.take_delta().unwrap();
        assert!(delta.is_empty());
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        assert_models_agree(&inc, &base, &e);
        let tc = e.lookup("tc").unwrap();
        let ep = e.lookup("e").unwrap();
        assert!(inc.facts.shares_relation(tc, &base.facts));
        assert!(inc.facts.shares_relation(ep, &base.facts));
        assert_eq!(inc.stats.derived, 0);
    }

    #[test]
    fn delta_stats_are_thread_count_invariant() {
        let mut engines: Vec<Engine> = Vec::new();
        for _ in 0..2 {
            let mut e = Engine::new();
            let mut text = String::new();
            for i in 0..40 {
                text.push_str(&format!("e(n{i},n{}).\n", i + 1));
            }
            text.push_str("tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y).\n");
            e.load(&text).unwrap();
            engines.push(e);
        }
        let mk_opts = |threads: usize| EvalOptions {
            eval_threads: threads,
            ..Default::default()
        };
        let mut models: Vec<Model> = Vec::new();
        for (e, threads) in engines.iter_mut().zip([1usize, 8]) {
            let opts = mk_opts(threads);
            let base = e.run(&opts).unwrap();
            e.begin_delta();
            e.add_fact_strs("e", &["n41", "n42"]).unwrap();
            e.add_fact_strs("e", &["n40", "n41"]).unwrap();
            let delta = e.take_delta().unwrap();
            models.push(e.apply_delta(&base, &delta, &opts).unwrap());
        }
        assert_eq!(models[0].stats, models[1].stats);
        assert_eq!(
            models[0].profile.delta_incremental_strata,
            models[1].profile.delta_incremental_strata
        );
        let e = &engines[0];
        let tc = e.lookup("tc").unwrap();
        let a: Set<Tuple> = models[0]
            .facts
            .relation(tc)
            .unwrap()
            .iter()
            .cloned()
            .collect();
        let b: Set<Tuple> = models[1]
            .facts
            .relation(tc)
            .unwrap()
            .iter()
            .cloned()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn edb_only_unchanged_relations_share_base_allocations() {
        let mut e = Engine::new();
        e.load("p(a). q(b). r(c). tc(X) :- p(X).").unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.begin_delta();
        e.add_fact_strs("q", &["b2"]).unwrap();
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        // r never changed: shares the base allocation. q changed: doesn't.
        let r = e.lookup("r").unwrap();
        let q = e.lookup("q").unwrap();
        assert!(inc.facts.shares_relation(r, &base.facts));
        assert!(!inc.facts.shares_relation(q, &base.facts));
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
    }

    #[test]
    fn removed_edb_fact_still_derivable_by_rule_survives() {
        let mut e = Engine::new();
        // p has both stored facts and a rule; removing the stored p(b)
        // must keep p(b) when the rule still derives it.
        e.load("p(b). q(b). p(X) :- q(X).").unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.begin_delta();
        let p = e.lookup("p").unwrap();
        let b = e.constant("b");
        assert!(e.remove_fact(p, std::slice::from_ref(&b)));
        let delta = e.take_delta().unwrap();
        let inc = e.apply_delta(&base, &delta, &opts).unwrap();
        let cold = e.run(&opts).unwrap();
        assert_models_agree(&inc, &cold, &e);
        assert!(inc.holds(p, &[b]));
    }
}
