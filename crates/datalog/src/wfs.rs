//! Well-founded semantics via the alternating fixpoint.
//!
//! The GCM requires Datalog with well-founded negation (§3: "a declarative
//! rule language with an intuitive semantics that expresses precisely
//! FO(LFP)"), and the paper's nonmonotonic inheritance ("if we want to
//! specify that it *only* projects to the latter, a nonmonotonic
//! inheritance, e.g. using FL with well-founded semantics, can be
//! employed", §4) needs the three-valued reading.
//!
//! We compute the standard alternating fixpoint: with `Γ(J)` the least
//! model of the positive reduct wrt `J`, the sequence
//! `L₀ = EDB, U₀ = Γ(L₀), Lᵢ₊₁ = Γ(Uᵢ), Uᵢ₊₁ = Γ(Lᵢ₊₁)` converges; the
//! final `L` holds the well-founded *true* atoms and `U \ L` the
//! *undefined* ones.

use crate::error::{DatalogError, Result};
use crate::eval::{gamma, plan_rule, EvalOptions, EvalProfile, EvalStats, Model, StratumProfile};
use crate::fact::FactStore;
use crate::rule::Rule;
use std::collections::HashSet;

/// A rule set planned for the alternating fixpoint: bodies reordered by
/// the join planner, with the plans kept for profiling. Planning costs a
/// pass over the EDB, so staged-delta republishes memoize this per
/// stratum on the engine ([`crate::Engine`]) instead of re-planning on
/// every publish.
#[derive(Debug)]
pub(crate) struct PlannedWfs {
    pub(crate) rules: Vec<Rule>,
    pub(crate) plans: Vec<crate::eval::RulePlan>,
    preds: Vec<crate::interner::Sym>,
}

/// Plans `rules` for [`eval_well_founded_planned`]. Join planning happens
/// once against the EDB: the reduct is re-evaluated many times, with
/// every IDB predicate costed as unbounded (its extension varies across
/// sweeps).
pub(crate) fn plan_wfs(rules: &[Rule], edb: &FactStore, opts: &EvalOptions) -> PlannedWfs {
    let idb: HashSet<crate::interner::Sym> = rules.iter().map(|r| r.head.pred).collect();
    let planned: Vec<(Rule, crate::eval::RulePlan)> = rules
        .iter()
        .map(|r| plan_rule(r, edb, &idb, opts))
        .collect();
    let (rules, plans): (Vec<Rule>, Vec<crate::eval::RulePlan>) = planned.into_iter().unzip();
    PlannedWfs {
        rules,
        plans,
        preds: idb.into_iter().collect(),
    }
}

/// Evaluates `rules` over `edb` under the well-founded semantics.
pub(crate) fn eval_well_founded(
    rules: &[Rule],
    edb: &FactStore,
    opts: &EvalOptions,
) -> Result<Model> {
    eval_well_founded_planned(&plan_wfs(rules, edb, opts), edb, opts)
}

/// [`eval_well_founded`] over an already-planned rule set.
pub(crate) fn eval_well_founded_planned(
    planned: &PlannedWfs,
    edb: &FactStore,
    opts: &EvalOptions,
) -> Result<Model> {
    let mut stats = EvalStats::default();
    let rules = &planned.rules;
    let mut summary = StratumProfile {
        preds: planned.preds.clone(),
        recursive: true,
        plans: planned.plans.clone(),
        ..Default::default()
    };
    let counters = crate::eval::IndexCounters::default();
    // Both phases of every sweep reuse the stratified engine's partitioned
    // round executor; `cap`/`par` carry the thread budget and telemetry
    // across the whole alternating fixpoint.
    let cap = crate::eval::resolve_threads(opts.eval_threads);
    let mut par = crate::eval::ParMeta::new();
    let mut lower = edb.clone();
    let mut sweeps = 0usize;
    let (facts, undefined) = loop {
        // Sweep boundary: the same cooperative cancellation check the
        // stratified loops run at round boundaries (each `gamma` below
        // also checks per round).
        crate::eval::check_cancelled(opts, &stats)?;
        sweeps += 1;
        if sweeps > opts.max_iterations {
            return Err(DatalogError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let upper = gamma(
            rules, edb, &lower, &mut stats, &counters, opts, cap, &mut par,
        )?;
        // The lower sequence stays below every upper (both monotone toward
        // the fixpoint), so size equality implies set equality throughout.
        // `Γ(lower) == lower` means the fixpoint is *total* — the
        // two-valued well-founded model, nothing undefined — and the
        // second gamma of this sweep would only reconfirm it.
        if upper.len() == lower.len() {
            break (upper, FactStore::new());
        }
        let new_lower = gamma(
            rules, edb, &upper, &mut stats, &counters, opts, cap, &mut par,
        )?;
        // `Lᵢ₊₁ = Γ(Uᵢ) ⊆ Γ(Lᵢ) = Uᵢ` (Γ antitone, `Lᵢ ⊆ Uᵢ`), so size
        // equality here means `Lᵢ₊₁ = Uᵢ` — making `Lᵢ₊₁` a fixpoint of Γ
        // (`Γ(Lᵢ₊₁) = Γ(Uᵢ) = Lᵢ₊₁`): the total two-valued model. The next
        // sweep's first gamma would only reconfirm it.
        if new_lower.len() == upper.len() {
            break (new_lower, FactStore::new());
        }
        if new_lower.len() == lower.len() {
            let mut undefined = FactStore::new();
            for (p, t) in upper.iter() {
                if !new_lower.contains(p, t) {
                    undefined.insert(p, t.clone());
                }
            }
            break (new_lower, undefined);
        }
        lower = new_lower;
    };
    counters.fold_into(&mut stats);
    summary.iterations = stats.iterations;
    summary.derived = stats.derived;
    summary.index_builds = stats.index_builds;
    summary.index_hits = stats.index_hits;
    summary.index_misses = stats.index_misses;
    summary.threads_used = par.threads_used;
    summary.partitions = par.partitions;
    Ok(Model {
        facts,
        undefined,
        stats,
        profile: EvalProfile {
            strata: vec![summary],
            well_founded: true,
            eval_threads: cap,
            ..Default::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, BodyItem};
    use crate::fact::FactStore;
    use crate::interner::Interner;
    use crate::term::{Term, Var};

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    /// The classic "win" example: a position is winning iff some move
    /// leads to a non-winning position. On a cycle, positions come out
    /// undefined; on a finite path, they alternate.
    #[test]
    fn win_move_game() {
        let mut syms = Interner::new();
        let mv = syms.intern("move");
        let win = syms.intern("win");
        let mut edb = FactStore::new();
        let n: Vec<Term> = (0..4)
            .map(|i| Term::Const(syms.intern(&format!("p{i}"))))
            .collect();
        // Path: p0 -> p1 -> p2 (p2 terminal: lost). Cycle: p3 -> p3.
        edb.insert(mv, vec![n[0].clone(), n[1].clone()].into());
        edb.insert(mv, vec![n[1].clone(), n[2].clone()].into());
        edb.insert(mv, vec![n[3].clone(), n[3].clone()].into());
        let rules = vec![Rule::compile(
            Atom::new(win, vec![v(0)]),
            vec![
                BodyItem::Pos(Atom::new(mv, vec![v(0), v(1)])),
                BodyItem::Neg(Atom::new(win, vec![v(1)])),
            ],
            2,
            vec!["X".into(), "Y".into()],
        )
        .unwrap()];
        let m = eval_well_founded(&rules, &edb, &EvalOptions::default()).unwrap();
        // p2 has no moves: lost => p1 wins => p0 loses.
        assert!(m.holds(win, &[n[1].clone()]));
        assert!(!m.holds(win, &[n[0].clone()]));
        assert!(!m.is_undefined(win, &[n[0].clone()]));
        assert!(!m.holds(win, &[n[2].clone()]));
        // The self-loop position is undefined.
        assert!(m.is_undefined(win, &[n[3].clone()]));
    }

    /// A stratified program evaluated through the WFS path must agree with
    /// the stratified evaluator (no undefined atoms).
    #[test]
    fn wfs_agrees_with_stratified_on_stratified_programs() {
        let mut syms = Interner::new();
        let node = syms.intern("node");
        let marked = syms.intern("marked");
        let un = syms.intern("unmarked");
        let mut edb = FactStore::new();
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        edb.insert(node, vec![a.clone()].into());
        edb.insert(node, vec![b.clone()].into());
        edb.insert(marked, vec![a.clone()].into());
        let rules = vec![Rule::compile(
            Atom::new(un, vec![v(0)]),
            vec![
                BodyItem::Pos(Atom::new(node, vec![v(0)])),
                BodyItem::Neg(Atom::new(marked, vec![v(0)])),
            ],
            1,
            vec!["X".into()],
        )
        .unwrap()];
        let m = eval_well_founded(&rules, &edb, &EvalOptions::default()).unwrap();
        assert!(m.holds(un, &[b]));
        assert!(!m.holds(un, &[a]));
        assert!(m.undefined.is_empty());
    }

    /// Mutual negation with no base facts: both atoms undefined.
    #[test]
    fn mutual_negation_undefined() {
        let mut syms = Interner::new();
        let item = syms.intern("item");
        let p = syms.intern("p");
        let q = syms.intern("q");
        let mut edb = FactStore::new();
        let a = Term::Const(syms.intern("a"));
        edb.insert(item, vec![a.clone()].into());
        let rules = vec![
            Rule::compile(
                Atom::new(p, vec![v(0)]),
                vec![
                    BodyItem::Pos(Atom::new(item, vec![v(0)])),
                    BodyItem::Neg(Atom::new(q, vec![v(0)])),
                ],
                1,
                vec!["X".into()],
            )
            .unwrap(),
            Rule::compile(
                Atom::new(q, vec![v(0)]),
                vec![
                    BodyItem::Pos(Atom::new(item, vec![v(0)])),
                    BodyItem::Neg(Atom::new(p, vec![v(0)])),
                ],
                1,
                vec!["X".into()],
            )
            .unwrap(),
        ];
        let m = eval_well_founded(&rules, &edb, &EvalOptions::default()).unwrap();
        assert!(m.is_undefined(p, std::slice::from_ref(&a)));
        assert!(m.is_undefined(q, std::slice::from_ref(&a)));
        assert!(!m.holds(p, std::slice::from_ref(&a)));
        assert!(!m.holds(q, &[a]));
    }

    /// The alternating fixpoint runs both phases through the partitioned
    /// round executor; a fat seeded game graph must come out bit-identical
    /// between serial and multi-threaded evaluation.
    #[test]
    fn wfs_parallel_matches_serial() {
        let mut syms = Interner::new();
        let mv = syms.intern("move");
        let win = syms.intern("win");
        let mut edb = FactStore::new();
        let n: Vec<Term> = (0..30)
            .map(|i| Term::Const(syms.intern(&format!("p{i}"))))
            .collect();
        // Deterministic LCG: enough moves to cross the parallel work gate.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..120 {
            let a = rng() % n.len();
            let b = rng() % n.len();
            edb.insert(mv, vec![n[a].clone(), n[b].clone()].into());
        }
        let rules = vec![Rule::compile(
            Atom::new(win, vec![v(0)]),
            vec![
                BodyItem::Pos(Atom::new(mv, vec![v(0), v(1)])),
                BodyItem::Neg(Atom::new(win, vec![v(1)])),
            ],
            2,
            vec!["X".into(), "Y".into()],
        )
        .unwrap()];
        let serial = eval_well_founded(&rules, &edb, &EvalOptions::default()).unwrap();
        for threads in [2usize, 4] {
            let par = eval_well_founded(
                &rules,
                &edb,
                &EvalOptions {
                    eval_threads: threads,
                    ..Default::default()
                },
            )
            .unwrap();
            let canon = |m: &crate::eval::Model| {
                let mut facts: Vec<String> = m
                    .facts
                    .iter()
                    .map(|(p, t)| format!("{p:?}|{t:?}"))
                    .collect();
                facts.extend(m.undefined.iter().map(|(p, t)| format!("u{p:?}|{t:?}")));
                facts.sort();
                facts
            };
            assert_eq!(canon(&par), canon(&serial), "threads={threads}");
            assert_eq!(par.stats, serial.stats, "threads={threads}");
        }
    }
}
