//! Error types for the deductive engine.

use std::fmt;

/// Errors raised while building or evaluating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule is unsafe: `var` (by name) is used in the head, in a negated
    /// atom, or in a comparison without being bound by a positive subgoal.
    UnsafeRule {
        /// Rendering of the offending rule.
        rule: String,
        /// Name of the unbound variable.
        var: String,
    },
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// The program has recursion through negation *and* through an
    /// aggregate, which has no well-founded reading in this engine.
    AggregateInRecursion {
        /// Predicate on the offending cycle.
        pred: String,
    },
    /// Evaluation exceeded the configured iteration budget.
    IterationLimit {
        /// The configured limit.
        limit: usize,
    },
    /// Evaluation was cancelled cooperatively: the
    /// [`crate::CancelToken`] in [`crate::EvalOptions::cancel`] was set,
    /// and the fixpoint noticed at a round boundary instead of spinning
    /// on. The partial derivation state is discarded — an interrupted
    /// evaluation never yields a half-built model.
    Interrupted {
        /// Fixpoint rounds completed before the cancellation was seen.
        after_iterations: usize,
    },
    /// A parse error with position information.
    Parse {
        /// Byte offset in the source.
        offset: usize,
        /// Line number (1-based).
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::UnsafeRule { rule, var } => {
                write!(
                    f,
                    "unsafe rule (variable {var} not range-restricted): {rule}"
                )
            }
            DatalogError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "predicate {pred} used with arity {found}, previously {expected}"
            ),
            DatalogError::AggregateInRecursion { pred } => write!(
                f,
                "aggregate over predicate {pred} participates in recursion; \
                 aggregates must be stratified"
            ),
            DatalogError::IterationLimit { limit } => {
                write!(f, "evaluation exceeded iteration limit {limit}")
            }
            DatalogError::Interrupted { after_iterations } => {
                write!(f, "evaluation interrupted after {after_iterations} rounds")
            }
            DatalogError::Parse {
                offset,
                line,
                message,
            } => write!(f, "parse error at line {line} (offset {offset}): {message}"),
        }
    }
}

impl std::error::Error for DatalogError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DatalogError>;
