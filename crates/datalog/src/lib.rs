//! # kind-datalog — deductive engine for the KIND mediator
//!
//! A from-scratch Datalog engine with the exact feature set the paper's
//! Generic Conceptual Model demands (§3):
//!
//! * rules in the style *head if body* (RULES) with a logical semantics
//!   (SEM): stratified semi-naive evaluation, and the **well-founded
//!   semantics** via the alternating fixpoint for recursion through
//!   negation — precisely the FO(LFP) expressiveness requirement (EXPR);
//! * grouping **aggregation** (`count`, `sum`, `min`, `max`) for
//!   cardinality constraints (Example 3) and the recursive `aggregate`
//!   view operation (Example 4);
//! * **function terms** for skolem placeholder objects created by
//!   domain-map assertions (§4), bounded by a term-depth limit;
//! * arithmetic and comparisons.
//!
//! The engine is the substrate on which `kind-flogic`, `kind-gcm`,
//! `kind-dm` and the mediator itself are built; it plays the role FLORA
//! played for the KIND prototype (§5).
//!
//! ## Quick example
//!
//! ```
//! use kind_datalog::{Engine, EvalOptions};
//!
//! let mut e = Engine::new();
//! e.load(
//!     "edge(a,b). edge(b,c). edge(c,d).
//!      tc(X,Y) :- edge(X,Y).
//!      tc(X,Y) :- tc(X,Z), edge(Z,Y).",
//! ).unwrap();
//! let model = e.run(&EvalOptions::default()).unwrap();
//! let solutions = e.query_model(&model, "tc(a, X)").unwrap();
//! assert_eq!(solutions.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod atom;
pub mod error;
pub mod eval;
pub mod explain;
pub mod fact;
pub mod interner;
pub mod parser;
pub mod program;
pub mod rule;
pub mod term;
mod wfs;

pub use atom::{AggFunc, Aggregate, Atom, BodyItem, CmpOp, Expr};
pub use error::{DatalogError, Result};
pub use eval::{
    pool_size, CancelToken, EvalOptions, EvalProfile, EvalStats, Model, RulePlan, StratumProfile,
};
pub use explain::{Derivation, DerivationStep};
pub use fact::{FactStore, Relation, Tuple};
pub use interner::{Interner, Sym};
pub use parser::Clause;
pub use program::{stratify, Stratification, Stratum};
pub use rule::Rule;
pub use term::{Subst, Term, Var};

use std::collections::HashMap;

/// The deductive engine: a symbol table, an extensional database, and a
/// rule set, with evaluation producing an immutable [`Model`].
#[derive(Debug, Default, Clone)]
pub struct Engine {
    syms: Interner,
    edb: FactStore,
    rules: Vec<Rule>,
    arities: HashMap<Sym, usize>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol name.
    pub fn sym(&mut self, name: &str) -> Sym {
        self.syms.intern(name)
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.syms.get(name)
    }

    /// Resolves a symbol to its name.
    pub fn name(&self, sym: Sym) -> &str {
        self.syms.resolve(sym)
    }

    /// Shorthand: a constant term for `name`.
    pub fn constant(&mut self, name: &str) -> Term {
        Term::Const(self.syms.intern(name))
    }

    /// Read access to the symbol table.
    pub fn symbols(&self) -> &Interner {
        &self.syms
    }

    /// Mutable access to the symbol table (for callers constructing terms
    /// directly).
    pub fn symbols_mut(&mut self) -> &mut Interner {
        &mut self.syms
    }

    /// Read access to the extensional database.
    pub fn edb(&self) -> &FactStore {
        &self.edb
    }

    /// The current rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn check_arity(&mut self, pred: Sym, arity: usize) -> Result<()> {
        match self.arities.get(&pred) {
            Some(&a) if a != arity => Err(DatalogError::ArityMismatch {
                pred: self.syms.resolve(pred).to_string(),
                expected: a,
                found: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.arities.insert(pred, arity);
                Ok(())
            }
        }
    }

    fn check_rule_arities(&mut self, rule: &Rule) -> Result<()> {
        self.check_arity(rule.head.pred, rule.head.arity())?;
        let mut stack: Vec<&BodyItem> = rule.body.iter().collect();
        while let Some(item) = stack.pop() {
            match item {
                BodyItem::Pos(a) | BodyItem::Neg(a) => self.check_arity(a.pred, a.arity())?,
                BodyItem::Agg(agg) => stack.extend(agg.body.iter()),
                BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
            }
        }
        Ok(())
    }

    /// Adds a ground fact.
    pub fn add_fact(&mut self, pred: Sym, args: Vec<Term>) -> Result<bool> {
        self.check_arity(pred, args.len())?;
        debug_assert!(args.iter().all(Term::is_ground), "facts must be ground");
        Ok(self.edb.insert(pred, args.into()))
    }

    /// Convenience: adds `pred(args...)` with all-constant arguments.
    pub fn add_fact_strs(&mut self, pred: &str, args: &[&str]) -> Result<bool> {
        let p = self.sym(pred);
        let terms = args.iter().map(|a| self.constant(a)).collect();
        self.add_fact(p, terms)
    }

    /// Adds a compiled rule.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        self.check_rule_arities(&rule)?;
        self.rules.push(rule);
        Ok(())
    }

    /// Parses and loads a program text (facts and rules).
    pub fn load(&mut self, src: &str) -> Result<()> {
        for clause in parser::parse_program(src, &mut self.syms)? {
            match clause {
                Clause::Fact(a) => {
                    self.check_arity(a.pred, a.arity())?;
                    self.edb.insert(a.pred, a.args.into());
                }
                Clause::Rule(r) => self.add_rule(r)?,
            }
        }
        Ok(())
    }

    /// Evaluates the program: stratified semi-naive when possible,
    /// alternating-fixpoint well-founded semantics when negation is
    /// recursive.
    pub fn run(&self, opts: &EvalOptions) -> Result<Model> {
        self.run_rules(&self.rules, opts)
    }

    /// Evaluates only the rules **relevant to the goal predicates**: the
    /// rule set is pruned to predicates reachable from `goals` through
    /// body dependencies (a lightweight cousin of magic sets — no
    /// binding-specific specialization, but dead subprograms are never
    /// touched). The resulting model is complete for the goal predicates
    /// and anything they depend on; unrelated predicates are absent.
    pub fn run_for(&self, goals: &[Sym], opts: &EvalOptions) -> Result<Model> {
        let relevant = self.relevant_rules(goals);
        self.run_rules(&relevant, opts)
    }

    /// Like [`Engine::run_for`], but evaluates on top of a cached `base`
    /// model (the cross-query cache layer): predicates whose inputs did
    /// not change since `base` was computed are *seeded* from it and their
    /// strata skipped outright; only query-relevant strata that can differ
    /// are re-evaluated.
    ///
    /// # Contract
    /// `base` must be a model of a subprogram of this engine's rules over
    /// a **subset** of this engine's EDB (facts and rules may have been
    /// added since, never removed or changed), and rules present here but
    /// absent from the base program may only define predicates that have
    /// no facts in `base`. Under that contract the result equals
    /// [`Engine::run_for`] from scratch.
    ///
    /// Soundness of the predicate analysis: starting from predicates whose
    /// EDB grew (or whose defining rules are new), a *positive* edge from
    /// a grown predicate can only add facts to its head (grown, monotone);
    /// any edge from an unstable predicate, or a negation/aggregate edge
    /// from a grown one, makes the head *unstable* (facts may appear or
    /// vanish). Stable predicates keep their base extension exactly, so
    /// seeding them is exact and their strata need no evaluation.
    ///
    /// Falls back to a plain [`Engine::run_for`] when `base_cache` is off,
    /// the relevant subprogram needs the well-founded evaluator, or the
    /// base model has undefined atoms.
    pub fn run_for_seeded(&self, goals: &[Sym], base: &Model, opts: &EvalOptions) -> Result<Model> {
        use std::collections::HashSet;
        if !opts.base_cache {
            return self.run_for(goals, opts);
        }
        let relevant = self.relevant_rules(goals);
        let strat = program::stratify(&relevant, |s| self.syms.resolve(s).to_string())?;
        if strat.needs_wfs || !base.undefined.is_empty() {
            return self.run_rules(&relevant, opts);
        }
        // Seed set Δ: predicates whose EDB holds facts absent from the
        // base model, plus heads with no base extension (covers new rules).
        let mut grown: HashSet<Sym> = HashSet::new();
        let mut unstable: HashSet<Sym> = HashSet::new();
        for p in self.edb.predicates() {
            let Some(rel) = self.edb.relation(p) else {
                continue;
            };
            let novel = match base.facts.relation(p) {
                Some(b) => rel.iter().any(|t| !b.contains(t)),
                None => !rel.is_empty(),
            };
            if novel {
                grown.insert(p);
            }
        }
        for r in &relevant {
            if base.facts.relation(r.head.pred).is_none() {
                grown.insert(r.head.pred);
            }
        }
        // Propagate along dependency edges to a fixpoint.
        let mut deps: Vec<(Sym, Sym, bool)> = Vec::new();
        for r in &relevant {
            collect_dep_edges(&r.body, r.head.pred, false, &mut deps);
        }
        loop {
            let mut changed = false;
            for &(h, b, nonmono) in &deps {
                if unstable.contains(&b) || (nonmono && grown.contains(&b)) {
                    changed |= unstable.insert(h);
                    changed |= grown.insert(h);
                } else if grown.contains(&b) {
                    changed |= grown.insert(h);
                }
            }
            if !changed {
                break;
            }
        }
        // Seed every stable or monotonically-grown predicate the relevant
        // subprogram touches; unstable predicates are recomputed from
        // scratch.
        let mut touched: HashSet<Sym> = goals.iter().copied().collect();
        for r in &relevant {
            touched.insert(r.head.pred);
            collect_body_preds(&r.body, &mut touched);
        }
        let mut edb = self.edb.clone();
        let mut seeded = 0usize;
        for &p in &touched {
            if !unstable.contains(&p) {
                seeded += edb.absorb_pred(p, &base.facts);
            }
        }
        let stable: HashSet<Sym> = touched
            .iter()
            .copied()
            .filter(|p| !grown.contains(p) && !unstable.contains(p))
            .collect();
        let mut model =
            eval::eval_stratified_skipping(&relevant, &strat, &edb, opts, Some(&stable))?;
        model.profile.seeded = seeded;
        Ok(model)
    }

    fn run_rules(&self, rules: &[Rule], opts: &EvalOptions) -> Result<Model> {
        let strat = program::stratify(rules, |s| self.syms.resolve(s).to_string())?;
        if strat.needs_wfs {
            wfs::eval_well_founded(rules, &self.edb, opts)
        } else {
            eval::eval_stratified(rules, &strat, &self.edb, opts)
        }
    }

    /// The subset of rules reachable from `goals` through (transitive)
    /// body dependencies, preserving rule order.
    pub fn relevant_rules(&self, goals: &[Sym]) -> Vec<Rule> {
        use std::collections::HashSet;
        let mut wanted: HashSet<Sym> = goals.iter().copied().collect();
        // Fixpoint: a rule is relevant if its head predicate is wanted;
        // its body predicates then become wanted too.
        loop {
            let before = wanted.len();
            for rule in &self.rules {
                if wanted.contains(&rule.head.pred) {
                    collect_body_preds(&rule.body, &mut wanted);
                }
            }
            if wanted.len() == before {
                break;
            }
        }
        self.rules
            .iter()
            .filter(|r| wanted.contains(&r.head.pred))
            .cloned()
            .collect()
    }

    /// Parses `pattern` (e.g. `"tc(a, X)"`) and matches it against a
    /// previously computed model.
    pub fn query_model(&mut self, model: &Model, pattern: &str) -> Result<Vec<Vec<Term>>> {
        let (atom, _) = parser::parse_atom(pattern, &mut self.syms)?;
        Ok(model.query(&atom))
    }

    /// Renders a ground term for display.
    pub fn show(&self, t: &Term) -> String {
        t.display(&self.syms).to_string()
    }
}

/// Records `(head, body-pred, non-monotone?)` dependency edges. Negated
/// atoms and everything inside an aggregate body are non-monotone: more
/// facts underneath can *remove* facts from the head.
fn collect_dep_edges(
    items: &[BodyItem],
    head: Sym,
    nonmono: bool,
    out: &mut Vec<(Sym, Sym, bool)>,
) {
    for item in items {
        match item {
            BodyItem::Pos(a) => out.push((head, a.pred, nonmono)),
            BodyItem::Neg(a) => out.push((head, a.pred, true)),
            BodyItem::Agg(agg) => collect_dep_edges(&agg.body, head, true, out),
            BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
        }
    }
}

fn collect_body_preds(items: &[BodyItem], out: &mut std::collections::HashSet<Sym>) {
    for item in items {
        match item {
            BodyItem::Pos(a) | BodyItem::Neg(a) => {
                out.insert(a.pred);
            }
            BodyItem::Agg(agg) => collect_body_preds(&agg.body, out),
            BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_for_prunes_unrelated_subprograms() {
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c). other(x).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).
             % an expensive unrelated subprogram:
             big(X,Y) :- e(X,_), e(_,Y).
             bigger(X,Y,Z) :- big(X,Y), big(Y,Z).",
        )
        .unwrap();
        let tc = e.lookup("tc").unwrap();
        let m = e.run_for(&[tc], &EvalOptions::default()).unwrap();
        assert_eq!(m.tuples(tc).len(), 3);
        // The pruned model never computed `bigger`.
        assert!(m.tuples(e.lookup("bigger").unwrap()).is_empty());
        // But the full run does.
        let full = e.run(&EvalOptions::default()).unwrap();
        assert!(!full.tuples(e.lookup("bigger").unwrap()).is_empty());
        // And the goal predicate agrees between the two.
        assert_eq!(m.tuples(tc).len(), full.tuples(tc).len());
    }

    #[test]
    fn run_for_follows_negation_and_aggregates() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b). m(a).
             un(X) :- n(X), not m(X).
             cnt(C) :- C = count{ X : un(X) }.",
        )
        .unwrap();
        let cnt = e.lookup("cnt").unwrap();
        let m = e.run_for(&[cnt], &EvalOptions::default()).unwrap();
        assert!(m.holds(cnt, &[Term::Int(1)]));
    }

    #[test]
    fn run_for_seeded_matches_scratch_and_skips_stable_strata() {
        use std::collections::HashSet;
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c). e(c,d). m(a).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        // Query time: a new fact for the negated predicate and a new view
        // rule, but nothing feeding `tc`.
        e.load("m(c). view(X) :- tc(a,X), not m(X).").unwrap();
        let view = e.lookup("view").unwrap();
        let tc = e.lookup("tc").unwrap();
        let warm = e.run_for_seeded(&[view], &base, &opts).unwrap();
        let cold = e.run_for(&[view], &opts).unwrap();
        let wset: HashSet<Tuple> = warm.tuples(view).into_iter().collect();
        let cset: HashSet<Tuple> = cold.tuples(view).into_iter().collect();
        assert_eq!(wset, cset);
        assert_eq!(wset.len(), 2); // tc(a,·) = {b,c,d}, minus m = {a,c}
                                   // tc was seeded from the base model, not re-derived.
        assert!(warm.profile.seeded > 0);
        assert!(warm
            .profile
            .strata
            .iter()
            .any(|s| s.skipped && s.preds.contains(&tc)));
        let a = e.constant("a");
        let d = e.constant("d");
        assert!(warm.holds(tc, &[a, d]));
        // Ablation: with the cache layer off, the same call degenerates to
        // run_for and still agrees.
        let nocache = e
            .run_for_seeded(
                &[view],
                &base,
                &EvalOptions {
                    base_cache: false,
                    ..Default::default()
                },
            )
            .unwrap();
        let nset: HashSet<Tuple> = nocache.tuples(view).into_iter().collect();
        assert_eq!(nset, cset);
    }

    #[test]
    fn run_for_seeded_invalidates_through_negation() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b).
             good(X) :- n(X), not bad(X).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        let good = e.lookup("good").unwrap();
        assert_eq!(base.tuples(good).len(), 2);
        // bad(a) arrives after the base model was computed: good(a) from
        // the base must NOT survive seeding.
        e.load("bad(a).").unwrap();
        let warm = e.run_for_seeded(&[good], &base, &opts).unwrap();
        let b = e.constant("b");
        let a = e.constant("a");
        assert!(warm.holds(good, &[b]));
        assert!(!warm.holds(good, &[a]));
        assert_eq!(warm.tuples(good).len(), 1);
    }

    #[test]
    fn end_to_end_transitive_closure() {
        let mut e = Engine::new();
        e.load(
            "edge(a,b). edge(b,c). edge(c,d).
             tc(X,Y) :- edge(X,Y).
             tc(X,Y) :- tc(X,Z), edge(Z,Y).",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        assert_eq!(e.query_model(&m, "tc(a, X)").unwrap().len(), 3);
        assert_eq!(e.query_model(&m, "tc(X, Y)").unwrap().len(), 6);
    }

    #[test]
    fn end_to_end_wfs_dispatch() {
        let mut e = Engine::new();
        e.load(
            "move(p0,p1). move(p1,p2).
             win(X) :- move(X,Y), not win(Y).",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        assert_eq!(e.query_model(&m, "win(X)").unwrap().len(), 1);
        assert!(m.undefined.is_empty());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut e = Engine::new();
        e.load("p(a).").unwrap();
        let err = e.load("p(a, b).").unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn paper_example3_cardinality_check() {
        // Example 3: has(neuron, axon) — an axon is contained in exactly
        // one neuron. Build a violating population and check the witness.
        let mut e = Engine::new();
        e.load(
            "has(n1, ax1). has(n2, ax1).   % ax1 in two neurons: violation
             has(n1, ax2).                  % ax2 fine
             w_card(VB, N) :- N = count{ VA [VB] : has(VA, VB) }, N != 1.",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        let wit = e.query_model(&m, "w_card(X, N)").unwrap();
        assert_eq!(wit.len(), 1);
        let ax1 = e.constant("ax1");
        assert_eq!(wit[0][0], ax1);
        assert_eq!(wit[0][1], Term::Int(2));
    }

    #[test]
    fn iteration_limit_enforced() {
        let mut e = Engine::new();
        e.load("p(a). p(f(X)) :- p(X).").unwrap();
        let opts = EvalOptions {
            max_term_depth: 1_000,
            max_iterations: 10,
            ..Default::default()
        };
        assert!(matches!(
            e.run(&opts),
            Err(DatalogError::IterationLimit { .. })
        ));
    }

    #[test]
    fn string_constants_roundtrip() {
        let mut e = Engine::new();
        e.load(r#"loc(c1, "Purkinje Cell"). loc(c2, "Pyramidal Cell dendrite")."#)
            .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        let sols = e.query_model(&m, r#"loc(X, "Purkinje Cell")"#).unwrap();
        assert_eq!(sols.len(), 1);
    }
}
