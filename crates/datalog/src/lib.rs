//! # kind-datalog — deductive engine for the KIND mediator
//!
//! A from-scratch Datalog engine with the exact feature set the paper's
//! Generic Conceptual Model demands (§3):
//!
//! * rules in the style *head if body* (RULES) with a logical semantics
//!   (SEM): stratified semi-naive evaluation, and the **well-founded
//!   semantics** via the alternating fixpoint for recursion through
//!   negation — precisely the FO(LFP) expressiveness requirement (EXPR);
//! * grouping **aggregation** (`count`, `sum`, `min`, `max`) for
//!   cardinality constraints (Example 3) and the recursive `aggregate`
//!   view operation (Example 4);
//! * **function terms** for skolem placeholder objects created by
//!   domain-map assertions (§4), bounded by a term-depth limit;
//! * arithmetic and comparisons;
//! * goal-directed **demand-driven** evaluation: [`Engine::run_for_query`]
//!   composes predicate-level relevance pruning with the magic-sets
//!   rewrite (`magic` module), so selective queries derive only the facts
//!   their bindings can reach.
//!
//! The engine is the substrate on which `kind-flogic`, `kind-gcm`,
//! `kind-dm` and the mediator itself are built; it plays the role FLORA
//! played for the KIND prototype (§5).
//!
//! ## Quick example
//!
//! ```
//! use kind_datalog::{Engine, EvalOptions};
//!
//! let mut e = Engine::new();
//! e.load(
//!     "edge(a,b). edge(b,c). edge(c,d).
//!      tc(X,Y) :- edge(X,Y).
//!      tc(X,Y) :- tc(X,Z), edge(Z,Y).",
//! ).unwrap();
//! let model = e.run(&EvalOptions::default()).unwrap();
//! let solutions = e.query_model(&model, "tc(a, X)").unwrap();
//! assert_eq!(solutions.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod atom;
pub mod error;
pub mod eval;
pub mod explain;
pub mod fact;
pub mod interner;
mod ivm;
mod magic;
pub mod parser;
pub mod program;
pub mod rule;
pub mod term;
mod wfs;

pub use atom::{AggFunc, Aggregate, Atom, BodyItem, CmpOp, Expr};
pub use error::{DatalogError, Result};
pub use eval::{
    pool_size, CancelToken, EvalOptions, EvalProfile, EvalStats, Model, RulePlan, StratumProfile,
};
pub use explain::{Derivation, DerivationStep};
pub use fact::{FactStore, Relation, Tuple};
pub use interner::{Interner, Sym};
pub use ivm::EngineDelta;
pub use parser::Clause;
pub use program::{stratify, Stratification, Stratum};
pub use rule::Rule;
pub use term::{Subst, Term, Var};

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Derived program structure, memoized per rule-set revision: the
/// stratification plus the monotonicity-annotated dependency edges the
/// incremental-maintenance planner propagates change through. Publishing
/// a staged delta consults this on every call, so recomputing it only
/// when the rule set actually changed keeps republish latency
/// proportional to the delta.
#[derive(Debug)]
pub(crate) struct ProgramShape {
    pub(crate) strat: Stratification,
    /// `(head, body-pred, non-monotone?)` edges — see `collect_dep_edges`.
    pub(crate) deps: Vec<(Sym, Sym, bool)>,
}

/// The deductive engine: a symbol table, an extensional database, and a
/// rule set, with evaluation producing an immutable [`Model`].
#[derive(Debug, Default)]
pub struct Engine {
    syms: Interner,
    edb: FactStore,
    rules: Vec<Rule>,
    arities: HashMap<Sym, usize>,
    /// When `Some`, every mutation (fact asserted/retracted, rule
    /// added/removed) is recorded for incremental maintenance — see
    /// [`Engine::begin_delta`]. Mutations themselves stay eager; the log
    /// only remembers what changed since the last [`Engine::take_delta`].
    changelog: Option<EngineDelta>,
    /// Bumped on every rule addition/removal; keys the `shape` memo.
    rules_rev: u64,
    /// Lazily computed [`ProgramShape`] for `rules` as of `rules_rev`.
    shape: Mutex<Option<(u64, Arc<ProgramShape>)>>,
    /// Per-stratum WFS join plans, memoized at a `rules_rev` (any rule
    /// change empties the map). Plans are heuristics keyed off relation
    /// sizes at first use; reusing them across fact deltas keeps the
    /// republish path from re-planning an unchanged rule set every time.
    wfs_plans: Mutex<(u64, HashMap<usize, Arc<wfs::PlannedWfs>>)>,
}

impl Clone for Engine {
    fn clone(&self) -> Self {
        Engine {
            syms: self.syms.clone(),
            edb: self.edb.clone(),
            rules: self.rules.clone(),
            arities: self.arities.clone(),
            changelog: self.changelog.clone(),
            rules_rev: self.rules_rev,
            // The memos are valid for the clone too: same rules, same rev.
            shape: Mutex::new(self.shape.lock().expect("shape lock").clone()),
            wfs_plans: Mutex::new(self.wfs_plans.lock().expect("wfs plan lock").clone()),
        }
    }
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol name.
    pub fn sym(&mut self, name: &str) -> Sym {
        self.syms.intern(name)
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.syms.get(name)
    }

    /// Resolves a symbol to its name.
    pub fn name(&self, sym: Sym) -> &str {
        self.syms.resolve(sym)
    }

    /// Shorthand: a constant term for `name`.
    pub fn constant(&mut self, name: &str) -> Term {
        Term::Const(self.syms.intern(name))
    }

    /// Read access to the symbol table.
    pub fn symbols(&self) -> &Interner {
        &self.syms
    }

    /// Mutable access to the symbol table (for callers constructing terms
    /// directly).
    pub fn symbols_mut(&mut self) -> &mut Interner {
        &mut self.syms
    }

    /// Read access to the extensional database.
    pub fn edb(&self) -> &FactStore {
        &self.edb
    }

    /// The current rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn check_arity(&mut self, pred: Sym, arity: usize) -> Result<()> {
        match self.arities.get(&pred) {
            Some(&a) if a != arity => Err(DatalogError::ArityMismatch {
                pred: self.syms.resolve(pred).to_string(),
                expected: a,
                found: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.arities.insert(pred, arity);
                Ok(())
            }
        }
    }

    fn check_rule_arities(&mut self, rule: &Rule) -> Result<()> {
        self.check_arity(rule.head.pred, rule.head.arity())?;
        let mut stack: Vec<&BodyItem> = rule.body.iter().collect();
        while let Some(item) = stack.pop() {
            match item {
                BodyItem::Pos(a) | BodyItem::Neg(a) => self.check_arity(a.pred, a.arity())?,
                BodyItem::Agg(agg) => stack.extend(agg.body.iter()),
                BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
            }
        }
        Ok(())
    }

    /// Adds a ground fact.
    pub fn add_fact(&mut self, pred: Sym, args: Vec<Term>) -> Result<bool> {
        self.check_arity(pred, args.len())?;
        debug_assert!(args.iter().all(Term::is_ground), "facts must be ground");
        let tuple: Tuple = args.into();
        let inserted = self.edb.insert(pred, tuple.clone());
        if inserted {
            if let Some(log) = &mut self.changelog {
                log.log_add(pred, tuple);
            }
        }
        Ok(inserted)
    }

    /// Removes a ground fact from the extensional database; returns
    /// `true` if it was present. Note this retracts only the *stored*
    /// fact — a rule may still derive the same tuple, in which case it
    /// survives (re)evaluation.
    pub fn remove_fact(&mut self, pred: Sym, args: &[Term]) -> bool {
        let removed = self.edb.remove(pred, args);
        if removed {
            if let Some(log) = &mut self.changelog {
                log.log_remove(pred, args);
            }
        }
        removed
    }

    /// Convenience: adds `pred(args...)` with all-constant arguments.
    pub fn add_fact_strs(&mut self, pred: &str, args: &[&str]) -> Result<bool> {
        let p = self.sym(pred);
        let terms = args.iter().map(|a| self.constant(a)).collect();
        self.add_fact(p, terms)
    }

    /// Adds a compiled rule.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        self.check_rule_arities(&rule)?;
        if let Some(log) = &mut self.changelog {
            log.log_rule(rule.head.pred);
        }
        self.rules.push(rule);
        self.rules_rev += 1;
        Ok(())
    }

    /// Removes the rules at indices `start..end` (see [`Engine::rules`]
    /// for the current order), recording their head predicates as
    /// rule-changed in the active changelog. Used to uninstall temporary
    /// views by span. Returns how many rules were removed.
    pub fn remove_rules(&mut self, start: usize, end: usize) -> usize {
        let end = end.min(self.rules.len());
        if start >= end {
            return 0;
        }
        for rule in self.rules.drain(start..end) {
            if let Some(log) = &mut self.changelog {
                log.log_rule(rule.head.pred);
            }
        }
        self.rules_rev += 1;
        end - start
    }

    /// Parses and loads a program text (facts and rules).
    pub fn load(&mut self, src: &str) -> Result<()> {
        for clause in parser::parse_program(src, &mut self.syms)? {
            match clause {
                Clause::Fact(a) => {
                    self.check_arity(a.pred, a.arity())?;
                    let tuple: Tuple = a.args.into();
                    if self.edb.insert(a.pred, tuple.clone()) {
                        if let Some(log) = &mut self.changelog {
                            log.log_add(a.pred, tuple);
                        }
                    }
                }
                Clause::Rule(r) => self.add_rule(r)?,
            }
        }
        Ok(())
    }

    /// Switches mutation recording on: from now on every asserted or
    /// retracted fact and every added or removed rule is remembered in a
    /// changelog that [`Engine::take_delta`] drains. Idempotent — calling
    /// it again keeps the log already being recorded.
    pub fn begin_delta(&mut self) {
        if self.changelog.is_none() {
            self.changelog = Some(EngineDelta::default());
        }
    }

    /// Drains the mutation changelog, leaving a fresh empty one recording
    /// (so staged-write planes can keep publishing repeatedly). Returns
    /// `None` when recording was never switched on.
    pub fn take_delta(&mut self) -> Option<EngineDelta> {
        self.changelog.as_mut().map(std::mem::take)
    }

    /// The changelog being recorded, without draining it (`None` when
    /// recording was never switched on).
    pub fn pending_delta(&self) -> Option<&EngineDelta> {
        self.changelog.as_ref()
    }

    /// Applies a staged [`EngineDelta`] to `base`, producing the model
    /// the engine's *current* state evaluates to — incrementally where
    /// the change structure allows it (see the `ivm` module docs for the
    /// per-stratum mode selection), bit-identical in facts to a cold
    /// [`Engine::run`].
    ///
    /// # Contract
    /// `base` must be a full model ([`Engine::run`]) of exactly the
    /// engine state *before* the delta's mutations, and `delta` must
    /// cover every mutation since (use [`Engine::begin_delta`] /
    /// [`Engine::take_delta`]). Statistics measure the delta work, not a
    /// cold evaluation's: they are deterministic across `eval_threads`
    /// for identical histories but intentionally smaller than cold.
    pub fn apply_delta(
        &self,
        base: &Model,
        delta: &EngineDelta,
        opts: &EvalOptions,
    ) -> Result<Model> {
        ivm::apply_delta(self, base, delta, opts)
    }

    /// Evaluates the program: stratified semi-naive when possible,
    /// alternating-fixpoint well-founded semantics when negation is
    /// recursive.
    pub fn run(&self, opts: &EvalOptions) -> Result<Model> {
        self.run_rules(&self.rules, opts)
    }

    /// Evaluates only the rules **relevant to the goal predicates**: the
    /// rule set is pruned to predicates reachable from `goals` through
    /// body dependencies, so dead subprograms are never touched. This is
    /// *predicate-level* relevance only — within the reachable
    /// subprogram every predicate is still materialized in full. For
    /// binding-specific specialization (deriving only the facts a goal's
    /// constants can reach), use [`Engine::run_for_query`], which runs
    /// the magic-sets rewrite *on top of* this prune: prune first, adorn
    /// second. The resulting model is complete for the goal predicates
    /// and anything they depend on; unrelated predicates are absent.
    pub fn run_for(&self, goals: &[Sym], opts: &EvalOptions) -> Result<Model> {
        let relevant = self.relevant_rules(goals);
        self.run_rules(&relevant, opts)
    }

    /// Evaluates towards a single **goal atom** — the demand-driven
    /// query path. The rule set is first pruned to the goal's reachable
    /// subprogram (exactly [`Engine::run_for`]'s relevance filter), then,
    /// when [`EvalOptions::magic_sets`] is on, rewritten by the
    /// magic-sets transformation (see the `magic` module): rules are
    /// adorned from the goal's bound/free argument pattern along a
    /// sideways-information-passing order, guarded by magic (demand)
    /// predicates seeded from the goal's constants — constants in *rule
    /// bodies* propagate demand too — and evaluated bottom-up so only
    /// facts some demand reaches are derived.
    ///
    /// Falls back to the plain pruned evaluation whenever the rewrite
    /// does not apply: extensional goals, goals entangled with negation
    /// or aggregation (their derivation cone must be materialized in
    /// full), programs needing the well-founded evaluator, or a
    /// non-stratifiable rewritten residue. Answers for the goal pattern
    /// are identical either way: `model.query(goal)` returns exactly
    /// what it would on [`Engine::run_for`]'s model; other predicates
    /// may be only partially materialized.
    ///
    /// Takes `&mut self` because adorned predicate names (`pred@adn`,
    /// `m@pred@adn`) are interned into the engine's symbol table so
    /// profile dumps resolve them.
    pub fn run_for_query(&mut self, goal: &Atom, opts: &EvalOptions) -> Result<Model> {
        let relevant = self.relevant_rules(&[goal.pred]);
        let mut declined = None;
        if opts.magic_sets {
            if let Some(rw) = magic::rewrite(&relevant, &self.edb, goal, None, &mut self.syms) {
                if rw.demand_ratio.is_some_and(|r| r >= magic::DECLINE_RATIO) {
                    declined = rw.demand_ratio;
                } else if let Some(mut model) =
                    self.eval_rewritten(&rw, self.edb.clone(), opts, 0)?
                {
                    model.profile.magic_demand_ratio = rw.demand_ratio;
                    return Ok(model);
                }
            }
        }
        let mut model = self.run_rules(&relevant, opts)?;
        if declined.is_some() {
            model.profile.magic_declined = true;
            model.profile.magic_demand_ratio = declined;
        }
        Ok(model)
    }

    /// Like [`Engine::run_for_query`], but evaluated on top of a cached
    /// `base` model (see [`Engine::run_for_seeded`] for the seeding
    /// contract). The seeding analysis runs first; its *stable*
    /// predicates are handed to the magic rewrite as frozen — their
    /// rules are dropped outright and their absorbed base facts stand in
    /// for their extension — so the rewrite composes with the
    /// cross-query cache instead of re-deriving what the cache already
    /// holds.
    pub fn run_for_query_seeded(
        &mut self,
        goal: &Atom,
        base: &Model,
        opts: &EvalOptions,
    ) -> Result<Model> {
        if !opts.base_cache {
            return self.run_for_query(goal, opts);
        }
        let relevant = self.relevant_rules(&[goal.pred]);
        let strat = program::stratify(&relevant, |s| self.syms.resolve(s).to_string())?;
        if strat.needs_wfs || !base.undefined.is_empty() {
            return self.run_rules(&relevant, opts);
        }
        let plan = self.seed_plan(&relevant, &[goal.pred], base);
        let mut declined = None;
        if opts.magic_sets {
            if let Some(rw) = magic::rewrite(
                &relevant,
                &plan.edb,
                goal,
                Some(&plan.stable),
                &mut self.syms,
            ) {
                if rw.demand_ratio.is_some_and(|r| r >= magic::DECLINE_RATIO) {
                    declined = rw.demand_ratio;
                } else if let Some(mut model) =
                    self.eval_rewritten(&rw, plan.edb.clone(), opts, plan.seeded)?
                {
                    model.profile.magic_demand_ratio = rw.demand_ratio;
                    return Ok(model);
                }
            }
        }
        let mut model =
            eval::eval_stratified_skipping(&relevant, &strat, &plan.edb, opts, Some(&plan.stable))?;
        model.profile.seeded = plan.seeded;
        if declined.is_some() {
            model.profile.magic_declined = true;
            model.profile.magic_demand_ratio = declined;
        }
        Ok(model)
    }

    /// Stratifies and evaluates a magic-rewritten program (demand seeds
    /// inserted into `edb` first), annotating the profile with rewrite
    /// counters. `Ok(None)` when the rewritten program cannot take the
    /// stratified path — the caller falls back to plain evaluation.
    fn eval_rewritten(
        &self,
        rw: &magic::MagicRewrite,
        mut edb: FactStore,
        opts: &EvalOptions,
        seeded: usize,
    ) -> Result<Option<Model>> {
        let Ok(strat) = program::stratify(&rw.rules, |s| self.syms.resolve(s).to_string()) else {
            return Ok(None);
        };
        if strat.needs_wfs {
            return Ok(None);
        }
        for (p, args) in &rw.seeds {
            edb.insert(*p, args.clone().into());
        }
        let mut model = eval::eval_stratified(&rw.rules, &strat, &edb, opts)?;
        model.profile.seeded = seeded;
        model.profile.magic_fired = true;
        model.profile.adorned_rules = rw.adorned_rules;
        model.profile.magic_preds = rw.magic_preds.len();
        for sp in &mut model.profile.strata {
            sp.magic_preds = sp
                .preds
                .iter()
                .filter(|p| rw.magic_preds.contains(p))
                .count();
            sp.adorned_rules = rw
                .rules
                .iter()
                .filter(|r| {
                    rw.adorned_preds.contains(&r.head.pred) && sp.preds.contains(&r.head.pred)
                })
                .count();
        }
        Ok(Some(model))
    }

    /// Like [`Engine::run_for`], but evaluates on top of a cached `base`
    /// model (the cross-query cache layer): predicates whose inputs did
    /// not change since `base` was computed are *seeded* from it and their
    /// strata skipped outright; only query-relevant strata that can differ
    /// are re-evaluated.
    ///
    /// # Contract
    /// `base` must be a model of a subprogram of this engine's rules over
    /// a **subset** of this engine's EDB (facts and rules may have been
    /// added since, never removed or changed), and rules present here but
    /// absent from the base program may only define predicates that have
    /// no facts in `base`. Under that contract the result equals
    /// [`Engine::run_for`] from scratch.
    ///
    /// Soundness of the predicate analysis: starting from predicates whose
    /// EDB grew (or whose defining rules are new), a *positive* edge from
    /// a grown predicate can only add facts to its head (grown, monotone);
    /// any edge from an unstable predicate, or a negation/aggregate edge
    /// from a grown one, makes the head *unstable* (facts may appear or
    /// vanish). Stable predicates keep their base extension exactly, so
    /// seeding them is exact and their strata need no evaluation.
    ///
    /// Falls back to a plain [`Engine::run_for`] when `base_cache` is off,
    /// the relevant subprogram needs the well-founded evaluator, or the
    /// base model has undefined atoms.
    pub fn run_for_seeded(&self, goals: &[Sym], base: &Model, opts: &EvalOptions) -> Result<Model> {
        if !opts.base_cache {
            return self.run_for(goals, opts);
        }
        let relevant = self.relevant_rules(goals);
        let strat = program::stratify(&relevant, |s| self.syms.resolve(s).to_string())?;
        if strat.needs_wfs || !base.undefined.is_empty() {
            return self.run_rules(&relevant, opts);
        }
        let plan = self.seed_plan(&relevant, goals, base);
        let mut model =
            eval::eval_stratified_skipping(&relevant, &strat, &plan.edb, opts, Some(&plan.stable))?;
        model.profile.seeded = plan.seeded;
        Ok(model)
    }

    /// The cross-query seeding analysis shared by
    /// [`Engine::run_for_seeded`] and [`Engine::run_for_query_seeded`]:
    /// classifies the relevant predicates against a cached base model and
    /// returns the working EDB with every safely-absorbable base fact
    /// already merged in.
    ///
    /// Seed set Δ: predicates whose EDB holds facts absent from the base
    /// model, plus heads with no base extension (covers new rules). The
    /// classification then propagates along dependency edges to a
    /// fixpoint: a *positive* edge from a grown predicate can only add
    /// facts to its head (grown, monotone); any edge from an unstable
    /// predicate, or a negation/aggregate edge from a grown one, makes
    /// the head *unstable* (facts may appear or vanish). Base facts of
    /// everything except unstable predicates are absorbed into the
    /// returned EDB; *stable* predicates (neither grown nor unstable)
    /// keep their base extension exactly, so their strata can be skipped
    /// (or, on the magic path, their rules dropped).
    fn seed_plan(&self, relevant: &[Rule], goals: &[Sym], base: &Model) -> SeedPlan {
        let mut grown: HashSet<Sym> = HashSet::new();
        let mut unstable: HashSet<Sym> = HashSet::new();
        for p in self.edb.predicates() {
            let Some(rel) = self.edb.relation(p) else {
                continue;
            };
            let novel = match base.facts.relation(p) {
                Some(b) => rel.iter().any(|t| !b.contains(t)),
                None => !rel.is_empty(),
            };
            if novel {
                grown.insert(p);
            }
        }
        for r in relevant {
            if base.facts.relation(r.head.pred).is_none() {
                grown.insert(r.head.pred);
            }
        }
        let mut deps: Vec<(Sym, Sym, bool)> = Vec::new();
        for r in relevant {
            collect_dep_edges(&r.body, r.head.pred, false, &mut deps);
        }
        loop {
            let mut changed = false;
            for &(h, b, nonmono) in &deps {
                if unstable.contains(&b) || (nonmono && grown.contains(&b)) {
                    changed |= unstable.insert(h);
                    changed |= grown.insert(h);
                } else if grown.contains(&b) {
                    changed |= grown.insert(h);
                }
            }
            if !changed {
                break;
            }
        }
        let mut touched: HashSet<Sym> = goals.iter().copied().collect();
        for r in relevant {
            touched.insert(r.head.pred);
            collect_body_preds(&r.body, &mut touched);
        }
        let mut edb = self.edb.clone();
        let mut seeded = 0usize;
        for &p in &touched {
            if !unstable.contains(&p) {
                seeded += edb.absorb_pred(p, &base.facts);
            }
        }
        let stable: HashSet<Sym> = touched
            .iter()
            .copied()
            .filter(|p| !grown.contains(p) && !unstable.contains(p))
            .collect();
        SeedPlan {
            edb,
            stable,
            seeded,
        }
    }

    /// The memoized [`ProgramShape`] for the *full* rule set, recomputed
    /// only when a rule has been added or removed since the last call.
    pub(crate) fn shape(&self) -> Result<Arc<ProgramShape>> {
        let mut guard = self.shape.lock().expect("shape lock");
        if let Some((rev, shape)) = guard.as_ref() {
            if *rev == self.rules_rev {
                return Ok(Arc::clone(shape));
            }
        }
        let strat = program::stratify(&self.rules, |s| self.syms.resolve(s).to_string())?;
        let mut deps = Vec::new();
        for r in &self.rules {
            collect_dep_edges(&r.body, r.head.pred, false, &mut deps);
        }
        let shape = Arc::new(ProgramShape { strat, deps });
        *guard = Some((self.rules_rev, Arc::clone(&shape)));
        Ok(shape)
    }

    /// The memoized WFS plan for stratum `stratum` of the current rule
    /// set, computing (and caching) it from `rules()` on first use.
    pub(crate) fn wfs_stratum_plan(
        &self,
        stratum: usize,
        rules: impl FnOnce() -> Vec<Rule>,
        edb: &FactStore,
        opts: &EvalOptions,
    ) -> Arc<wfs::PlannedWfs> {
        let mut guard = self.wfs_plans.lock().expect("wfs plan lock");
        if guard.0 != self.rules_rev {
            *guard = (self.rules_rev, HashMap::new());
        }
        if let Some(p) = guard.1.get(&stratum) {
            return Arc::clone(p);
        }
        let planned = Arc::new(wfs::plan_wfs(&rules(), edb, opts));
        guard.1.insert(stratum, Arc::clone(&planned));
        planned
    }

    fn run_rules(&self, rules: &[Rule], opts: &EvalOptions) -> Result<Model> {
        // The full program's stratification is memoized on the engine;
        // pruned rule subsets (goal-directed paths) are analysed ad hoc.
        if std::ptr::eq(rules.as_ptr(), self.rules.as_ptr()) && rules.len() == self.rules.len() {
            let shape = self.shape()?;
            return if shape.strat.needs_wfs {
                wfs::eval_well_founded(rules, &self.edb, opts)
            } else {
                eval::eval_stratified(rules, &shape.strat, &self.edb, opts)
            };
        }
        let strat = program::stratify(rules, |s| self.syms.resolve(s).to_string())?;
        if strat.needs_wfs {
            wfs::eval_well_founded(rules, &self.edb, opts)
        } else {
            eval::eval_stratified(rules, &strat, &self.edb, opts)
        }
    }

    /// The subset of rules reachable from `goals` through (transitive)
    /// body dependencies, preserving rule order.
    pub fn relevant_rules(&self, goals: &[Sym]) -> Vec<Rule> {
        use std::collections::HashSet;
        let mut wanted: HashSet<Sym> = goals.iter().copied().collect();
        // Fixpoint: a rule is relevant if its head predicate is wanted;
        // its body predicates then become wanted too.
        loop {
            let before = wanted.len();
            for rule in &self.rules {
                if wanted.contains(&rule.head.pred) {
                    collect_body_preds(&rule.body, &mut wanted);
                }
            }
            if wanted.len() == before {
                break;
            }
        }
        self.rules
            .iter()
            .filter(|r| wanted.contains(&r.head.pred))
            .cloned()
            .collect()
    }

    /// Parses `pattern` (e.g. `"tc(a, X)"`) and matches it against a
    /// previously computed model.
    pub fn query_model(&mut self, model: &Model, pattern: &str) -> Result<Vec<Vec<Term>>> {
        let (atom, _) = parser::parse_atom(pattern, &mut self.syms)?;
        Ok(model.query(&atom))
    }

    /// Renders a ground term for display.
    pub fn show(&self, t: &Term) -> String {
        t.display(&self.syms).to_string()
    }
}

/// The result of [`Engine::seed_plan`]: the working EDB with absorbed
/// base facts, the exactly-stable predicate set, and how many facts were
/// seeded.
struct SeedPlan {
    edb: FactStore,
    stable: HashSet<Sym>,
    seeded: usize,
}

/// Records `(head, body-pred, non-monotone?)` dependency edges. Negated
/// atoms and everything inside an aggregate body are non-monotone: more
/// facts underneath can *remove* facts from the head.
fn collect_dep_edges(
    items: &[BodyItem],
    head: Sym,
    nonmono: bool,
    out: &mut Vec<(Sym, Sym, bool)>,
) {
    for item in items {
        match item {
            BodyItem::Pos(a) => out.push((head, a.pred, nonmono)),
            BodyItem::Neg(a) => out.push((head, a.pred, true)),
            BodyItem::Agg(agg) => collect_dep_edges(&agg.body, head, true, out),
            BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
        }
    }
}

fn collect_body_preds(items: &[BodyItem], out: &mut std::collections::HashSet<Sym>) {
    for item in items {
        match item {
            BodyItem::Pos(a) | BodyItem::Neg(a) => {
                out.insert(a.pred);
            }
            BodyItem::Agg(agg) => collect_body_preds(&agg.body, out),
            BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_for_prunes_unrelated_subprograms() {
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c). other(x).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).
             % an expensive unrelated subprogram:
             big(X,Y) :- e(X,_), e(_,Y).
             bigger(X,Y,Z) :- big(X,Y), big(Y,Z).",
        )
        .unwrap();
        let tc = e.lookup("tc").unwrap();
        let m = e.run_for(&[tc], &EvalOptions::default()).unwrap();
        assert_eq!(m.tuples(tc).len(), 3);
        // The pruned model never computed `bigger`.
        assert!(m.tuples(e.lookup("bigger").unwrap()).is_empty());
        // But the full run does.
        let full = e.run(&EvalOptions::default()).unwrap();
        assert!(!full.tuples(e.lookup("bigger").unwrap()).is_empty());
        // And the goal predicate agrees between the two.
        assert_eq!(m.tuples(tc).len(), full.tuples(tc).len());
    }

    #[test]
    fn run_for_follows_negation_and_aggregates() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b). m(a).
             un(X) :- n(X), not m(X).
             cnt(C) :- C = count{ X : un(X) }.",
        )
        .unwrap();
        let cnt = e.lookup("cnt").unwrap();
        let m = e.run_for(&[cnt], &EvalOptions::default()).unwrap();
        assert!(m.holds(cnt, &[Term::Int(1)]));
    }

    #[test]
    fn run_for_seeded_matches_scratch_and_skips_stable_strata() {
        use std::collections::HashSet;
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c). e(c,d). m(a).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        // Query time: a new fact for the negated predicate and a new view
        // rule, but nothing feeding `tc`.
        e.load("m(c). view(X) :- tc(a,X), not m(X).").unwrap();
        let view = e.lookup("view").unwrap();
        let tc = e.lookup("tc").unwrap();
        let warm = e.run_for_seeded(&[view], &base, &opts).unwrap();
        let cold = e.run_for(&[view], &opts).unwrap();
        let wset: HashSet<Tuple> = warm.tuples(view).into_iter().collect();
        let cset: HashSet<Tuple> = cold.tuples(view).into_iter().collect();
        assert_eq!(wset, cset);
        assert_eq!(wset.len(), 2); // tc(a,·) = {b,c,d}, minus m = {a,c}
                                   // tc was seeded from the base model, not re-derived.
        assert!(warm.profile.seeded > 0);
        assert!(warm
            .profile
            .strata
            .iter()
            .any(|s| s.skipped && s.preds.contains(&tc)));
        let a = e.constant("a");
        let d = e.constant("d");
        assert!(warm.holds(tc, &[a, d]));
        // Ablation: with the cache layer off, the same call degenerates to
        // run_for and still agrees.
        let nocache = e
            .run_for_seeded(
                &[view],
                &base,
                &EvalOptions {
                    base_cache: false,
                    ..Default::default()
                },
            )
            .unwrap();
        let nset: HashSet<Tuple> = nocache.tuples(view).into_iter().collect();
        assert_eq!(nset, cset);
    }

    #[test]
    fn run_for_seeded_invalidates_through_negation() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b).
             good(X) :- n(X), not bad(X).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        let good = e.lookup("good").unwrap();
        assert_eq!(base.tuples(good).len(), 2);
        // bad(a) arrives after the base model was computed: good(a) from
        // the base must NOT survive seeding.
        e.load("bad(a).").unwrap();
        let warm = e.run_for_seeded(&[good], &base, &opts).unwrap();
        let b = e.constant("b");
        let a = e.constant("a");
        assert!(warm.holds(good, &[b]));
        assert!(!warm.holds(good, &[a]));
        assert_eq!(warm.tuples(good).len(), 1);
    }

    fn chain_engine(n: usize) -> Engine {
        let mut e = Engine::new();
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!("e(n{i},n{}).\n", i + 1));
        }
        text.push_str("tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y).\n");
        e.load(&text).unwrap();
        e
    }

    #[test]
    fn run_for_query_bound_goal_same_answers_far_fewer_derivations() {
        let mut e = chain_engine(30);
        let tc = e.lookup("tc").unwrap();
        let n0 = e.constant("n0");
        let x = Term::Var(Var(0));
        let goal = Atom::new(tc, vec![n0.clone(), x]);
        let opts = EvalOptions::default();
        let full = e.run_for(&[tc], &opts).unwrap();
        let magic = e.run_for_query(&goal, &opts).unwrap();
        // Identical answers for the goal pattern...
        let mut f = full.query(&goal);
        let mut m = magic.query(&goal);
        f.sort();
        m.sort();
        assert_eq!(f, m);
        assert_eq!(m.len(), 30);
        // ...from a small fraction of the derivation work: the demand
        // reaches only tc(n0, ·), not the full quadratic closure.
        assert!(magic.profile.magic_fired);
        assert!(magic.profile.adorned_rules > 0);
        assert!(magic.profile.magic_preds > 0);
        assert!(
            magic.stats.derived * 3 <= full.stats.derived,
            "magic {} vs full {}",
            magic.stats.derived,
            full.stats.derived
        );
        // The rewrite-off path is bit-identical to plain run_for.
        let off = e
            .run_for_query(
                &goal,
                &EvalOptions {
                    magic_sets: false,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!off.profile.magic_fired);
        assert_eq!(off.stats.derived, full.stats.derived);
    }

    #[test]
    fn run_for_query_body_constants_drive_demand() {
        // The goal head is all-free, but the constant inside the view
        // body still seeds a bound demand on the recursive predicate —
        // the pattern every FL `X : class` query hits. The demand cone
        // of n3 is {n0..n2}, so only a corner of the quadratic closure
        // is derived.
        let mut e = chain_engine(20);
        e.load("sees(X) :- tc(X, n3).").unwrap();
        let sees = e.lookup("sees").unwrap();
        let goal = Atom::new(sees, vec![Term::Var(Var(0))]);
        let opts = EvalOptions::default();
        let full = e.run_for(&[sees], &opts).unwrap();
        let magic = e.run_for_query(&goal, &opts).unwrap();
        let mut f = full.query(&goal);
        let mut m = magic.query(&goal);
        f.sort();
        m.sort();
        assert_eq!(f, m);
        assert_eq!(m.len(), 3);
        assert!(magic.profile.magic_fired);
        assert!(
            magic.stats.derived * 3 <= full.stats.derived,
            "magic {} vs full {}",
            magic.stats.derived,
            full.stats.derived
        );
    }

    #[test]
    fn run_for_query_copy_rule_covers_edb_facts_of_idb_preds() {
        let mut e = Engine::new();
        e.load("p(a). q(b). p(X) :- q(X).").unwrap();
        let p = e.lookup("p").unwrap();
        let a = e.constant("a");
        let b = e.constant("b");
        let opts = EvalOptions::default();
        // Bound goal on a predicate with both stored facts and rules:
        // the copy rule must route the stored fact into the adorned
        // world.
        let ga = Atom::new(p, vec![a.clone()]);
        let ma = e.run_for_query(&ga, &opts).unwrap();
        assert!(ma.profile.magic_fired);
        assert_eq!(ma.query(&ga).len(), 1);
        let gb = Atom::new(p, vec![b.clone()]);
        let mb = e.run_for_query(&gb, &opts).unwrap();
        assert_eq!(mb.query(&gb).len(), 1);
        let c = e.constant("nope");
        let gc = Atom::new(p, vec![c]);
        let mc = e.run_for_query(&gc, &opts).unwrap();
        assert!(mc.query(&gc).is_empty());
    }

    #[test]
    fn run_for_query_negation_cone_evaluated_in_full() {
        let mut e = Engine::new();
        e.load(
            "n(a). n(b). n(c). k(a). k(c).
             m(X) :- k(X).
             un(X) :- n(X), not m(X).",
        )
        .unwrap();
        let un = e.lookup("un").unwrap();
        let b = e.constant("b");
        let opts = EvalOptions::default();
        let goal = Atom::new(un, vec![b]);
        let magic = e.run_for_query(&goal, &opts).unwrap();
        let full = e.run_for(&[un], &opts).unwrap();
        assert_eq!(magic.query(&goal), full.query(&goal));
        assert_eq!(magic.query(&goal).len(), 1);
    }

    #[test]
    fn run_for_query_falls_back_for_wfs_programs() {
        let mut e = Engine::new();
        e.load(
            "move(p0,p1). move(p1,p2).
             win(X) :- move(X,Y), not win(Y).",
        )
        .unwrap();
        let win = e.lookup("win").unwrap();
        let p0 = e.constant("p0");
        let goal = Atom::new(win, vec![p0]);
        let opts = EvalOptions::default();
        let magic = e.run_for_query(&goal, &opts).unwrap();
        let full = e.run_for(&[win], &opts).unwrap();
        assert!(!magic.profile.magic_fired);
        assert!(magic.profile.well_founded);
        assert_eq!(magic.query(&goal), full.query(&goal));
    }

    #[test]
    fn run_for_query_seeded_matches_scratch() {
        use std::collections::HashSet;
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c). e(c,d). m(a).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        e.load("m(c). view(X) :- tc(a,X), not m(X).").unwrap();
        let view = e.lookup("view").unwrap();
        let goal = Atom::new(view, vec![Term::Var(Var(0))]);
        let warm = e.run_for_query_seeded(&goal, &base, &opts).unwrap();
        let cold = e.run_for(&[view], &opts).unwrap();
        let wset: HashSet<Vec<Term>> = warm.query(&goal).into_iter().collect();
        let cset: HashSet<Vec<Term>> = cold.query(&goal).into_iter().collect();
        assert_eq!(wset, cset);
        assert_eq!(wset.len(), 2);
        // The closure is fully *stable* in the base cache, so freezing it
        // leaves no demand to propagate: the rewrite correctly declines
        // (a pure rename would only add overhead) and the cached
        // stratum-skipping path answers instead.
        assert!(!warm.profile.magic_fired);
        assert!(warm.profile.seeded > 0);
    }

    #[test]
    fn run_for_query_seeded_fires_when_delta_feeds_recursion() {
        use std::collections::HashSet;
        let mut e = Engine::new();
        e.load(
            "e(a,b). e(b,c). e(c,d).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- tc(X,Z), e(Z,Y).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let base = e.run(&opts).unwrap();
        // The delta grows the closure's own input, so `tc` is grown (not
        // stable): the rewrite adorns it, the copy rule routes the
        // absorbed cached closure in, and only demanded bindings are
        // re-derived.
        e.load("e(d,d2). view(X) :- tc(a,X).").unwrap();
        let view = e.lookup("view").unwrap();
        let goal = Atom::new(view, vec![Term::Var(Var(0))]);
        let warm = e.run_for_query_seeded(&goal, &base, &opts).unwrap();
        let cold = e.run_for(&[view], &opts).unwrap();
        let wset: HashSet<Vec<Term>> = warm.query(&goal).into_iter().collect();
        let cset: HashSet<Vec<Term>> = cold.query(&goal).into_iter().collect();
        assert_eq!(wset, cset);
        assert_eq!(wset.len(), 4); // b, c, d, d2
        assert!(warm.profile.magic_fired);
        assert!(warm.profile.seeded > 0);
    }

    #[test]
    fn end_to_end_transitive_closure() {
        let mut e = Engine::new();
        e.load(
            "edge(a,b). edge(b,c). edge(c,d).
             tc(X,Y) :- edge(X,Y).
             tc(X,Y) :- tc(X,Z), edge(Z,Y).",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        assert_eq!(e.query_model(&m, "tc(a, X)").unwrap().len(), 3);
        assert_eq!(e.query_model(&m, "tc(X, Y)").unwrap().len(), 6);
    }

    #[test]
    fn end_to_end_wfs_dispatch() {
        let mut e = Engine::new();
        e.load(
            "move(p0,p1). move(p1,p2).
             win(X) :- move(X,Y), not win(Y).",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        assert_eq!(e.query_model(&m, "win(X)").unwrap().len(), 1);
        assert!(m.undefined.is_empty());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut e = Engine::new();
        e.load("p(a).").unwrap();
        let err = e.load("p(a, b).").unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn paper_example3_cardinality_check() {
        // Example 3: has(neuron, axon) — an axon is contained in exactly
        // one neuron. Build a violating population and check the witness.
        let mut e = Engine::new();
        e.load(
            "has(n1, ax1). has(n2, ax1).   % ax1 in two neurons: violation
             has(n1, ax2).                  % ax2 fine
             w_card(VB, N) :- N = count{ VA [VB] : has(VA, VB) }, N != 1.",
        )
        .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        let wit = e.query_model(&m, "w_card(X, N)").unwrap();
        assert_eq!(wit.len(), 1);
        let ax1 = e.constant("ax1");
        assert_eq!(wit[0][0], ax1);
        assert_eq!(wit[0][1], Term::Int(2));
    }

    #[test]
    fn iteration_limit_enforced() {
        let mut e = Engine::new();
        e.load("p(a). p(f(X)) :- p(X).").unwrap();
        let opts = EvalOptions {
            max_term_depth: 1_000,
            max_iterations: 10,
            ..Default::default()
        };
        assert!(matches!(
            e.run(&opts),
            Err(DatalogError::IterationLimit { .. })
        ));
    }

    #[test]
    fn string_constants_roundtrip() {
        let mut e = Engine::new();
        e.load(r#"loc(c1, "Purkinje Cell"). loc(c2, "Pyramidal Cell dendrite")."#)
            .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        let sols = e.query_model(&m, r#"loc(X, "Purkinje Cell")"#).unwrap();
        assert_eq!(sols.len(), 1);
    }
}
