//! Ground fact storage: relations with lazily-built multi-column indexes.
//!
//! Bottom-up evaluation spends nearly all of its time probing relations
//! during joins. Tuples are stored once as `Arc<[Term]>` shared between the
//! dedup set, the insertion-ordered scan vector, and the indexes, so
//! lookups and copies stay cheap — and whole relations can be shared
//! across threads behind an immutable snapshot.
//!
//! Indexes are built **on first probe** for whatever column set a join
//! actually binds (see [`Relation::iter_bound`]) and maintained
//! incrementally on every subsequent insert. A relation that is only ever
//! scanned never pays for an index; a relation probed on columns `{0, 2}`
//! gets exactly that index and no other.

use crate::interner::Sym;
use crate::term::Term;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};

/// A ground tuple.
pub type Tuple = Arc<[Term]>;

/// An index over one column set: key values (in ascending column order) →
/// positions into the tuple vector.
type ColumnIndex = HashMap<Vec<Term>, Vec<u32>>;

/// A single relation: a deduplicated, insertion-ordered set of ground
/// tuples, with hash indexes on arbitrary column sets built lazily on
/// first probe.
#[derive(Debug, Default)]
pub struct Relation {
    tuples: Vec<Tuple>,
    set: HashSet<Tuple>,
    /// Lazily-built indexes: sorted column set → key → positions. Interior
    /// mutability lets a probe during evaluation (`&Relation`) build the
    /// index it needs; `insert` maintains every existing index. An
    /// `RwLock` (rather than `RefCell`) keeps `Relation: Sync`, so frozen
    /// relations can be probed concurrently from many query threads; the
    /// hot path only ever takes the uncontended read lock once an index
    /// exists.
    indexes: RwLock<HashMap<Vec<usize>, ColumnIndex>>,
}

impl Clone for Relation {
    /// Clones the tuples but **not** the built indexes: a clone rebuilds
    /// lazily the (usually few) column sets it actually probes. Scratch
    /// clones on the warm query path (per-call `answer` evaluation,
    /// base-cache seeding) typically touch a handful of relations, so
    /// deep-copying every index map was pure allocation overhead — and a
    /// read-lock hold on the shared original that concurrent snapshot
    /// readers had to contend with.
    fn clone(&self) -> Self {
        Relation {
            tuples: self.tuples.clone(),
            set: self.set.clone(),
            indexes: RwLock::new(HashMap::new()),
        }
    }
}

fn index_key(tuple: &[Term], cols: &[usize]) -> Option<Vec<Term>> {
    // Tuples too short for the column set can never match a pattern that
    // binds those columns; they are simply absent from the index.
    if cols.iter().any(|&c| c >= tuple.len()) {
        return None;
    }
    Some(cols.iter().map(|&c| tuple[c].clone()).collect())
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple; returns `true` if it was new. Every existing
    /// index is maintained incrementally.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert!(tuple.iter().all(Term::is_ground));
        if !self.set.insert(tuple.clone()) {
            return false;
        }
        let pos = u32::try_from(self.tuples.len()).expect("relation too large");
        for (cols, index) in self.indexes.get_mut().expect("index lock").iter_mut() {
            if let Some(key) = index_key(&tuple, cols) {
                index.entry(key).or_default().push(pos);
            }
        }
        self.tuples.push(tuple);
        true
    }

    /// Bulk-merges every tuple of `other`; returns how many were new.
    /// Reserves capacity up front so repeated absorption of large deltas
    /// does not rehash per tuple.
    pub fn extend_from(&mut self, other: &Relation) -> usize {
        self.set.reserve(other.tuples.len());
        self.tuples.reserve(other.tuples.len());
        let mut added = 0;
        for t in &other.tuples {
            if self.insert(t.clone()) {
                added += 1;
            }
        }
        added
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.set.contains(tuple)
    }

    /// All tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Ensures the index over `cols` (must be sorted and deduplicated)
    /// exists, building it from the current tuples if not. Returns `true`
    /// when the index was newly built.
    ///
    /// Build-once and thread-safe: the hot path (index already present)
    /// takes only the shared read lock, so concurrent probes of a frozen
    /// relation never serialize on the write lock; when the index is
    /// missing, exactly one caller builds it (double-checked under the
    /// write lock) and returns `true` — racing callers wait and reuse it.
    pub fn ensure_index(&self, cols: &[usize]) -> bool {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be sorted");
        if self.indexes.read().expect("index lock").contains_key(cols) {
            return false;
        }
        let mut indexes = self.indexes.write().expect("index lock");
        if indexes.contains_key(cols) {
            // Lost the build race: another thread finished it between our
            // read and write acquisitions. Exactly one caller reports the
            // build.
            return false;
        }
        let mut index = ColumnIndex::new();
        for (pos, tuple) in self.tuples.iter().enumerate() {
            if let Some(key) = index_key(tuple, cols) {
                index.entry(key).or_default().push(pos as u32);
            }
        }
        indexes.insert(cols.to_vec(), index);
        true
    }

    /// Tuples matching the given `(column, value)` bindings, via a hash
    /// index on exactly that column set (built on first use). Columns may
    /// be given in any order; duplicates must agree by construction.
    pub fn iter_bound(&self, bound: &[(usize, &Term)]) -> impl Iterator<Item = &Tuple> {
        let mut pairs: Vec<(usize, &Term)> = bound.to_vec();
        pairs.sort_by_key(|&(c, _)| c);
        pairs.dedup_by_key(|&mut (c, _)| c);
        let cols: Vec<usize> = pairs.iter().map(|&(c, _)| c).collect();
        let key: Vec<Term> = pairs.iter().map(|&(_, t)| t.clone()).collect();
        self.ensure_index(&cols);
        // Clone the (small) position list so the iterator does not hold
        // the read lock while the caller walks the tuples.
        let positions: Vec<u32> = self
            .indexes
            .read()
            .expect("index lock")
            .get(&cols)
            .and_then(|ix| ix.get(&key))
            .cloned()
            .unwrap_or_default();
        positions.into_iter().map(move |i| &self.tuples[i as usize])
    }

    /// Tuples whose first column equals `key` (fast path for joins with a
    /// bound first argument).
    pub fn iter_first<'a>(&'a self, key: &'a Term) -> impl Iterator<Item = &'a Tuple> {
        self.iter_bound(&[(0, key)])
    }

    /// Number of indexes currently built (diagnostics).
    pub fn index_count(&self) -> usize {
        self.indexes.read().expect("index lock").len()
    }

    /// Removes a tuple; returns `true` if it was present. Tuple positions
    /// shift, so every built index is dropped (they rebuild lazily on the
    /// next probe) — retraction is the cold path, probing is the hot one.
    pub fn remove(&mut self, tuple: &[Term]) -> bool {
        if !self.set.remove(tuple) {
            return false;
        }
        self.tuples.retain(|t| &**t != tuple);
        self.indexes.get_mut().expect("index lock").clear();
        true
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A set of relations keyed by predicate symbol.
///
/// Relations sit behind `Arc`s, so a `clone` of the store is O(relations)
/// pointer bumps and the clone *shares* every relation — including any
/// indexes its tuples have already earned — until one side mutates it
/// (copy-on-write via [`Arc::make_mut`]). This is what makes snapshot
/// republish cost proportional to the delta: strata untouched by a change
/// keep the previous model's relations by reference. Evaluation entry
/// points that must not observe shared index state (index-probe counters
/// are part of the bit-identical stats contract) start from
/// [`FactStore::detached_clone`] instead.
#[derive(Debug, Clone, Default)]
pub struct FactStore {
    rels: HashMap<Sym, Arc<Relation>>,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if new.
    pub fn insert(&mut self, pred: Sym, tuple: Tuple) -> bool {
        Arc::make_mut(self.rels.entry(pred).or_default()).insert(tuple)
    }

    /// Removes a fact; returns `true` if it was present.
    pub fn remove(&mut self, pred: Sym, tuple: &[Term]) -> bool {
        match self.rels.get_mut(&pred) {
            Some(rel) if rel.contains(tuple) => Arc::make_mut(rel).remove(tuple),
            _ => false,
        }
    }

    /// The relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.rels.get(&pred).map(Arc::as_ref)
    }

    /// The relation for `pred` as a shareable handle.
    pub fn relation_arc(&self, pred: Sym) -> Option<Arc<Relation>> {
        self.rels.get(&pred).map(Arc::clone)
    }

    /// Installs `rel` as the relation for `pred`, sharing the handle.
    pub fn set_relation(&mut self, pred: Sym, rel: Arc<Relation>) {
        self.rels.insert(pred, rel);
    }

    /// Whether `pred`'s relation is the very same allocation as in
    /// `other` (diagnostics for the structural-sharing contract).
    pub fn shares_relation(&self, pred: Sym, other: &FactStore) -> bool {
        match (self.rels.get(&pred), other.rels.get(&pred)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// A deep clone with per-relation index state dropped: every relation
    /// is freshly allocated with no built indexes. Evaluation starts from
    /// this so index-build/hit/miss counters depend only on the program
    /// and facts, never on which earlier run happened to warm a shared
    /// relation's indexes.
    pub fn detached_clone(&self) -> FactStore {
        FactStore {
            rels: self
                .rels
                .iter()
                .map(|(&p, r)| (p, Arc::new((**r).clone())))
                .collect(),
        }
    }

    /// Membership test.
    pub fn contains(&self, pred: Sym, tuple: &[Term]) -> bool {
        self.rels.get(&pred).is_some_and(|r| r.contains(tuple))
    }

    /// Iterates `(pred, tuple)` over every fact.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &Tuple)> {
        self.rels
            .iter()
            .flat_map(|(&p, r)| r.iter().map(move |t| (p, t)))
    }

    /// Predicates that currently have at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = Sym> + '_ {
        self.rels.keys().copied()
    }

    /// Total number of facts across all relations.
    pub fn len(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// Whether the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(|r| r.is_empty())
    }

    /// Merges every fact of `other` into `self`, relation by relation
    /// (one predicate lookup per relation, with capacity reserved up
    /// front); returns how many facts were new.
    pub fn absorb(&mut self, other: &FactStore) -> usize {
        let mut added = 0;
        for (&p, rel) in &other.rels {
            if rel.is_empty() {
                continue;
            }
            added += self.absorb_rel(p, rel);
        }
        added
    }

    /// Merges only `pred`'s relation from `other`; returns how many facts
    /// were new.
    pub fn absorb_pred(&mut self, pred: Sym, other: &FactStore) -> usize {
        match other.rels.get(&pred) {
            Some(rel) if !rel.is_empty() => self.absorb_rel(pred, rel),
            _ => 0,
        }
    }

    /// Deep-merge of one relation. A vacant slot still deep-copies (not
    /// `Arc`-shares) so absorbed relations start with no index state and
    /// are never retroactively mutated out from under a concurrent holder
    /// mid-fixpoint; explicit sharing goes through [`Self::share_pred`] /
    /// [`Self::set_relation`].
    fn absorb_rel(&mut self, pred: Sym, rel: &Arc<Relation>) -> usize {
        match self.rels.entry(pred) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Arc::new((**rel).clone()));
                rel.len()
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                Arc::make_mut(o.get_mut()).extend_from(rel)
            }
        }
    }

    /// Like [`Self::absorb_pred`], but a vacant slot **shares** `other`'s
    /// relation handle instead of copying it; an occupied slot falls back
    /// to a deep merge. Returns how many facts were new.
    pub fn share_pred(&mut self, pred: Sym, other: &FactStore) -> usize {
        match other.rels.get(&pred) {
            Some(rel) if !rel.is_empty() => match self.rels.entry(pred) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Arc::clone(rel));
                    rel.len()
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    Arc::make_mut(o.get_mut()).extend_from(rel)
                }
            },
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn t(args: &[Term]) -> Tuple {
        args.to_vec().into()
    }

    #[test]
    fn insert_dedups() {
        let mut syms = Interner::new();
        let a = Term::Const(syms.intern("a"));
        let mut r = Relation::new();
        assert!(r.insert(t(std::slice::from_ref(&a))));
        assert!(!r.insert(t(std::slice::from_ref(&a))));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn first_column_index() {
        let mut syms = Interner::new();
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let mut r = Relation::new();
        r.insert(t(&[a.clone(), b.clone()]));
        r.insert(t(&[a.clone(), a.clone()]));
        r.insert(t(&[b.clone(), a.clone()]));
        assert_eq!(r.iter_first(&a).count(), 2);
        assert_eq!(r.iter_first(&b).count(), 1);
        let c = Term::Int(99);
        assert_eq!(r.iter_first(&c).count(), 0);
    }

    #[test]
    fn multi_column_index_interleaved_inserts_and_probes() {
        let mut syms = Interner::new();
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let c = Term::Const(syms.intern("c"));
        let mut r = Relation::new();
        r.insert(t(&[a.clone(), b.clone(), c.clone()]));
        r.insert(t(&[a.clone(), c.clone(), c.clone()]));
        // First probe on {0,2} builds that index.
        assert!(r.ensure_index(&[0, 2]));
        assert!(!r.ensure_index(&[0, 2]), "second ensure is a no-op");
        assert_eq!(r.iter_bound(&[(0, &a), (2, &c)]).count(), 2);
        // Inserts after the build must be visible to later probes.
        r.insert(t(&[a.clone(), a.clone(), c.clone()]));
        r.insert(t(&[b.clone(), b.clone(), c.clone()]));
        assert_eq!(r.iter_bound(&[(0, &a), (2, &c)]).count(), 3);
        assert_eq!(r.iter_bound(&[(0, &b), (2, &c)]).count(), 1);
        // A different column set is an independent index; binding order
        // does not matter.
        assert_eq!(r.iter_bound(&[(1, &b)]).count(), 2);
        assert_eq!(r.iter_bound(&[(2, &c), (1, &a)]).count(), 1);
        r.insert(t(&[c.clone(), b.clone(), a.clone()]));
        assert_eq!(r.iter_bound(&[(1, &b)]).count(), 3);
        // Missing keys yield nothing.
        assert_eq!(r.iter_bound(&[(0, &c), (2, &c)]).count(), 0);
        assert_eq!(r.index_count(), 3);
    }

    #[test]
    fn index_skips_short_tuples() {
        let mut syms = Interner::new();
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let mut r = Relation::new();
        r.insert(t(std::slice::from_ref(&a)));
        r.insert(t(&[a.clone(), b.clone()]));
        // Index on column 1: the unary tuple is simply absent.
        assert_eq!(r.iter_bound(&[(1, &b)]).count(), 1);
        // Maintenance also skips short tuples.
        r.insert(t(std::slice::from_ref(&b)));
        r.insert(t(&[b.clone(), b.clone()]));
        assert_eq!(r.iter_bound(&[(1, &b)]).count(), 2);
    }

    #[test]
    fn extend_from_counts_new() {
        let mut syms = Interner::new();
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let mut r1 = Relation::new();
        r1.insert(t(std::slice::from_ref(&a)));
        let mut r2 = Relation::new();
        r2.insert(t(std::slice::from_ref(&a)));
        r2.insert(t(std::slice::from_ref(&b)));
        assert_eq!(r1.extend_from(&r2), 1);
        assert_eq!(r1.len(), 2);
    }

    #[test]
    fn store_absorb_counts_new() {
        let mut syms = Interner::new();
        let p = syms.intern("p");
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let mut s1 = FactStore::new();
        s1.insert(p, t(std::slice::from_ref(&a)));
        let mut s2 = FactStore::new();
        s2.insert(p, t(std::slice::from_ref(&a)));
        s2.insert(p, t(std::slice::from_ref(&b)));
        assert_eq!(s1.absorb(&s2), 1);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn absorb_maintains_existing_indexes() {
        let mut syms = Interner::new();
        let p = syms.intern("p");
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let mut s1 = FactStore::new();
        s1.insert(p, t(&[a.clone(), a.clone()]));
        // Build an index, then absorb more facts into the same relation.
        assert_eq!(s1.relation(p).unwrap().iter_first(&a).count(), 1);
        let mut s2 = FactStore::new();
        s2.insert(p, t(&[a.clone(), b.clone()]));
        s2.insert(p, t(&[b.clone(), b.clone()]));
        assert_eq!(s1.absorb(&s2), 2);
        assert_eq!(s1.relation(p).unwrap().iter_first(&a).count(), 2);
    }

    #[test]
    fn contains_checks_pred_and_tuple() {
        let mut syms = Interner::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        let a = Term::Const(syms.intern("a"));
        let mut s = FactStore::new();
        s.insert(p, t(std::slice::from_ref(&a)));
        assert!(s.contains(p, std::slice::from_ref(&a)));
        assert!(!s.contains(q, std::slice::from_ref(&a)));
    }
}
