//! Ground fact storage: relations with first-column indexes.
//!
//! Bottom-up evaluation spends nearly all of its time probing relations
//! during joins. Tuples are stored once as `Rc<[Term]>` shared between the
//! dedup set, the insertion-ordered scan vector, and the index, so lookups
//! and copies stay cheap.

use crate::interner::Sym;
use crate::term::Term;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// A ground tuple.
pub type Tuple = Rc<[Term]>;

/// A single relation: a deduplicated, insertion-ordered set of ground
/// tuples, indexed on the first column.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    tuples: Vec<Tuple>,
    set: HashSet<Tuple>,
    /// Index on column 0: first-argument value → positions in `tuples`.
    idx0: HashMap<Term, Vec<u32>>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert!(tuple.iter().all(Term::is_ground));
        if !self.set.insert(tuple.clone()) {
            return false;
        }
        let pos = u32::try_from(self.tuples.len()).expect("relation too large");
        if let Some(first) = tuple.first() {
            self.idx0.entry(first.clone()).or_default().push(pos);
        }
        self.tuples.push(tuple);
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.set.contains(tuple)
    }

    /// All tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Tuples whose first column equals `key` (fast path for joins with a
    /// bound first argument).
    pub fn iter_first(&self, key: &Term) -> impl Iterator<Item = &Tuple> {
        self.idx0
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&i| &self.tuples[i as usize])
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A set of relations keyed by predicate symbol.
#[derive(Debug, Clone, Default)]
pub struct FactStore {
    rels: HashMap<Sym, Relation>,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if new.
    pub fn insert(&mut self, pred: Sym, tuple: Tuple) -> bool {
        self.rels.entry(pred).or_default().insert(tuple)
    }

    /// The relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Membership test.
    pub fn contains(&self, pred: Sym, tuple: &[Term]) -> bool {
        self.rels.get(&pred).is_some_and(|r| r.contains(tuple))
    }

    /// Iterates `(pred, tuple)` over every fact.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &Tuple)> {
        self.rels
            .iter()
            .flat_map(|(&p, r)| r.iter().map(move |t| (p, t)))
    }

    /// Predicates that currently have at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = Sym> + '_ {
        self.rels.keys().copied()
    }

    /// Total number of facts across all relations.
    pub fn len(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Whether the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(Relation::is_empty)
    }

    /// Merges every fact of `other` into `self`; returns how many were new.
    pub fn absorb(&mut self, other: &FactStore) -> usize {
        let mut added = 0;
        for (p, t) in other.iter() {
            if self.insert(p, t.clone()) {
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn t(args: &[Term]) -> Tuple {
        args.to_vec().into()
    }

    #[test]
    fn insert_dedups() {
        let mut syms = Interner::new();
        let a = Term::Const(syms.intern("a"));
        let mut r = Relation::new();
        assert!(r.insert(t(std::slice::from_ref(&a))));
        assert!(!r.insert(t(std::slice::from_ref(&a))));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn first_column_index() {
        let mut syms = Interner::new();
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let mut r = Relation::new();
        r.insert(t(&[a.clone(), b.clone()]));
        r.insert(t(&[a.clone(), a.clone()]));
        r.insert(t(&[b.clone(), a.clone()]));
        assert_eq!(r.iter_first(&a).count(), 2);
        assert_eq!(r.iter_first(&b).count(), 1);
        let c = Term::Int(99);
        assert_eq!(r.iter_first(&c).count(), 0);
    }

    #[test]
    fn store_absorb_counts_new() {
        let mut syms = Interner::new();
        let p = syms.intern("p");
        let a = Term::Const(syms.intern("a"));
        let b = Term::Const(syms.intern("b"));
        let mut s1 = FactStore::new();
        s1.insert(p, t(std::slice::from_ref(&a)));
        let mut s2 = FactStore::new();
        s2.insert(p, t(std::slice::from_ref(&a)));
        s2.insert(p, t(std::slice::from_ref(&b)));
        assert_eq!(s1.absorb(&s2), 1);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn contains_checks_pred_and_tuple() {
        let mut syms = Interner::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        let a = Term::Const(syms.intern("a"));
        let mut s = FactStore::new();
        s.insert(p, t(std::slice::from_ref(&a)));
        assert!(s.contains(p, std::slice::from_ref(&a)));
        assert!(!s.contains(q, std::slice::from_ref(&a)));
    }
}
