//! String interning for predicate, constant, and function symbols.
//!
//! All symbolic names that appear in a [`crate::Engine`] are interned into
//! a [`Sym`], a dense `u32` handle. Interning makes term comparison,
//! hashing, and tuple storage cheap: the hot paths of the evaluator
//! (unification, joins, dedup) only ever touch integers.

use std::collections::HashMap;
use std::fmt;

/// An interned symbol. `Sym`s are only meaningful relative to the
/// [`Interner`] (and thus the [`crate::Engine`]) that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// The raw index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The *fallback* rendering of a symbol, used only when no [`Interner`]
/// is in scope: an opaque `#{n}` handle. Anything user-facing should
/// prefer [`Interner::name_of`] / [`Interner::resolve`] (or the
/// interner-threading helpers such as `Rule::compile_named` and
/// `Term::display`) so diagnostics show the symbol's actual name.
impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A two-way map between strings and [`Sym`] handles.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Sym>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("too many symbols"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Resolves a symbol back to its name.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Non-panicking [`Self::resolve`]: `None` when `sym` did not come
    /// from this interner. Diagnostics use this to show a symbol's name,
    /// falling back to the opaque `#{n}` rendering only when the symbol
    /// is foreign.
    pub fn name_of(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.index()).map(|b| &**b)
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("neuron");
        let b = i.intern("neuron");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_syms() {
        let mut i = Interner::new();
        let a = i.intern("axon");
        let b = i.intern("dendrite");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "axon");
        assert_eq!(i.resolve(b), "dendrite");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("soma").is_none());
        i.intern("soma");
        assert!(i.get("soma").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_and_len() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("x");
        assert!(!i.is_empty());
    }
}
