//! Rules: safety (range restriction) checking and execution planning.
//!
//! A rule is compiled once into an *execution plan*: an ordering of its
//! body items such that every negated atom, comparison, assignment, and
//! aggregate runs only after the positive subgoals that bind its variables.
//! The planner is a greedy scheduler; positive atoms keep their source
//! order (which the author controls for join-order tuning), and guarded
//! items are placed as early as their bindings allow so they prune the
//! search space soonest.

use crate::atom::{Atom, BodyItem};
use crate::error::{DatalogError, Result};
use crate::interner::Interner;
use crate::term::{Term, Var};
use std::collections::HashSet;
use std::fmt;

/// A compiled rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The head atom derived when the body succeeds.
    pub head: Atom,
    /// Body items in *plan order* (see module docs).
    pub body: Vec<BodyItem>,
    /// Number of distinct variables (variable ids are `0..nvars`).
    pub nvars: u32,
    /// Variable names, indexed by variable id (for diagnostics).
    pub var_names: Vec<String>,
}

impl Rule {
    /// Compiles a rule: checks safety and reorders the body into an
    /// executable plan.
    ///
    /// Safety (range restriction) demands that every variable occurring in
    /// the head, in a negated atom, or in a comparison is bound by a
    /// positive atom, an assignment, or an aggregate. Aggregate bodies are
    /// checked recursively; the collected value and the grouping variables
    /// must be bound inside the aggregate body itself.
    pub fn compile(
        head: Atom,
        body: Vec<BodyItem>,
        nvars: u32,
        var_names: Vec<String>,
    ) -> Result<Rule> {
        Rule::compile_inner(head, body, nvars, var_names, &|s| format!("{s}"))
    }

    /// Like [`Rule::compile`], but renders predicate names through `syms`
    /// in error messages instead of the opaque `#{n}` fallback. Prefer
    /// this whenever an interner is in scope — diagnostics like
    /// `unsafe rule` then name the offending predicate.
    pub fn compile_named(
        head: Atom,
        body: Vec<BodyItem>,
        nvars: u32,
        var_names: Vec<String>,
        syms: &Interner,
    ) -> Result<Rule> {
        Rule::compile_inner(head, body, nvars, var_names, &|s| {
            syms.name_of(s)
                .map(str::to_string)
                .unwrap_or_else(|| format!("{s}"))
        })
    }

    fn compile_inner(
        head: Atom,
        body: Vec<BodyItem>,
        nvars: u32,
        var_names: Vec<String>,
        pred_name: &dyn Fn(crate::interner::Sym) -> String,
    ) -> Result<Rule> {
        let planned = plan_items(body, &HashSet::new()).map_err(|v| DatalogError::UnsafeRule {
            rule: format!("rule with head predicate {}", pred_name(head.pred)),
            var: var_name(&var_names, v),
        })?;
        // After the plan runs, these variables are bound:
        let mut bound: HashSet<Var> = HashSet::new();
        for item in &planned {
            bound.extend(item.provided_vars());
        }
        let mut head_vars = Vec::new();
        head.collect_vars(&mut head_vars);
        if let Some(&v) = head_vars.iter().find(|v| !bound.contains(v)) {
            return Err(DatalogError::UnsafeRule {
                rule: format!("rule with head predicate {}", pred_name(head.pred)),
                var: var_name(&var_names, v),
            });
        }
        Ok(Rule {
            head,
            body: planned,
            nvars,
            var_names,
        })
    }

    /// A ground fact expressed as a body-less rule.
    pub fn fact(head: Atom) -> Result<Rule> {
        Rule::compile(head, Vec::new(), 0, Vec::new())
    }

    /// Greedily reorders the body for evaluation — a sideways-information-
    /// passing order: repeatedly pick the positive atom with the most
    /// arguments fully bound by the items scheduled so far, breaking ties
    /// toward the smaller estimated relation (`card`) and then source
    /// order. Guards (negation, comparison, assignment) are flushed as soon
    /// as their variables are bound; aggregates keep their phase-2
    /// placement, exactly as in [`Rule::compile`].
    ///
    /// Returns the reordered rule plus, for each new body position, the
    /// index of that item in the compiled body (the *join order*, recorded
    /// in the evaluation profile). Falls back to the compiled order if the
    /// greedy schedule cannot place every item (it always can for rules
    /// that passed [`Rule::compile`]).
    pub fn reorder(
        &self,
        mut card: impl FnMut(crate::interner::Sym) -> usize,
    ) -> (Rule, Vec<usize>) {
        use std::cmp::Reverse;
        fn term_bound(t: &Term, bound: &HashSet<Var>) -> bool {
            let mut vars = Vec::new();
            t.collect_vars(&mut vars);
            vars.iter().all(|v| bound.contains(v))
        }
        fn flush(
            body: &[BodyItem],
            remaining: &mut Vec<usize>,
            bound: &mut HashSet<Var>,
            order: &mut Vec<usize>,
        ) {
            let mut progressed = true;
            while progressed {
                progressed = false;
                let mut i = 0;
                while i < remaining.len() {
                    let item = &body[remaining[i]];
                    let ready = match item {
                        BodyItem::Pos(_) | BodyItem::Agg(_) => false,
                        other => other.required_vars().iter().all(|v| bound.contains(v)),
                    };
                    if ready {
                        let oi = remaining.remove(i);
                        bound.extend(body[oi].provided_vars());
                        order.push(oi);
                        progressed = true;
                    } else {
                        i += 1;
                    }
                }
            }
        }

        let n = self.body.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut bound: HashSet<Var> = HashSet::new();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        // Phase 1: positives by bound-argument count then cardinality,
        // guards flushed eagerly.
        loop {
            flush(&self.body, &mut remaining, &mut bound, &mut order);
            let best = remaining
                .iter()
                .enumerate()
                .filter_map(|(ri, &oi)| match &self.body[oi] {
                    BodyItem::Pos(atom) => {
                        let bound_args = atom.args.iter().filter(|a| term_bound(a, &bound)).count();
                        Some((ri, oi, bound_args, card(atom.pred)))
                    }
                    _ => None,
                })
                .max_by_key(|&(_, oi, bound_args, size)| (bound_args, Reverse(size), Reverse(oi)));
            match best {
                Some((ri, oi, _, _)) => {
                    remaining.remove(ri);
                    bound.extend(self.body[oi].provided_vars());
                    order.push(oi);
                }
                None => break,
            }
        }
        // Phase 2: aggregates in source order, flushing newly-ready guards.
        while let Some(ri) = remaining
            .iter()
            .position(|&oi| matches!(self.body[oi], BodyItem::Agg(_)))
        {
            let oi = remaining.remove(ri);
            bound.extend(self.body[oi].provided_vars());
            order.push(oi);
            flush(&self.body, &mut remaining, &mut bound, &mut order);
        }
        if !remaining.is_empty() {
            debug_assert!(false, "compiled rule failed to reschedule");
            return (self.clone(), (0..n).collect());
        }
        let body = order.iter().map(|&i| self.body[i].clone()).collect();
        (
            Rule {
                head: self.head.clone(),
                body,
                nvars: self.nvars,
                var_names: self.var_names.clone(),
            },
            order,
        )
    }

    /// Indices (into `body`) of the positive atoms, in plan order.
    pub fn positive_atom_indices(&self) -> Vec<usize> {
        self.body
            .iter()
            .enumerate()
            .filter_map(|(i, b)| matches!(b, BodyItem::Pos(_)).then_some(i))
            .collect()
    }

    /// Rendering adapter.
    pub fn display<'a>(&'a self, syms: &'a Interner) -> RuleDisplay<'a> {
        RuleDisplay { rule: self, syms }
    }
}

fn var_name(names: &[String], v: Var) -> String {
    names
        .get(v.index())
        .cloned()
        .unwrap_or_else(|| format!("?{}", v.0))
}

/// Greedily schedules `items`, given variables already `bound` from an
/// enclosing scope (used for aggregate bodies, which share the rule's
/// variable space). Returns the items in execution order, or the first
/// variable that can never be bound.
///
/// Aggregates are always scheduled *after* every non-aggregate item, in
/// source order: their grouping semantics depend on which correlated
/// variables are bound, so their position must be predictable to the rule
/// author. Guards that mention an aggregate's result run after it.
fn plan_items(
    items: Vec<BodyItem>,
    outer_bound: &HashSet<Var>,
) -> std::result::Result<Vec<BodyItem>, Var> {
    let mut bound = outer_bound.clone();
    let mut planned = Vec::with_capacity(items.len());
    let (mut aggs, mut rest): (Vec<BodyItem>, Vec<BodyItem>) = {
        let mut aggs = Vec::new();
        let mut rest = Vec::new();
        for it in items {
            if matches!(it, BodyItem::Agg(_)) {
                aggs.push(it);
            } else {
                rest.push(it);
            }
        }
        (aggs, rest)
    };
    // Phase 1: positives in source order, guards flushed as soon as bound.
    loop {
        flush_ready(&mut rest, &mut bound, &mut planned);
        match rest.iter().position(|b| matches!(b, BodyItem::Pos(_))) {
            Some(pos) => {
                let item = rest.remove(pos);
                bound.extend(item.provided_vars());
                planned.push(item);
            }
            None => break,
        }
    }
    // Phase 2: aggregates in source order, flushing newly-ready guards.
    while !aggs.is_empty() {
        let item = aggs.remove(0);
        if let BodyItem::Agg(agg) = &item {
            let mut inner_bound = bound.clone();
            inner_bound.extend(agg.group_by.iter().copied());
            // The aggregate body must be plannable on its own.
            plan_items(agg.body.clone(), &inner_bound)?;
        }
        bound.extend(item.provided_vars());
        planned.push(item);
        flush_ready(&mut rest, &mut bound, &mut planned);
    }
    // Anything left is unsatisfiable.
    if let Some(item) = rest.first() {
        let v = item
            .required_vars()
            .into_iter()
            .find(|v| !bound.contains(v))
            .unwrap_or(Var(0));
        return Err(v);
    }
    Ok(planned)
}

/// Moves every guarded item in `rest` whose required variables are all in
/// `bound` to the end of `planned`, repeating until a fixpoint.
fn flush_ready(rest: &mut Vec<BodyItem>, bound: &mut HashSet<Var>, planned: &mut Vec<BodyItem>) {
    let mut progressed = true;
    while progressed {
        progressed = false;
        let mut i = 0;
        while i < rest.len() {
            let ready = match &rest[i] {
                BodyItem::Pos(_) | BodyItem::Agg(_) => false,
                other => other.required_vars().iter().all(|v| bound.contains(v)),
            };
            if ready {
                let item = rest.remove(i);
                bound.extend(item.provided_vars());
                planned.push(item);
                progressed = true;
            } else {
                i += 1;
            }
        }
    }
}

/// Pretty-printing adapter for [`Rule`].
pub struct RuleDisplay<'a> {
    rule: &'a Rule,
    syms: &'a Interner,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = &self.rule.var_names;
        write!(f, "{}", atom_str(&self.rule.head, self.syms, names))?;
        if !self.rule.body.is_empty() {
            write!(f, " :- ")?;
            for (i, b) in self.rule.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match b {
                    BodyItem::Pos(a) => write!(f, "{}", atom_str(a, self.syms, names))?,
                    BodyItem::Neg(a) => write!(f, "not {}", atom_str(a, self.syms, names))?,
                    BodyItem::Cmp(op, l, r) => write!(
                        f,
                        "{} {op} {}",
                        expr_str(l, self.syms, names),
                        expr_str(r, self.syms, names)
                    )?,
                    BodyItem::Assign(t, e) => write!(
                        f,
                        "{} = {}",
                        term_str(t, self.syms, names),
                        expr_str(e, self.syms, names)
                    )?,
                    BodyItem::Agg(a) => {
                        write!(f, "{} = {}{{", var_str(a.result, names), a.func)?;
                        write!(f, "{}", term_str(&a.value, self.syms, names))?;
                        if !a.group_by.is_empty() {
                            let gs: Vec<String> =
                                a.group_by.iter().map(|v| var_str(*v, names)).collect();
                            write!(f, " [{}]", gs.join(", "))?;
                        }
                        write!(f, " : ")?;
                        for (j, inner) in a.body.iter().enumerate() {
                            if j > 0 {
                                write!(f, ", ")?;
                            }
                            match inner {
                                BodyItem::Pos(ia) => {
                                    write!(f, "{}", atom_str(ia, self.syms, names))?
                                }
                                BodyItem::Neg(ia) => {
                                    write!(f, "not {}", atom_str(ia, self.syms, names))?
                                }
                                BodyItem::Cmp(op, l, r) => write!(
                                    f,
                                    "{} {op} {}",
                                    expr_str(l, self.syms, names),
                                    expr_str(r, self.syms, names)
                                )?,
                                BodyItem::Assign(t, e) => write!(
                                    f,
                                    "{} = {}",
                                    term_str(t, self.syms, names),
                                    expr_str(e, self.syms, names)
                                )?,
                                BodyItem::Agg(_) => write!(f, "<nested-agg>")?,
                            }
                        }
                        write!(f, "}}")?
                    }
                }
            }
        }
        write!(f, ".")
    }
}

/// Variable rendering that survives re-parsing: prefer the recorded name
/// (already uppercase/underscore-led by construction), fall back to a
/// synthetic uppercase name.
fn var_str(v: Var, names: &[String]) -> String {
    match names.get(v.index()) {
        Some(n) if n.starts_with(|c: char| c.is_ascii_uppercase()) => n.clone(),
        _ => format!("V__{}", v.0),
    }
}

fn term_str(t: &Term, syms: &Interner, names: &[String]) -> String {
    match t {
        Term::Var(v) => var_str(*v, names),
        Term::Const(s) => {
            let raw = syms.resolve(*s);
            // Names that would not re-lex as a lowercase identifier are
            // emitted as quoted strings.
            let ident_ok = raw.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && raw.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
            if ident_ok {
                raw.to_string()
            } else {
                format!("{raw:?}")
            }
        }
        Term::Int(i) => i.to_string(),
        Term::Func(g, args) => {
            let inner: Vec<String> = args.iter().map(|a| term_str(a, syms, names)).collect();
            format!("{}({})", syms.resolve(*g), inner.join(","))
        }
    }
}

fn atom_str(a: &Atom, syms: &Interner, names: &[String]) -> String {
    if a.args.is_empty() {
        return syms.resolve(a.pred).to_string();
    }
    let inner: Vec<String> = a.args.iter().map(|t| term_str(t, syms, names)).collect();
    format!("{}({})", syms.resolve(a.pred), inner.join(","))
}

fn expr_str(e: &crate::atom::Expr, syms: &Interner, names: &[String]) -> String {
    use crate::atom::Expr;
    match e {
        Expr::Term(t) => term_str(t, syms, names),
        Expr::Add(a, b) => format!(
            "({} + {})",
            expr_str(a, syms, names),
            expr_str(b, syms, names)
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            expr_str(a, syms, names),
            expr_str(b, syms, names)
        ),
        Expr::Mul(a, b) => format!(
            "({} * {})",
            expr_str(a, syms, names),
            expr_str(b, syms, names)
        ),
        Expr::Div(a, b) => format!(
            "({} / {})",
            expr_str(a, syms, names),
            expr_str(b, syms, names)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{CmpOp, Expr};
    use crate::interner::Interner;

    fn setup() -> (Interner, crate::interner::Sym, crate::interner::Sym) {
        let mut syms = Interner::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        (syms, p, q)
    }

    #[test]
    fn safe_rule_compiles() {
        let (_syms, p, q) = setup();
        let head = Atom::new(p, vec![Term::Var(Var(0))]);
        let body = vec![BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(0))]))];
        assert!(Rule::compile(head, body, 1, vec!["X".into()]).is_ok());
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let (_syms, p, q) = setup();
        let head = Atom::new(p, vec![Term::Var(Var(1))]);
        let body = vec![BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(0))]))];
        let err = Rule::compile(head, body, 2, vec!["X".into(), "Y".into()]).unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeRule { var, .. } if var == "Y"));
    }

    #[test]
    fn unsafe_negation_rejected() {
        let (_syms, p, q) = setup();
        let head = Atom::new(p, vec![Term::Var(Var(0))]);
        let body = vec![
            BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(0))])),
            BodyItem::Neg(Atom::new(q, vec![Term::Var(Var(1))])),
        ];
        assert!(Rule::compile(head, body, 2, vec!["X".into(), "Y".into()]).is_err());
    }

    #[test]
    fn negation_scheduled_after_binding() {
        let (_syms, p, q) = setup();
        let head = Atom::new(p, vec![Term::Var(Var(0))]);
        // Source order puts the negation first; the plan must move it
        // after the positive atom that binds X.
        let body = vec![
            BodyItem::Neg(Atom::new(q, vec![Term::Var(Var(0))])),
            BodyItem::Pos(Atom::new(p, vec![Term::Var(Var(0))])),
        ];
        let r = Rule::compile(head, body, 1, vec!["X".into()]).unwrap();
        assert!(matches!(r.body[0], BodyItem::Pos(_)));
        assert!(matches!(r.body[1], BodyItem::Neg(_)));
    }

    #[test]
    fn comparison_scheduled_eagerly() {
        let (_syms, p, q) = setup();
        let head = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        // X bound by first atom; X > 3 should run before the second atom.
        let body = vec![
            BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(0))])),
            BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(1))])),
            BodyItem::Cmp(
                CmpOp::Gt,
                Expr::Term(Term::Var(Var(0))),
                Expr::Term(Term::Int(3)),
            ),
        ];
        let r = Rule::compile(head, body, 2, vec!["X".into(), "Y".into()]).unwrap();
        assert!(matches!(r.body[1], BodyItem::Cmp(..)), "plan: {:?}", r.body);
    }

    #[test]
    fn reorder_prefers_bound_then_small_relations() {
        let mut syms = Interner::new();
        let big = syms.intern("big");
        let link = syms.intern("link");
        let tiny = syms.intern("tiny");
        let p = syms.intern("p");
        let head = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let body = vec![
            BodyItem::Pos(Atom::new(big, vec![Term::Var(Var(0))])),
            BodyItem::Pos(Atom::new(link, vec![Term::Var(Var(0)), Term::Var(Var(1))])),
            BodyItem::Pos(Atom::new(tiny, vec![Term::Var(Var(1))])),
        ];
        let r = Rule::compile(head, body, 2, vec!["X".into(), "Y".into()]).unwrap();
        // Nothing bound at the start: pick the smallest relation (tiny),
        // which binds Y; link then has a bound argument, big none.
        let (planned, order) = r.reorder(|s| {
            if s == big {
                1000
            } else if s == link {
                10
            } else {
                1
            }
        });
        assert_eq!(order, vec![2, 1, 0]);
        assert!(matches!(&planned.body[0], BodyItem::Pos(a) if a.pred == tiny));
        assert!(matches!(&planned.body[2], BodyItem::Pos(a) if a.pred == big));
    }

    #[test]
    fn reorder_flushes_guards_once_bound() {
        let mut syms = Interner::new();
        let q = syms.intern("q");
        let r_ = syms.intern("r");
        let m = syms.intern("m");
        let p = syms.intern("p");
        let head = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let body = vec![
            BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(0))])),
            BodyItem::Neg(Atom::new(m, vec![Term::Var(Var(1))])),
            BodyItem::Pos(Atom::new(r_, vec![Term::Var(Var(1))])),
        ];
        let rule = Rule::compile(head, body, 2, vec!["X".into(), "Y".into()]).unwrap();
        // Compiled order: q, r, not m. Reorder with r much smaller than q:
        // r first, the negation flushes right after it, q last.
        let (planned, order) = rule.reorder(|s| if s == q { 100 } else { 1 });
        assert_eq!(order, vec![1, 2, 0]);
        assert!(matches!(planned.body[1], BodyItem::Neg(_)));
    }

    #[test]
    fn reorder_identity_when_order_already_best() {
        let (_syms, p, q) = setup();
        let head = Atom::new(p, vec![Term::Var(Var(0))]);
        let body = vec![BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(0))]))];
        let r = Rule::compile(head, body, 1, vec!["X".into()]).unwrap();
        let (_, order) = r.reorder(|_| 1);
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn assignment_binds_for_head() {
        let (_syms, p, q) = setup();
        let head = Atom::new(p, vec![Term::Var(Var(1))]);
        let body = vec![
            BodyItem::Pos(Atom::new(q, vec![Term::Var(Var(0))])),
            BodyItem::Assign(
                Term::Var(Var(1)),
                Expr::Add(
                    Box::new(Expr::Term(Term::Var(Var(0)))),
                    Box::new(Expr::Term(Term::Int(1))),
                ),
            ),
        ];
        assert!(Rule::compile(head, body, 2, vec!["X".into(), "Y".into()]).is_ok());
    }
}
