//! Terms of the deductive engine: variables, constants, integers, and
//! function terms.
//!
//! Function terms exist to support the *skolem placeholder objects*
//! `f_{C,r,D}(x)` that domain-map assertions create (paper §4): when the
//! object base does not contain a required role filler, an assertion rule
//! derives a placeholder object built from a function symbol applied to the
//! anchor object. Because function symbols can generate infinitely many
//! terms, evaluation enforces a configurable term-depth limit
//! (see [`crate::eval::EvalOptions`]).

use crate::interner::{Interner, Sym};
use std::fmt;
use std::sync::Arc;

/// A rule-local variable. Variable identities are scoped to a single rule;
/// `Var(0)` in one rule is unrelated to `Var(0)` in another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The raw index of this variable within its rule.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term: either a variable or a (possibly nested) ground value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A rule-local variable.
    Var(Var),
    /// A symbolic constant (interned).
    Const(Sym),
    /// An integer constant.
    Int(i64),
    /// A function term `f(t1, ..., tn)`; used for skolem placeholders.
    /// Argument lists are `Arc`-shared so terms stay cheap to clone and
    /// whole models can cross thread boundaries (see `QuerySnapshot` in
    /// `kind-core`).
    Func(Sym, Arc<[Term]>),
}

impl Term {
    /// Builds a function term.
    pub fn func(f: Sym, args: Vec<Term>) -> Term {
        Term::Func(f, args.into())
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) | Term::Int(_) => true,
            Term::Func(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Nesting depth of function terms: constants have depth 0,
    /// `f(c)` has depth 1, `f(g(c))` has depth 2, and so on.
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) | Term::Int(_) => 0,
            Term::Func(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// Collects the variables occurring in this term into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Const(_) | Term::Int(_) => {}
            Term::Func(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Applies a substitution, replacing bound variables by their values.
    /// Unbound variables are left in place.
    pub fn apply(&self, subst: &Subst) -> Term {
        match self {
            Term::Var(v) => subst.get(*v).cloned().unwrap_or_else(|| self.clone()),
            Term::Const(_) | Term::Int(_) => self.clone(),
            Term::Func(f, args) => Term::Func(*f, args.iter().map(|a| a.apply(subst)).collect()),
        }
    }

    /// Renders the term using `syms` for symbol names.
    pub fn display<'a>(&'a self, syms: &'a Interner) -> TermDisplay<'a> {
        TermDisplay { term: self, syms }
    }
}

/// Pretty-printing adapter tying a [`Term`] to an [`Interner`].
pub struct TermDisplay<'a> {
    term: &'a Term,
    syms: &'a Interner,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(s) => write!(f, "{}", self.syms.resolve(*s)),
            Term::Int(i) => write!(f, "{i}"),
            Term::Func(g, args) => {
                write!(f, "{}(", self.syms.resolve(*g))?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", a.display(self.syms))?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A substitution mapping rule-local variables to ground terms.
///
/// Backed by a dense vector indexed by variable id, with an undo trail so
/// the evaluator can backtrack cheaply during joins.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    slots: Vec<Option<Term>>,
    trail: Vec<Var>,
}

impl Subst {
    /// Creates a substitution with room for `nvars` variables.
    pub fn with_capacity(nvars: usize) -> Self {
        Subst {
            slots: vec![None; nvars],
            trail: Vec::new(),
        }
    }

    /// Current binding of `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Term> {
        self.slots.get(v.index()).and_then(|s| s.as_ref())
    }

    /// Binds `v` to `t`, recording the binding on the trail.
    ///
    /// # Panics
    /// Panics (debug) if `v` is already bound; callers must check first.
    pub fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(self.get(v).is_none(), "rebinding {v}");
        if v.index() >= self.slots.len() {
            self.slots.resize(v.index() + 1, None);
        }
        self.slots[v.index()] = Some(t);
        self.trail.push(v);
    }

    /// A checkpoint for later [`Self::undo_to`].
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Undoes all bindings made after `mark`.
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail underflow");
            self.slots[v.index()] = None;
        }
    }

    /// Clears all bindings.
    pub fn clear(&mut self) {
        for v in self.trail.drain(..) {
            self.slots[v.index()] = None;
        }
    }

    /// Matches pattern term `pat` against ground term `val`, extending the
    /// substitution. Returns `false` (leaving any partial bindings for the
    /// caller to undo via the trail) when matching fails.
    ///
    /// This is one-way matching, not full unification: `val` must be
    /// ground, which is an invariant of bottom-up evaluation.
    pub fn match_term(&mut self, pat: &Term, val: &Term) -> bool {
        debug_assert!(val.is_ground(), "match_term against non-ground value");
        match pat {
            Term::Var(v) => match self.get(*v) {
                Some(bound) => bound == val,
                None => {
                    self.bind(*v, val.clone());
                    true
                }
            },
            Term::Const(a) => matches!(val, Term::Const(b) if a == b),
            Term::Int(a) => matches!(val, Term::Int(b) if a == b),
            Term::Func(fa, pargs) => match val {
                Term::Func(fb, vargs) if fa == fb && pargs.len() == vargs.len() => pargs
                    .iter()
                    .zip(vargs.iter())
                    .all(|(p, v)| self.match_term(p, v)),
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> Interner {
        Interner::new()
    }

    #[test]
    fn ground_and_depth() {
        let mut s = syms();
        let f = s.intern("f");
        let c = Term::Const(s.intern("c"));
        assert!(c.is_ground());
        assert_eq!(c.depth(), 0);
        let t = Term::func(f, vec![c.clone()]);
        assert_eq!(t.depth(), 1);
        let t2 = Term::func(f, vec![t]);
        assert_eq!(t2.depth(), 2);
        let open = Term::func(f, vec![Term::Var(Var(0))]);
        assert!(!open.is_ground());
    }

    #[test]
    fn match_binds_and_checks() {
        let mut s = syms();
        let c = Term::Const(s.intern("c"));
        let d = Term::Const(s.intern("d"));
        let mut sub = Subst::with_capacity(2);
        assert!(sub.match_term(&Term::Var(Var(0)), &c));
        assert_eq!(sub.get(Var(0)), Some(&c));
        // Bound variable must match its binding.
        assert!(sub.match_term(&Term::Var(Var(0)), &c));
        assert!(!sub.match_term(&Term::Var(Var(0)), &d));
    }

    #[test]
    fn match_function_terms() {
        let mut s = syms();
        let f = s.intern("f");
        let g = s.intern("g");
        let c = Term::Const(s.intern("c"));
        let pat = Term::func(f, vec![Term::Var(Var(0))]);
        let val = Term::func(f, vec![c.clone()]);
        let mut sub = Subst::with_capacity(1);
        assert!(sub.match_term(&pat, &val));
        assert_eq!(sub.get(Var(0)), Some(&c));
        sub.clear();
        let other = Term::func(g, vec![c.clone()]);
        assert!(!sub.match_term(&pat, &other));
    }

    #[test]
    fn trail_undo() {
        let s = {
            let mut s = syms();
            s.intern("c");
            s
        };
        let c = Term::Const(s.get("c").unwrap());
        let mut sub = Subst::with_capacity(2);
        let m = sub.mark();
        sub.bind(Var(0), c.clone());
        sub.bind(Var(1), c);
        sub.undo_to(m);
        assert!(sub.get(Var(0)).is_none());
        assert!(sub.get(Var(1)).is_none());
    }

    #[test]
    fn apply_substitutes_nested() {
        let mut s = syms();
        let f = s.intern("f");
        let c = Term::Const(s.intern("c"));
        let mut sub = Subst::with_capacity(1);
        sub.bind(Var(0), c.clone());
        let t = Term::func(f, vec![Term::Var(Var(0))]);
        assert_eq!(t.apply(&sub), Term::func(f, vec![c]));
    }

    #[test]
    fn collect_vars_dedups() {
        let mut s = syms();
        let f = s.intern("f");
        let t = Term::func(
            f,
            vec![Term::Var(Var(1)), Term::Var(Var(1)), Term::Var(Var(0))],
        );
        let mut vs = Vec::new();
        t.collect_vars(&mut vs);
        assert_eq!(vs, vec![Var(1), Var(0)]);
    }
}
