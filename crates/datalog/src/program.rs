//! Predicate dependency analysis: strongly connected components and
//! stratification.
//!
//! The GCM requires expressiveness up to FO(LFP) (§3 EXPR), realized as
//! Datalog with well-founded negation. Programs whose negation is
//! stratified get the cheap per-stratum semi-naive path; programs with
//! recursion through negation are detected here and routed to the
//! alternating-fixpoint evaluator (`wfs` module). Recursion through an
//! *aggregate* has no well-founded reading in this engine and is rejected.

use crate::atom::{Aggregate, BodyItem};
use crate::error::{DatalogError, Result};
use crate::interner::Sym;
use crate::rule::Rule;
use std::collections::HashMap;

/// A group of mutually recursive rules, evaluated together.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// Indices into the program's rule list.
    pub rules: Vec<usize>,
    /// Head predicates defined in this stratum.
    pub preds: Vec<Sym>,
    /// Whether any predicate in this stratum is recursive (needed to decide
    /// between one-shot and fixpoint evaluation).
    pub recursive: bool,
    /// Whether this stratum's cycle goes through negation: its rules need
    /// the alternating-fixpoint (well-founded) evaluator. The global
    /// [`Stratification::needs_wfs`] is the disjunction of these flags.
    pub wfs: bool,
}

/// The result of dependency analysis.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Strata in evaluation order (dependencies first).
    pub strata: Vec<Stratum>,
    /// `true` when some cycle goes through negation, requiring the
    /// well-founded (alternating fixpoint) evaluator.
    pub needs_wfs: bool,
}

/// A dependency of a rule head on a body predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepKind {
    Positive,
    Negative,
    Aggregate,
}

fn rule_dependencies(rule: &Rule, out: &mut Vec<(Sym, DepKind)>) {
    for item in &rule.body {
        collect_item_deps(item, out);
    }
}

fn collect_item_deps(item: &BodyItem, out: &mut Vec<(Sym, DepKind)>) {
    match item {
        BodyItem::Pos(a) => out.push((a.pred, DepKind::Positive)),
        BodyItem::Neg(a) => out.push((a.pred, DepKind::Negative)),
        BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
        BodyItem::Agg(Aggregate { body, .. }) => {
            let mut inner = Vec::new();
            for b in body {
                collect_item_deps(b, &mut inner);
            }
            // Everything an aggregate reads must be fully computed before
            // the aggregate runs: treat as aggregate (stratified) edges.
            for (p, _) in inner {
                out.push((p, DepKind::Aggregate));
            }
        }
    }
}

/// Computes the stratification of `rules`.
///
/// # Errors
/// [`DatalogError::AggregateInRecursion`] when an aggregate edge lies on a
/// dependency cycle.
pub fn stratify(rules: &[Rule], resolve: impl Fn(Sym) -> String) -> Result<Stratification> {
    // Node set: every predicate appearing as a head or in a body.
    let mut nodes: Vec<Sym> = Vec::new();
    let mut node_id: HashMap<Sym, usize> = HashMap::new();
    let add_node = |s: Sym, nodes: &mut Vec<Sym>, node_id: &mut HashMap<Sym, usize>| {
        *node_id.entry(s).or_insert_with(|| {
            nodes.push(s);
            nodes.len() - 1
        })
    };
    let mut edges: Vec<Vec<(usize, DepKind)>> = Vec::new();
    let mut deps_scratch = Vec::new();
    for rule in rules {
        let h = add_node(rule.head.pred, &mut nodes, &mut node_id);
        if edges.len() <= h {
            edges.resize(nodes.len(), Vec::new());
        }
        deps_scratch.clear();
        rule_dependencies(rule, &mut deps_scratch);
        for &(p, kind) in &deps_scratch {
            let b = add_node(p, &mut nodes, &mut node_id);
            if edges.len() < nodes.len() {
                edges.resize(nodes.len(), Vec::new());
            }
            edges[h].push((b, kind));
        }
    }
    edges.resize(nodes.len(), Vec::new());

    // Tarjan's SCC. With edges head -> body ("head depends on body"),
    // components are emitted dependencies-first, which is exactly the
    // evaluation order we need.
    let sccs = tarjan(&edges);
    let mut scc_of = vec![usize::MAX; nodes.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &n in comp {
            scc_of[n] = ci;
        }
    }

    // Classify intra-SCC edges.
    let mut needs_wfs = false;
    let mut scc_recursive = vec![false; sccs.len()];
    let mut scc_wfs = vec![false; sccs.len()];
    for (h, outs) in edges.iter().enumerate() {
        for &(b, kind) in outs {
            if scc_of[h] == scc_of[b] {
                scc_recursive[scc_of[h]] = true;
                match kind {
                    DepKind::Positive => {}
                    DepKind::Negative => {
                        needs_wfs = true;
                        scc_wfs[scc_of[h]] = true;
                    }
                    DepKind::Aggregate => {
                        return Err(DatalogError::AggregateInRecursion {
                            pred: resolve(nodes[h]),
                        })
                    }
                }
            }
        }
    }
    // Self-loop-free single-node SCCs are non-recursive unless a rule for
    // the predicate mentions it in its own body (covered above since a
    // self-edge is intra-SCC).

    // Group rules into strata by the SCC of their head predicate.
    let mut strata: Vec<Stratum> = sccs
        .iter()
        .enumerate()
        .map(|(ci, comp)| Stratum {
            rules: Vec::new(),
            preds: comp.iter().map(|&n| nodes[n]).collect(),
            recursive: false,
            wfs: scc_wfs[ci],
        })
        .collect();
    for (ci, comp) in sccs.iter().enumerate() {
        strata[ci].recursive = scc_recursive[ci] && {
            // A component of >1 node is always recursive; a single node is
            // recursive only if it has a self-edge (already recorded).
            comp.len() > 1 || scc_recursive[ci]
        };
    }
    for (ri, rule) in rules.iter().enumerate() {
        let n = node_id[&rule.head.pred];
        strata[scc_of[n]].rules.push(ri);
    }
    // Drop strata with no rules (pure EDB predicates).
    strata.retain(|s| !s.rules.is_empty());
    Ok(Stratification { strata, needs_wfs })
}

/// Iterative Tarjan SCC; returns components in reverse topological order of
/// the dependency graph (i.e. dependencies first).
fn tarjan(edges: &[Vec<(usize, DepKind)>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
        visited: bool,
    }
    let n = edges.len();
    let mut st = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index = 0u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS stack: (node, next-edge-position).
    let mut dfs: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if st[start].visited {
            continue;
        }
        dfs.push((start, 0));
        st[start].visited = true;
        st[start].index = next_index;
        st[start].lowlink = next_index;
        next_index += 1;
        stack.push(start);
        st[start].on_stack = true;
        while let Some(&mut (v, ref mut ei)) = dfs.last_mut() {
            if *ei < edges[v].len() {
                let (w, _) = edges[v][*ei];
                *ei += 1;
                if !st[w].visited {
                    st[w].visited = true;
                    st[w].index = next_index;
                    st[w].lowlink = next_index;
                    next_index += 1;
                    stack.push(w);
                    st[w].on_stack = true;
                    dfs.push((w, 0));
                } else if st[w].on_stack {
                    st[v].lowlink = st[v].lowlink.min(st[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = st[v].lowlink;
                    st[parent].lowlink = st[parent].lowlink.min(low);
                }
                if st[v].lowlink == st[v].index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        st[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{AggFunc, Atom};
    use crate::interner::Interner;
    use crate::term::{Term, Var};

    struct Ctx {
        syms: Interner,
    }

    impl Ctx {
        fn new() -> Self {
            Ctx {
                syms: Interner::new(),
            }
        }
        fn pred(&mut self, name: &str) -> Sym {
            self.syms.intern(name)
        }
        fn rule(&mut self, head: (&str, u32), body: Vec<BodyItem>) -> Rule {
            let p = self.pred(head.0);
            let args = (0..head.1).map(|i| Term::Var(Var(i))).collect();
            let nvars = 8;
            Rule::compile(
                Atom::new(p, args),
                body,
                nvars,
                (0..nvars).map(|i| format!("V{i}")).collect(),
            )
            .unwrap()
        }
        fn pos(&mut self, name: &str, arity: u32) -> BodyItem {
            let p = self.pred(name);
            BodyItem::Pos(Atom::new(
                p,
                (0..arity).map(|i| Term::Var(Var(i))).collect(),
            ))
        }
        fn neg(&mut self, name: &str, arity: u32) -> BodyItem {
            let p = self.pred(name);
            BodyItem::Neg(Atom::new(
                p,
                (0..arity).map(|i| Term::Var(Var(i))).collect(),
            ))
        }
    }

    #[test]
    fn nonrecursive_program_single_strata() {
        let mut c = Ctx::new();
        let b1 = c.pos("e", 2);
        let r1 = c.rule(("p", 2), vec![b1]);
        let s = stratify(&[r1], |s| format!("{s}")).unwrap();
        assert_eq!(s.strata.len(), 1);
        assert!(!s.needs_wfs);
        assert!(!s.strata[0].recursive);
    }

    #[test]
    fn transitive_closure_is_recursive_not_wfs() {
        let mut c = Ctx::new();
        let b1 = c.pos("e", 2);
        let r1 = c.rule(("tc", 2), vec![b1]);
        let b2a = c.pos("tc", 2);
        let b2b = c.pos("e", 2);
        let r2 = c.rule(("tc", 2), vec![b2a, b2b]);
        let s = stratify(&[r1, r2], |s| format!("{s}")).unwrap();
        assert!(!s.needs_wfs);
        let tc_stratum = s
            .strata
            .iter()
            .find(|st| !st.rules.is_empty())
            .expect("stratum");
        assert!(tc_stratum.recursive);
    }

    #[test]
    fn stratified_negation_not_wfs() {
        let mut c = Ctx::new();
        let b1 = c.pos("e", 2);
        let r1 = c.rule(("p", 2), vec![b1]);
        let b2a = c.pos("e", 2);
        let b2b = c.neg("p", 2);
        let r2 = c.rule(("q", 2), vec![b2a, b2b]);
        let s = stratify(&[r1, r2], |s| format!("{s}")).unwrap();
        assert!(!s.needs_wfs);
        assert_eq!(s.strata.len(), 2);
        // p's stratum must come before q's.
        let p = c.pred("p");
        let q = c.pred("q");
        let pi = s
            .strata
            .iter()
            .position(|st| st.preds.contains(&p))
            .unwrap();
        let qi = s
            .strata
            .iter()
            .position(|st| st.preds.contains(&q))
            .unwrap();
        assert!(pi < qi);
    }

    #[test]
    fn negation_cycle_needs_wfs() {
        let mut c = Ctx::new();
        let e1 = c.pos("e", 1);
        let nq = c.neg("q", 1);
        let r1 = c.rule(("p", 1), vec![e1, nq]);
        let e2 = c.pos("e", 1);
        let np = c.neg("p", 1);
        let r2 = c.rule(("q", 1), vec![e2, np]);
        let s = stratify(&[r1, r2], |s| format!("{s}")).unwrap();
        assert!(s.needs_wfs);
    }

    #[test]
    fn aggregate_in_cycle_rejected() {
        let mut c = Ctx::new();
        // p(X,N) :- e(X), N = count{ Y : p(Y,_) }  — aggregate over p,
        // and p defined in terms of it: a cycle through the aggregate.
        let e = c.pos("e", 1);
        let p = c.pred("p");
        let agg = BodyItem::Agg(Aggregate {
            func: AggFunc::Count,
            value: Term::Var(Var(2)),
            group_by: vec![],
            body: vec![BodyItem::Pos(Atom::new(
                p,
                vec![Term::Var(Var(2)), Term::Var(Var(3))],
            ))],
            result: Var(1),
        });
        let r = c.rule(("p", 2), vec![e, agg]);
        let err = stratify(&[r], |s| format!("{s}")).unwrap_err();
        assert!(matches!(err, DatalogError::AggregateInRecursion { .. }));
    }

    #[test]
    fn tarjan_orders_dependencies_first() {
        let mut c = Ctx::new();
        let b = c.pos("b", 1);
        let r1 = c.rule(("a", 1), vec![b]);
        let cc = c.pos("c", 1);
        let r2 = c.rule(("b", 1), vec![cc]);
        let s = stratify(&[r1, r2], |s| format!("{s}")).unwrap();
        let a = c.pred("a");
        let bb = c.pred("b");
        let ai = s
            .strata
            .iter()
            .position(|st| st.preds.contains(&a))
            .unwrap();
        let bi = s
            .strata
            .iter()
            .position(|st| st.preds.contains(&bb))
            .unwrap();
        assert!(bi < ai);
    }
}
