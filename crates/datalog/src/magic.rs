//! Magic-sets rewrite: demand-driven (goal-directed) evaluation.
//!
//! Bottom-up evaluation computes whole predicates; a selective goal like
//! `calcium_sites("Calbindin", L)` pays for every protein's closure all
//! the same. The classical fix is the *magic-sets* transformation: given
//! the goal's bound/free argument pattern, **adorn** each reachable rule
//! with a sideways-information-passing (SIP) order, introduce a **magic
//! predicate** per adorned predicate holding the *demanded* bindings,
//! guard every adorned rule with its magic predicate, and seed the magic
//! predicate of the goal from the query constants. Bottom-up evaluation
//! of the rewritten program then derives only facts some demand can
//! actually reach — the bottom-up engine emulates top-down relevance
//! while keeping termination and the existing semi-naive / join-reorder /
//! parallel-fixpoint machinery (the rewrite runs *after* parsing and
//! *before* stratification).
//!
//! ## Scope and soundness
//!
//! Demand filtering is only sound for predicates whose facts are consumed
//! *monotonically*. Anything tested under negation, read inside an
//! aggregate body, or feeding either (transitively) must be materialized
//! in full — restricting those predicates to demanded bindings would make
//! `not p(..)` true for never-demanded tuples and would corrupt counts.
//! The rewrite therefore splits the reachable program into a
//! **needs-full** fragment (kept verbatim, evaluated as before) and a
//! **demandable** fragment (adorned + guarded). Negative edges only ever
//! point from the adorned world into the needs-full world, so a
//! stratifiable program stays stratifiable; if stratification of the
//! rewritten program fails anyway (or the program needs the well-founded
//! evaluator), the caller falls back to plain bottom-up — the rewrite is
//! an optimization, never a semantics change.
//!
//! Adorned predicates are interned as `pred@adn` (e.g. `inst@bf`) and
//! magic predicates as `m@pred@adn`; `@` cannot appear in parsed
//! predicate names, so the generated namespace never collides with user
//! programs. Predicates that keep extensional facts (or absorbed
//! base-cache facts) additionally get a *copy rule*
//! `p@adn(..) :- m@p@adn(..), p(..)` so stored tuples flow into the
//! adorned world, and a final *bridge rule* `g(..) :- g@adn(..)` restores
//! the goal predicate under its original name for answer extraction.

use crate::atom::{Atom, BodyItem};
use crate::fact::FactStore;
use crate::interner::{Interner, Sym};
use crate::rule::Rule;
use crate::term::{Term, Var};
use std::collections::{HashMap, HashSet, VecDeque};

/// The output of a successful rewrite: the transformed program plus the
/// demand seeds and enough bookkeeping to annotate the evaluation
/// profile.
#[derive(Debug, Clone)]
pub(crate) struct MagicRewrite {
    /// The rewritten program: needs-full originals, adorned rules, magic
    /// rules, copy rules, and the goal bridge.
    pub rules: Vec<Rule>,
    /// Ground demand facts to insert before evaluation (the goal's magic
    /// seed).
    pub seeds: Vec<(Sym, Vec<Term>)>,
    /// Every adorned predicate symbol generated (`pred@adn`).
    pub adorned_preds: HashSet<Sym>,
    /// Every magic predicate symbol generated (`m@pred@adn`).
    pub magic_preds: HashSet<Sym>,
    /// Number of adorned (binding-specialized) rules, excluding magic,
    /// copy, and bridge rules.
    pub adorned_rules: usize,
    /// The cost model's estimate of the demanded fraction of the
    /// reachable EDB (see [`estimate_demand_ratio`]); `None` when the
    /// reachable EDB is below the estimation floor (tiny programs always
    /// accept the rewrite).
    pub demand_ratio: Option<f64>,
}

/// Decline the rewrite when the estimated demand cone reaches this
/// fraction of the reachable EDB: magic's per-round guard joins and
/// doubled predicate space only pay off when demand actually prunes.
pub(crate) const DECLINE_RATIO: f64 = 0.5;

/// Reachable-EDB size below which no estimate is attempted: on tiny
/// inputs the rewrite's overhead is noise either way, and the estimator
/// itself would dominate.
const ESTIMATE_FLOOR: usize = 64;

/// Connectivity hops explored by the cone estimate. A cone still growing
/// at the horizon under-estimates — erring toward *accepting* the
/// rewrite, the status-quo behavior.
const ESTIMATE_HOPS: usize = 6;

/// Collects the ground atomic constants (symbols and integers) of a
/// term, recursing through function terms.
fn collect_ground_consts(t: &Term, out: &mut HashSet<Term>) {
    match t {
        Term::Var(_) => {}
        Term::Func(_, args) => {
            for a in args.iter() {
                collect_ground_consts(a, out);
            }
        }
        other => {
            out.insert(other.clone());
        }
    }
}

/// First argument position whose term (recursing through function terms)
/// contains a demanded constant, or `None` when the tuple is untouched.
fn first_touched_position(tuple: &[Term], s: &HashSet<Term>) -> Option<usize> {
    fn touch(term: &Term, s: &HashSet<Term>) -> bool {
        match term {
            Term::Func(_, args) => args.iter().any(|a| touch(a, s)),
            other => s.contains(other),
        }
    }
    tuple.iter().position(|a| touch(a, s))
}

/// Estimates what fraction of the reachable EDB the rewrite's demand can
/// touch, from cardinalities and constant connectivity alone — no
/// evaluation. Seeds are the goal's bound constants plus any ground
/// constants compiled into magic-rule heads (body constants propagate
/// demand through those); the cone then grows breadth-first for up to
/// [`ESTIMATE_HOPS`] rounds: a tuple containing a demanded constant
/// anywhere is counted, but propagation is *directional* — only when the
/// first touched position is a non-subject one does the tuple contribute
/// new constants, and then only its subject's (position 0). This mirrors
/// how sideways information passing actually binds in the engine's
/// subject-first relations (`sub(child, parent)`, `inst(obj, class)`,
/// `mi(obj, attr, val)`): demanding a parent/class/value selects
/// subjects, while a tuple matched *through* its subject must not leak
/// its object-side constants — otherwise one hub constant (`thing`, a
/// shared attribute name, a common integer) floods the estimate and every
/// query looks unprunable. Dropping the object-side constants
/// under-estimates the cone, erring toward *accepting* the rewrite (the
/// status-quo behavior); a ratio near 1.0 means demand cannot prune and
/// the rewrite should be declined. Returns `None` below the size floor.
fn estimate_demand_ratio(
    rules: &[Rule],
    edb: &FactStore,
    seeds: &[(Sym, Vec<Term>)],
    rewritten: &[Rule],
    magic_preds: &HashSet<Sym>,
) -> Option<f64> {
    // Referenced relations in deterministic first-mention order (the
    // estimate feeds a profile flag checked by bit-identical tests).
    let mut seen: HashSet<Sym> = HashSet::new();
    let mut preds: Vec<Sym> = Vec::new();
    for r in rules {
        if seen.insert(r.head.pred) {
            preds.push(r.head.pred);
        }
        let mut body = HashSet::new();
        crate::collect_body_preds(&r.body, &mut body);
        let mut body: Vec<Sym> = body.into_iter().collect();
        body.sort_unstable_by_key(|&p| p.index());
        for p in body {
            if seen.insert(p) {
                preds.push(p);
            }
        }
    }
    let rels: Vec<(Sym, &crate::fact::Relation)> = preds
        .into_iter()
        .filter_map(|p| edb.relation(p).filter(|r| !r.is_empty()).map(|r| (p, r)))
        .collect();
    let full: usize = rels.iter().map(|(_, r)| r.len()).sum();
    if full <= ESTIMATE_FLOOR {
        return None;
    }
    let mut demanded: HashSet<Term> = HashSet::new();
    for (_, args) in seeds {
        for a in args {
            collect_ground_consts(a, &mut demanded);
        }
    }
    for r in rewritten {
        if magic_preds.contains(&r.head.pred) {
            for a in &r.head.args {
                collect_ground_consts(a, &mut demanded);
            }
        }
    }
    if demanded.is_empty() {
        // No concrete constant anywhere: demand cannot prune at all.
        return Some(1.0);
    }
    let mut counted: HashSet<(Sym, usize)> = HashSet::new();
    for _ in 0..ESTIMATE_HOPS {
        let mut grew = false;
        for &(p, rel) in &rels {
            for (i, t) in rel.iter().enumerate() {
                if counted.contains(&(p, i)) {
                    continue;
                }
                if let Some(pos) = first_touched_position(t, &demanded) {
                    counted.insert((p, i));
                    if pos > 0 {
                        if let Some(subject) = t.first() {
                            collect_ground_consts(subject, &mut demanded);
                        }
                    }
                    grew = true;
                }
            }
        }
        // The decision threshold can only be crossed upward; stop as
        // soon as it is (the exact ratio past it changes nothing).
        if 2 * counted.len() >= full || !grew {
            break;
        }
    }
    Some(counted.len() as f64 / full as f64)
}

/// An adornment: per argument position, whether the position is bound at
/// call time.
type Adornment = Vec<bool>;

fn adorn_suffix(adn: &[bool]) -> String {
    adn.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// Whether `t` is fully determined given `bound` variables (ground terms
/// count as bound).
fn term_bound(t: &Term, bound: &HashSet<Var>) -> bool {
    let mut vars = Vec::new();
    t.collect_vars(&mut vars);
    vars.iter().all(|v| bound.contains(v))
}

/// Rewrites the (already relevance-pruned) program `rules` for the ground
/// or partially-ground `goal`. `frozen` predicates are treated as purely
/// extensional: their rules are dropped and their stored facts stand in
/// for their extension (the seeded base-cache path passes its *stable*
/// set here). Returns `None` when the rewrite does not apply — the goal
/// predicate is extensional, sits in the needs-full fragment, generated
/// rules fail to compile, or no demand constraint was produced at all (a
/// pure rename would only add overhead) — and the caller falls back to
/// plain bottom-up evaluation.
pub(crate) fn rewrite(
    rules: &[Rule],
    edb: &FactStore,
    goal: &Atom,
    frozen: Option<&HashSet<Sym>>,
    syms: &mut Interner,
) -> Option<MagicRewrite> {
    let is_frozen = |p: Sym| frozen.is_some_and(|f| f.contains(&p));
    // The intensional predicates the rewrite may touch: rule heads that
    // are not frozen.
    let mut idb: HashSet<Sym> = HashSet::new();
    for r in rules {
        if !is_frozen(r.head.pred) {
            idb.insert(r.head.pred);
        }
    }
    // Needs-full fragment: predicates consumed non-monotonically (under
    // negation or inside an aggregate body), closed transitively over the
    // rules that define them — their whole derivation cone must be
    // materialized in full.
    let mut needs_full: HashSet<Sym> = HashSet::new();
    for r in rules {
        collect_nonmono_preds(&r.body, false, &mut needs_full);
    }
    loop {
        let mut changed = false;
        for r in rules {
            if needs_full.contains(&r.head.pred) && idb.contains(&r.head.pred) {
                let mut body_preds = HashSet::new();
                crate::collect_body_preds(&r.body, &mut body_preds);
                for p in body_preds {
                    if idb.contains(&p) {
                        changed |= needs_full.insert(p);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let demandable = |p: Sym| idb.contains(&p) && !needs_full.contains(&p);
    if !demandable(goal.pred) {
        return None;
    }

    // Group rules by head for deterministic per-predicate iteration.
    let mut rules_of: HashMap<Sym, Vec<&Rule>> = HashMap::new();
    for r in rules {
        rules_of.entry(r.head.pred).or_default().push(r);
    }

    let goal_adn: Adornment = goal.args.iter().map(Term::is_ground).collect();
    let mut queue: VecDeque<(Sym, Adornment)> = VecDeque::new();
    let mut seen: HashSet<(Sym, Adornment)> = HashSet::new();
    let mut order: Vec<(Sym, Adornment)> = Vec::new();
    let mut demand = |p: Sym,
                      adn: Adornment,
                      queue: &mut VecDeque<(Sym, Adornment)>,
                      order: &mut Vec<(Sym, Adornment)>| {
        if seen.insert((p, adn.clone())) {
            order.push((p, adn.clone()));
            queue.push_back((p, adn));
        }
    };
    demand(goal.pred, goal_adn.clone(), &mut queue, &mut order);

    let mut adorned: Vec<Rule> = Vec::new();
    let mut magics: Vec<Rule> = Vec::new();
    let mut adorned_preds: HashSet<Sym> = HashSet::new();
    let mut magic_preds: HashSet<Sym> = HashSet::new();

    while let Some((pred, adn)) = queue.pop_front() {
        let pred_name = syms.resolve(pred).to_string();
        let adorned_sym = syms.intern(&format!("{pred_name}@{}", adorn_suffix(&adn)));
        adorned_preds.insert(adorned_sym);
        let head_magic = adn.contains(&true).then(|| {
            let m = syms.intern(&format!("m@{pred_name}@{}", adorn_suffix(&adn)));
            magic_preds.insert(m);
            m
        });
        for rule in rules_of.get(&pred).map(Vec::as_slice).unwrap_or(&[]) {
            // Variables bound by the demanded head positions.
            let mut bound: HashSet<Var> = HashSet::new();
            for (arg, &b) in rule.head.args.iter().zip(&adn) {
                if b {
                    let mut vs = Vec::new();
                    arg.collect_vars(&mut vs);
                    bound.extend(vs);
                }
            }
            let head_guard = head_magic.map(|m| {
                let args: Vec<Term> = rule
                    .head
                    .args
                    .iter()
                    .zip(&adn)
                    .filter(|(_, &b)| b)
                    .map(|(t, _)| t.clone())
                    .collect();
                BodyItem::Pos(Atom::new(m, args))
            });
            // SIP order the body, renaming demandable positives to their
            // adorned names and emitting one magic rule per demanded
            // (bound) call site.
            let sip = sip_order(&rule.body, &bound);
            let mut new_body: Vec<BodyItem> = Vec::new();
            for item in sip {
                match &item {
                    BodyItem::Pos(a) if demandable(a.pred) => {
                        let sub_adn: Adornment =
                            a.args.iter().map(|t| term_bound(t, &bound)).collect();
                        let a_name = syms.resolve(a.pred).to_string();
                        let sub_sym = syms.intern(&format!("{a_name}@{}", adorn_suffix(&sub_adn)));
                        if sub_adn.contains(&true) {
                            let m_sym =
                                syms.intern(&format!("m@{a_name}@{}", adorn_suffix(&sub_adn)));
                            magic_preds.insert(m_sym);
                            let m_args: Vec<Term> = a
                                .args
                                .iter()
                                .zip(&sub_adn)
                                .filter(|(_, &b)| b)
                                .map(|(t, _)| t.clone())
                                .collect();
                            let mut m_body: Vec<BodyItem> = head_guard.iter().cloned().collect();
                            m_body.extend(new_body.iter().cloned());
                            magics.push(
                                Rule::compile_named(
                                    Atom::new(m_sym, m_args),
                                    m_body,
                                    rule.nvars,
                                    rule.var_names.clone(),
                                    syms,
                                )
                                .ok()?,
                            );
                        }
                        demand(a.pred, sub_adn, &mut queue, &mut order);
                        new_body.push(BodyItem::Pos(Atom::new(sub_sym, a.args.clone())));
                    }
                    _ => new_body.push(item.clone()),
                }
                for v in new_body.last().expect("just pushed").provided_vars() {
                    bound.insert(v);
                }
            }
            let mut full_body: Vec<BodyItem> = head_guard.into_iter().collect();
            full_body.extend(new_body);
            adorned.push(
                Rule::compile_named(
                    Atom::new(adorned_sym, rule.head.args.clone()),
                    full_body,
                    rule.nvars,
                    rule.var_names.clone(),
                    syms,
                )
                .ok()?,
            );
        }
    }
    // No magic predicate anywhere means no demand constraint was derived:
    // the rewrite would be a pure rename. Let the caller run the original
    // program.
    if magic_preds.is_empty() {
        return None;
    }
    let adorned_rule_count = adorned.len();

    let mut out: Vec<Rule> = Vec::new();
    // Needs-full fragment, verbatim, in original rule order (frozen and
    // never-demanded subprograms are dropped: extra pruning).
    for r in rules {
        if needs_full.contains(&r.head.pred) && !is_frozen(r.head.pred) {
            out.push(r.clone());
        }
    }
    out.extend(adorned);
    out.extend(magics);
    // Copy rules: stored tuples (EDB facts or absorbed base-cache facts)
    // of a demanded predicate flow into its adorned relation, restricted
    // to demanded bindings.
    for (pred, adn) in &order {
        if edb.relation(*pred).is_none_or(|r| r.is_empty()) {
            continue;
        }
        let pred_name = syms.resolve(*pred).to_string();
        let suffix = adorn_suffix(adn);
        let adorned_sym = syms.intern(&format!("{pred_name}@{suffix}"));
        let vars: Vec<Term> = (0..adn.len()).map(|i| Term::Var(Var(i as u32))).collect();
        let mut body: Vec<BodyItem> = Vec::new();
        if adn.contains(&true) {
            let m_sym = syms.intern(&format!("m@{pred_name}@{suffix}"));
            let m_args: Vec<Term> = vars
                .iter()
                .zip(adn)
                .filter(|(_, &b)| b)
                .map(|(t, _)| t.clone())
                .collect();
            body.push(BodyItem::Pos(Atom::new(m_sym, m_args)));
        }
        body.push(BodyItem::Pos(Atom::new(*pred, vars.clone())));
        out.push(
            Rule::compile_named(
                Atom::new(adorned_sym, vars),
                body,
                adn.len() as u32,
                (0..adn.len()).map(|i| format!("V{i}")).collect(),
                syms,
            )
            .ok()?,
        );
    }
    // Bridge: restore the goal predicate under its original name.
    {
        let goal_name = syms.resolve(goal.pred).to_string();
        let goal_sym = syms.intern(&format!("{goal_name}@{}", adorn_suffix(&goal_adn)));
        let vars: Vec<Term> = (0..goal.args.len())
            .map(|i| Term::Var(Var(i as u32)))
            .collect();
        out.push(
            Rule::compile_named(
                Atom::new(goal.pred, vars.clone()),
                vec![BodyItem::Pos(Atom::new(goal_sym, vars))],
                goal.args.len() as u32,
                (0..goal.args.len()).map(|i| format!("V{i}")).collect(),
                syms,
            )
            .ok()?,
        );
    }
    // Demand seed: the goal's own bound arguments.
    let mut seeds = Vec::new();
    if goal_adn.contains(&true) {
        let goal_name = syms.resolve(goal.pred).to_string();
        let m_sym = syms.intern(&format!("m@{goal_name}@{}", adorn_suffix(&goal_adn)));
        magic_preds.insert(m_sym);
        let args: Vec<Term> = goal
            .args
            .iter()
            .zip(&goal_adn)
            .filter(|(_, &b)| b)
            .map(|(t, _)| t.clone())
            .collect();
        seeds.push((m_sym, args));
    }
    let demand_ratio = estimate_demand_ratio(rules, edb, &seeds, &out, &magic_preds);
    Some(MagicRewrite {
        rules: out,
        seeds,
        adorned_preds,
        magic_preds,
        adorned_rules: adorned_rule_count,
        demand_ratio,
    })
}

/// Collects predicates consumed non-monotonically: negated atoms
/// anywhere, and *every* atom inside an aggregate body.
fn collect_nonmono_preds(items: &[BodyItem], in_agg: bool, out: &mut HashSet<Sym>) {
    for item in items {
        match item {
            BodyItem::Pos(a) => {
                if in_agg {
                    out.insert(a.pred);
                }
            }
            BodyItem::Neg(a) => {
                out.insert(a.pred);
            }
            BodyItem::Agg(agg) => collect_nonmono_preds(&agg.body, true, out),
            BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
        }
    }
}

/// Greedy sideways-information-passing order for adornment: guards
/// (negation, comparison, assignment) are flushed as soon as their
/// required variables are bound; among remaining positive atoms the one
/// with the most bound arguments goes next (ties to source order);
/// aggregates keep their phase-2 placement like [`Rule::compile`]. The
/// adornment each positive atom receives is computed against exactly this
/// order, so the magic guards mirror the information actually available
/// at that point of the join.
fn sip_order(body: &[BodyItem], head_bound: &HashSet<Var>) -> Vec<BodyItem> {
    let mut bound = head_bound.clone();
    let mut remaining: Vec<usize> = (0..body.len())
        .filter(|&i| !matches!(body[i], BodyItem::Agg(_)))
        .collect();
    let mut out: Vec<BodyItem> = Vec::new();
    let flush = |remaining: &mut Vec<usize>, bound: &mut HashSet<Var>, out: &mut Vec<BodyItem>| {
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut i = 0;
            while i < remaining.len() {
                let item = &body[remaining[i]];
                let guard = !matches!(item, BodyItem::Pos(_));
                if guard && item.required_vars().iter().all(|v| bound.contains(v)) {
                    for v in item.provided_vars() {
                        bound.insert(v);
                    }
                    out.push(item.clone());
                    remaining.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
        }
    };
    loop {
        flush(&mut remaining, &mut bound, &mut out);
        // Pick the positive atom with the most bound argument positions.
        let mut best: Option<(usize, usize)> = None; // (remaining idx, score)
        for (ri, &bi) in remaining.iter().enumerate() {
            if let BodyItem::Pos(a) = &body[bi] {
                let score = a.args.iter().filter(|t| term_bound(t, &bound)).count();
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((ri, score));
                }
            }
        }
        let Some((ri, _)) = best else { break };
        let bi = remaining.remove(ri);
        for v in body[bi].provided_vars() {
            bound.insert(v);
        }
        out.push(body[bi].clone());
    }
    // Phase 2: aggregates in source order, flushing newly-enabled guards.
    for item in body {
        if matches!(item, BodyItem::Agg(_)) {
            for v in item.provided_vars() {
                bound.insert(v);
            }
            out.push(item.clone());
            flush(&mut remaining, &mut bound, &mut out);
        }
    }
    // Anything still unflushed (possible only for rules that would not
    // have compiled) is appended so no body item is lost; compilation of
    // the adorned rule will reject it exactly as the original would be.
    for bi in remaining {
        out.push(body[bi].clone());
    }
    out
}
